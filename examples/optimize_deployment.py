"""Multi-objective optimization of an on-device ML deployment.

The scenario mirrors Fig. 15: find configurations of the Xception image
recognition system (on a Jetson TX2) that trade off inference latency against
energy.  The single-objective Unicorn-vs-SMAC comparison runs as a campaign
grid (one cell per system × objective) through the parallel campaign runner —
pass ``--parallel`` to overlap the cells over a process pool; the results are
identical either way.  The multi-objective comparison against the PESMO-style
baseline reports the best configurations and the Pareto front.

Run with:  python examples/optimize_deployment.py [--parallel]
                                                  [--max-workers N]
"""

from __future__ import annotations

import argparse

from repro import get_system
from repro.baselines.pesmo import PESMOOptimizer
from repro.core.optimizer import UnicornOptimizer
from repro.core.unicorn import UnicornConfig
from repro.evaluation import run_optimization_campaign
from repro.evaluation.relevant import relevant_options_for


BUDGET = 40
SEED = 2

#: The single-objective campaign grid: (system, hardware, objective) cells.
SCENARIOS = (
    ("xception", "TX2", "InferenceTime"),
    ("x264", "TX2", "EncodingTime"),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", action="store_true",
                        help="run the campaign cells over a process pool")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="worker-pool size for --parallel")
    args = parser.parse_args()

    # --------------------------------------------------- single objective
    mode = "parallel" if args.parallel else "serial"
    print(f"Single-objective optimization campaign (budget {BUDGET}, "
          f"{mode}, {len(SCENARIOS)} cells)…")
    rows = run_optimization_campaign(SCENARIOS, root_seed=SEED,
                                     parallel=args.parallel,
                                     max_workers=args.max_workers,
                                     budget=BUDGET, initial_samples=15)
    for row in rows:
        print(f"  {row['system']:<9} {row['objective']:<14} "
              f"Unicorn best: {row['unicorn_best']:7.1f}   "
              f"SMAC best: {row['smac_best']:7.1f}   "
              f"({row['unicorn_samples']} measurements each)")
    print()

    # ----------------------------------------------------- multi objective
    relevant = relevant_options_for("xception")
    print("Multi-objective latency/energy optimization…")
    unicorn_mo = UnicornOptimizer(
        get_system("xception", hardware="TX2"),
        UnicornConfig(initial_samples=15, budget=BUDGET, seed=SEED,
                      relevant_options=relevant))
    unicorn_mo_result = unicorn_mo.optimize(
        objectives=["InferenceTime", "Energy"])

    pesmo = PESMOOptimizer(get_system("xception", hardware="TX2"),
                           budget=BUDGET, initial_samples=15, seed=SEED,
                           relevant_options=relevant)
    pesmo_result = pesmo.optimize(["InferenceTime", "Energy"])

    print("  Unicorn Pareto points (latency, energy):")
    for latency, energy in unicorn_mo_result.pareto_points(
            ["InferenceTime", "Energy"])[:8]:
        print(f"    ({latency:.1f}s, {energy:.1f}J)")
    print(f"  Unicorn best trade-off: {unicorn_mo_result.best_objectives}")
    print(f"  PESMO  best trade-off: {pesmo_result.best_objectives}")


if __name__ == "__main__":
    main()
