"""Multi-objective optimization of an on-device ML deployment.

The scenario mirrors Fig. 15: find configurations of the Xception image
recognition system (on a Jetson TX2) that trade off inference latency against
energy.  We run Unicorn's causal optimizer and the SMAC / PESMO-style
baselines under the same measurement budget and report the best
configurations and the Pareto front.

Run with:  python examples/optimize_deployment.py
"""

from __future__ import annotations

from repro import get_system
from repro.baselines.pesmo import PESMOOptimizer
from repro.baselines.smac import SMACOptimizer
from repro.core.optimizer import UnicornOptimizer
from repro.core.unicorn import UnicornConfig
from repro.evaluation.relevant import relevant_options_for


BUDGET = 40
SEED = 2


def main() -> None:
    relevant = relevant_options_for("xception")

    # --------------------------------------------------- single objective
    print(f"Single-objective latency optimization (budget {BUDGET})…")
    unicorn = UnicornOptimizer(
        get_system("xception", hardware="TX2"),
        UnicornConfig(initial_samples=15, budget=BUDGET, seed=SEED,
                      relevant_options=relevant))
    unicorn_result = unicorn.optimize(objectives=["InferenceTime"])

    smac = SMACOptimizer(get_system("xception", hardware="TX2"),
                         budget=BUDGET, initial_samples=15, seed=SEED,
                         relevant_options=relevant)
    smac_result = smac.optimize("InferenceTime")

    print(f"  Unicorn best latency: "
          f"{unicorn_result.best_objectives['InferenceTime']:.1f}s "
          f"after {unicorn_result.samples_used} measurements")
    print(f"  SMAC    best latency: "
          f"{smac_result.best_objectives['InferenceTime']:.1f}s "
          f"after {smac_result.samples_used} measurements\n")

    # ----------------------------------------------------- multi objective
    print("Multi-objective latency/energy optimization…")
    unicorn_mo = UnicornOptimizer(
        get_system("xception", hardware="TX2"),
        UnicornConfig(initial_samples=15, budget=BUDGET, seed=SEED,
                      relevant_options=relevant))
    unicorn_mo_result = unicorn_mo.optimize(
        objectives=["InferenceTime", "Energy"])

    pesmo = PESMOOptimizer(get_system("xception", hardware="TX2"),
                           budget=BUDGET, initial_samples=15, seed=SEED,
                           relevant_options=relevant)
    pesmo_result = pesmo.optimize(["InferenceTime", "Energy"])

    print("  Unicorn Pareto points (latency, energy):")
    for latency, energy in unicorn_mo_result.pareto_points(
            ["InferenceTime", "Energy"])[:8]:
        print(f"    ({latency:.1f}s, {energy:.1f}J)")
    print(f"  Unicorn best trade-off: {unicorn_mo_result.best_objectives}")
    print(f"  PESMO  best trade-off: {pesmo_result.best_objectives}")


if __name__ == "__main__":
    main()
