"""Quickstart: causal reasoning about a tiny configurable system.

This walks through the Fig. 1 motivating example end to end:

1. measure a few hundred configurations of a simulated system whose cache
   policy confounds the relationship between cache misses and throughput,
2. show that plain correlation gets the relationship backwards,
3. learn a causal performance model with Unicorn's discovery pipeline,
4. ask the causal inference engine "what is the effect of the cache policy on
   throughput?" and "how likely is the QoS to hold if we intervene?".

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import get_system
from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.inference.queries import PerformanceQuery, QoSConstraint


def main() -> None:
    system = get_system("cache_example")
    print(f"System: {system.name} with options "
          f"{system.space.option_names} and objective(s) "
          f"{system.objective_names}\n")

    # ------------------------------------------------------------------ data
    rng = np.random.default_rng(0)
    measurements, data = system.random_dataset(300, rng)
    pooled = np.corrcoef(data.column("CacheMisses"),
                         data.column("Throughput"))[0, 1]
    print(f"Pooled correlation(CacheMisses, Throughput) = {pooled:+.2f}  "
          "<- misleadingly positive (Fig. 1a)")
    for code in (0.0, 3.0):
        mask = data.column("CachePolicy") == code
        within = np.corrcoef(data.column("CacheMisses")[mask],
                             data.column("Throughput")[mask])[0, 1]
        policy = system.space.option("CachePolicy").describe(code)
        print(f"  within {policy}: {within:+.2f}  <- negative, as physics "
              "dictates (Fig. 1b)")

    # ------------------------------------------------------------- learning
    unicorn = Unicorn(system, UnicornConfig(initial_samples=0, budget=0,
                                            max_condition_size=2))
    state = LoopState()
    state.measurements.extend(measurements)
    engine = unicorn.learn(state)
    print("\nLearned causal performance model (Fig. 1c):")
    for edge in state.learned.graph.edges():
        print("  ", edge)

    # --------------------------------------------------------------- queries
    effect = engine.causal_effect("CachePolicy", "Throughput")
    print(f"\nAverage causal effect of CachePolicy on Throughput: "
          f"{effect:+.2f} FPS per policy step")

    query = PerformanceQuery.satisfaction(
        intervention={"CachePolicy": 0.0},
        constraint=QoSConstraint("Throughput", "maximize", threshold=15.0),
        description="Will throughput stay above 15 FPS under LRU?")
    answer = engine.answer(query)
    print(f"Causal query: {answer.causal_queries[0].expression}")
    print(f"  estimated probability: {answer.estimates['Throughput']:.2f}")


if __name__ == "__main__":
    main()
