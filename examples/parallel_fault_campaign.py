"""The Fig. 13 fault-catalogue campaign through the parallel runner.

The campaign grid — every subject system on one or more hardware platforms —
is a set of independent cells.  This example enumerates the grid, derives a
deterministic per-cell seed tree from one root seed, executes the cells
serially or over a process pool, and persists per-cell artifacts so an
interrupted campaign can resume without repeating finished work.

Run with:

    python examples/parallel_fault_campaign.py                     # serial
    python examples/parallel_fault_campaign.py --parallel          # pool
    python examples/parallel_fault_campaign.py --parallel \\
        --max-workers 4 --store /tmp/campaign --seed 6             # resumable

Run it twice with ``--store``: the second run reuses every stored cell.
Serial and parallel runs produce byte-identical reports.
"""

from __future__ import annotations

import argparse
import time

from repro.evaluation import ArtifactStore, run_fault_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel", action="store_true",
                        help="execute cells over a process pool")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="worker-pool size (default: min(8, 4*cores))")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="artifact-store directory (makes the campaign "
                             "resumable)")
    parser.add_argument("--seed", type=int, default=6,
                        help="root seed of the per-cell seed tree")
    parser.add_argument("--hardware", nargs="+", default=["TX2"],
                        help="hardware platforms of the campaign grid")
    args = parser.parse_args()

    store = ArtifactStore(args.store) if args.store else None
    mode = "parallel" if args.parallel else "serial"
    print(f"Running the fault-catalogue campaign ({mode})…")

    started = time.perf_counter()
    report = run_fault_campaign(
        hardware=args.hardware[0] if len(args.hardware) == 1
        else tuple(args.hardware),
        n_samples=250, percentile=98.0, seed=args.seed,
        parallel=args.parallel, max_workers=args.max_workers, store=store)
    elapsed = time.perf_counter() - started

    print(f"\nFaults per system ({elapsed:.1f}s):")
    for name, total in sorted(report.totals().items()):
        counts = report.counts()[name]
        detail = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
        print(f"  {name:<18} {total:3d}   ({detail})")
    print(f"\nTotal single-objective faults: "
          f"{report.total_single_objective()}")
    print(f"Total multi-objective faults : {report.total_multi_objective()}")
    if store is not None:
        print(f"\nArtifacts stored under {store.root} — re-run with the same "
              "--store and --seed to resume/skip completed cells.")


if __name__ == "__main__":
    main()
