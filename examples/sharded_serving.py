"""Sharded serving walkthrough: drift-aware refresh across worker processes.

The `docs/serving.md` companion for the sharded tier.  It

1. declares six SQLite subjects as *specs* (each worker fits its own
   replica from the spec — a pure function, so every process holds the
   same model),
2. starts a ``ShardedQueryService`` with two worker processes and a
   drift threshold, plus the single-process drift-aware ``QueryService``
   and the PR 4 eager-refresh baseline it is compared against,
3. drives an identical long-horizon workload through all three: rounds
   of concurrent mixed queries interleaved with per-subject observation
   streams that undergo one genuine regime shift,
4. prints each tier's wall clock and relearn count, verifies the sharded
   answers are byte-identical to the single-process drift-aware run, and
5. kills a worker mid-flight to show the liveness monitor respawn it,
   requeue the in-flight work and replay the observation journal.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

import time

from repro.service import (
    EffectRequest,
    QueryService,
    ShardedQueryService,
    canonical_answers,
    long_horizon_workload,
    registry_from_specs,
    serve_rounds,
)
from repro.systems.registry import get_system

N_SUBJECTS = 6
SHARDS = 2
N_CLIENTS = 32
N_ROUNDS = 4
DRIFT_ROUND = 2
SEED = 7
DRIFT = dict(drift_threshold=6.0, drift_min_window=24, refresh_async=True)


def main() -> None:
    # ------------------------------------------------------------- subjects
    specs = {f"sqlite-{i}": {"system": "sqlite", "n_samples": 60, "seed": i}
             for i in range(N_SUBJECTS)}
    systems = {subject: get_system("sqlite") for subject in specs}
    print(f"Fitting {N_SUBJECTS} SQLite subjects for workload generation...")
    workload_registry = registry_from_specs(specs)
    engines = {s: workload_registry.get(s).engine for s in specs}
    rounds = long_horizon_workload(
        engines, systems, n_rounds=N_ROUNDS, queries_per_round=64,
        observations_per_round=20, observation_batches_per_round=2,
        seed=SEED, drift_rounds=(DRIFT_ROUND,), drift_scale=1.6)
    n_queries = sum(len(r["queries"]) for r in rounds)
    print(f"Workload: {N_ROUNDS} rounds x (64 queries from {N_CLIENTS} "
          f"clients + 2x10 observations/subject); regime shift at round "
          f"{DRIFT_ROUND}\n")

    # ------------------------------------------------- eager baseline (PR 4)
    eager = registry_from_specs(specs)
    with QueryService(eager) as service:
        _, eager_seconds = serve_rounds(service, rounds, N_CLIENTS)
    print(f"eager single-process : {eager_seconds * 1000:6.0f} ms "
          f"({eager.refreshes} relearns — one per observation batch)")

    # ---------------------------------------------- drift-aware, one process
    drifty = registry_from_specs(specs, **DRIFT)
    with QueryService(drifty) as service:
        reference, drift_seconds = serve_rounds(service, rounds, N_CLIENTS)
    print(f"drift single-process : {drift_seconds * 1000:6.0f} ms "
          f"({drifty.refreshes} relearns, "
          f"{drifty.refreshes_skipped} batches absorbed)")

    # ------------------------------------------------- drift-aware, sharded
    with ShardedQueryService(specs, shards=SHARDS, **DRIFT) as sharded:
        responses, sharded_seconds = serve_rounds(sharded, rounds, N_CLIENTS)
        worker_stats = sharded.worker_stats()
        identical = canonical_answers(responses) == \
            canonical_answers(reference)
        print(f"drift sharded x{SHARDS}     : {sharded_seconds * 1000:6.0f}"
              f" ms ({sum(w['refreshes'] for w in worker_stats)} relearns "
              f"across workers, subjects/shard="
              f"{[len(w['subjects']) for w in worker_stats]})")
        print(f"  speedup over eager baseline: "
              f"{eager_seconds / sharded_seconds:.1f}x")
        print(f"  byte-identical to the single-process drift-aware run: "
              f"{identical}")
        print(f"  {n_queries} queries answered at "
              f"{n_queries / sharded_seconds:.0f} qps\n")

        # --------------------------------------------------- crash recovery
        print("Injecting a worker crash...")
        request = EffectRequest.of(sorted(specs)[0], "QueryTime",
                                   {"PRAGMA_CACHE_SIZE": 4096.0})
        before = sharded.submit(request)
        sharded._inject_crash(0)
        started = time.perf_counter()
        after = sharded.submit(request, timeout=120)
        print(f"  respawned worker answered in "
              f"{time.perf_counter() - started:.2f}s "
              f"(respawns={sharded.stats.respawns}, "
              f"requeues={sharded.stats.requeues}); answer unchanged: "
              f"{after.value == before.value} at model version "
              f"{after.model_version} (journal replay)")


if __name__ == "__main__":
    main()
