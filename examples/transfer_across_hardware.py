"""Reusing a causal performance model when the deployment hardware changes.

The scenario mirrors Fig. 16: an energy fault must be repaired on a Jetson
TX2, but a causal performance model (and its measurements) already exists
from a Xavier deployment of the same system.  We compare three strategies:

* Reuse      — recommend straight from the Xavier knowledge,
* Fine-tune  — add 25 fresh TX2 measurements before recommending,
* Rerun      — learn everything from scratch on TX2.

Run with:  python examples/transfer_across_hardware.py
"""

from __future__ import annotations

from repro import get_system
from repro.core.transfer import TransferMode, transfer_debug
from repro.core.unicorn import UnicornConfig
from repro.systems.faults import discover_faults


def main() -> None:
    system_name, objective = "xception", "Energy"
    source_hw, target_hw = "Xavier", "TX2"

    catalogue = discover_faults(get_system(system_name, hardware=target_hw),
                                n_samples=250, percentile=97.0,
                                objectives=[objective], seed=4)
    fault = (catalogue.single_objective(objective) or catalogue.faults)[0]
    print(f"Debugging an {objective} fault of {system_name} on {target_hw} "
          f"using knowledge from {source_hw}.\n")

    config = UnicornConfig(initial_samples=20, budget=45, seed=4)
    for mode in (TransferMode.REUSE, TransferMode.FINE_TUNE,
                 TransferMode.RERUN):
        outcome = transfer_debug(
            get_system(system_name, hardware=source_hw),
            get_system(system_name, hardware=target_hw),
            fault, mode, config=config, source_samples=30,
            fine_tune_samples=25, objectives=[objective])
        result = outcome.debug_result
        print(f"Unicorn ({mode.value:>9}): gain {result.gains[objective]:6.1f}%  "
              f"target measurements {outcome.extra_target_samples:3d}  "
              f"root causes: {', '.join(result.root_causes[:4])}")

    print("\nTakeaway: fine-tuning with a handful of target measurements "
          "recovers most of the rerun's repair quality at a fraction of the "
          "measurement cost, because the causal structure is shared across "
          "environments.")


if __name__ == "__main__":
    main()
