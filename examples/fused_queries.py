"""Fused-query walkthrough: scalar vs per-node batched vs fused timings.

This is the `docs/query-api.md` "Fused execution and cross-request
memoization" companion.  It

1. fits a causal performance model of the SQLite subject and builds the
   pinned 256-candidate repair scan the benchmarks gate on,
2. runs the scan through the three propagation paths — the scalar
   oracle, the per-node batched evaluator and the fused per-level GEMM
   programs — verifying all three produce the identical repair ranking,
3. times warm repeated scans of each path (the steady serving state:
   compiled programs, memoized candidate grids, scalar-fold memos),
4. serves the same repair query twice through a ``QueryService`` and
   shows the second answer coming from the cross-request result cache
   (no engine call), then folds in fresh observations and shows the
   refresh invalidating it.

Run with:  python examples/fused_queries.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.discovery.pipeline import LearnedModel
from repro.graph.paths import backtrack_causal_paths
from repro.inference.engine import CausalInferenceEngine
from repro.inference.paths import CausalPath
from repro.inference.query_plan import QueryPlan
from repro.inference.repairs import generate_repair_set
from repro.scm.batched import BatchedFittedModel
from repro.service import ModelRegistry, QueryService, RepairRequest
from repro.systems.sqlite import make_sqlite

N_SAMPLES = 80
N_CANDIDATES = 256
ROUNDS = 9
SEED = 17


def median_ms(function, rounds: int = ROUNDS) -> float:
    """Median wall-clock milliseconds of ``rounds`` warm calls."""
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        function()
        timings.append(time.perf_counter() - started)
    return float(np.median(timings)) * 1000.0


def main() -> None:
    # ------------------------------------------------------ fit the subject
    print(f"Fitting sqlite model on {N_SAMPLES} samples ...")
    system = make_sqlite()
    _, data = system.random_dataset(N_SAMPLES, np.random.default_rng(SEED))
    graph = system.scm.dag.to_mixed_graph()
    learned = LearnedModel(graph=graph, pag=graph,
                           constraints=system.constraints(), data=data)
    domains = {name: system.space.option(name).values
               for name in system.space.option_names}
    engine = CausalInferenceEngine(learned, domains)
    model = engine.fitted_model

    # ------------------------------------------- the pinned repair scan
    objective = "QueryTime"
    paths = [CausalPath(nodes=tuple(nodes), objective=objective, ace=0.0)
             for nodes in backtrack_causal_paths(graph, objective)]
    faulty_configuration = system.space.default_configuration()
    faulty_measurement = {objective: float(
        system.true_objective(faulty_configuration, objective) * 1.5)}
    directions = {objective: system.objectives[objective]}

    def scan(evaluator, plan):
        return generate_repair_set(
            model, paths, system.constraints(), domains,
            faulty_configuration, faulty_measurement, directions,
            max_combined_options=5, max_repairs=N_CANDIDATES,
            evaluator=evaluator, plan=plan)

    fused = BatchedFittedModel(model, fused=True)
    pernode = BatchedFittedModel(model, fused=False)
    fused_plan, pernode_plan = QueryPlan(model.dag), QueryPlan(model.dag)

    # -------------------------------------- identical rankings, three ways
    scalar_set = scan(None, None)
    pernode_set = scan(pernode, pernode_plan)
    fused_set = scan(fused, fused_plan)
    identical = ([r.changes for r in fused_set]
                 == [r.changes for r in pernode_set]
                 == [r.changes for r in scalar_set])
    max_diff = max(abs(f.ice - s.ice)
                   for f, s in zip(fused_set, scalar_set))
    best = fused_set.best()
    print(f"  {len(fused_set)}-candidate repair scan; identical ranking "
          f"across scalar/per-node/fused: {identical} "
          f"(max ICE diff {max_diff:.1e})")
    print(f"  best repair: {dict(best.changes)} (ICE {best.ice:.3f})\n")

    # ------------------------------------------------ warm repeated scans
    print("Warm repeated scans (median of "
          f"{ROUNDS}, candidate grid and fused programs cached):")
    scalar_ms = median_ms(lambda: scan(None, None), rounds=3)
    pernode_ms = median_ms(lambda: scan(pernode, pernode_plan))
    fused_ms = median_ms(lambda: scan(fused, fused_plan))
    print(f"  scalar oracle      {scalar_ms:8.1f} ms")
    print(f"  per-node batched   {pernode_ms:8.1f} ms "
          f"({scalar_ms / pernode_ms:.1f}x vs scalar)")
    print(f"  fused per-level    {fused_ms:8.1f} ms "
          f"({pernode_ms / fused_ms:.1f}x vs per-node, "
          f"{scalar_ms / fused_ms:.1f}x vs scalar)\n")

    # ------------------------------------- cross-request result memoization
    registry = ModelRegistry(capacity=2, result_cache_size=64)
    entry = registry.get_or_fit({"system": "sqlite",
                                 "n_samples": N_SAMPLES, "seed": SEED})
    request = RepairRequest.of(
        entry.key, objectives=directions,
        faulty_configuration=faulty_configuration,
        faulty_measurement=faulty_measurement, max_repairs=64)
    with QueryService(registry) as service:
        started = time.perf_counter()
        first = service.submit(request)
        first_ms = (time.perf_counter() - started) * 1000.0
        started = time.perf_counter()
        second = service.submit(request)
        second_ms = (time.perf_counter() - started) * 1000.0
        same = first.value == second.value
        print("Cross-request memoization (QueryService):")
        print(f"  first repair query  {first_ms:7.1f} ms (engine)")
        print(f"  repeat              {second_ms:7.1f} ms (cache hit, "
              f"identical answer: {same})")
        print(f"  cache hits {service.stats.cache_hits}, "
              f"misses {service.stats.cache_misses}")

        rng = np.random.default_rng(SEED + 1)
        fresh = system.measure_many(
            system.space.sample_configurations(10, rng), rng=rng)
        version = registry.observe(entry.key, fresh)
        refreshed = service.submit(request)
        print(f"  after observe() -> model version {version}: answer "
              f"recomputed at version {refreshed.model_version} "
              f"(cache invalidated)")


if __name__ == "__main__":
    main()
