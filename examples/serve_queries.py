"""Serving walkthrough: 64 concurrent clients querying one fitted model.

This is the `docs/serving.md` companion.  It

1. fits a causal performance model of the SQLite subject into a
   ``ModelRegistry`` (content-hash keyed, LRU-bounded),
2. starts a ``QueryService`` over the registry,
3. fires 64 concurrent clients, each submitting its mixed batch of queries
   (interventional effects, predictions, ACEs, satisfaction probabilities,
   repair scans) and blocking for the answers,
4. prints latency percentiles, throughput, the batcher's coalescing ratio
   and the speedup over one-at-a-time dispatch — and verifies the answers
   are byte-identical to the one-at-a-time reference,
5. folds 10 new measurements into the model through the registry's
   incremental refresh and shows the model version tick over.

Run with:  python examples/serve_queries.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.service import (
    ModelRegistry,
    QueryService,
    RequestBatcher,
    canonical_answers,
    latency_percentiles,
    mixed_workload,
    serve_concurrently,
)
from repro.systems.registry import get_system

N_CLIENTS = 64
REQUESTS_PER_CLIENT = 4
N_SAMPLES = 60
SEED = 7


def main() -> None:
    # ------------------------------------------------------- fit the subject
    registry = ModelRegistry(capacity=4)
    print(f"Fitting sqlite model on {N_SAMPLES} samples ...")
    started = time.perf_counter()
    entry = registry.get_or_fit({"system": "sqlite",
                                 "n_samples": N_SAMPLES, "seed": SEED})
    print(f"  fitted in {time.perf_counter() - started:.1f}s; subject key "
          f"{entry.key[:12]}..., {entry.n_measurements} measurements\n")

    system = get_system("sqlite")
    requests = mixed_workload(entry.key, entry.engine, system.objectives,
                              N_CLIENTS * REQUESTS_PER_CLIENT, seed=SEED)
    kinds = {}
    for request in requests:
        kinds[request.kind.value] = kinds.get(request.kind.value, 0) + 1
    print(f"Workload: {len(requests)} queries from {N_CLIENTS} clients "
          f"({', '.join(f'{v} {k}' for k, v in sorted(kinds.items()))})")

    # ------------------------------------------- one-at-a-time reference run
    batcher = RequestBatcher()
    # Untimed warm-up: fill the engine's one-time caches (ranked paths,
    # residual columns) so the timed reference measures dispatch cost, not
    # first-touch cost — same protocol as the benchmark and campaign cell.
    batcher.dispatch(entry, requests)
    started = time.perf_counter()
    serial = batcher.serial_dispatch(entry, requests)
    serial_seconds = time.perf_counter() - started
    print(f"One-at-a-time dispatch: {serial_seconds * 1000:.0f} ms "
          f"({len(requests) / serial_seconds:.0f} qps)")

    # --------------------------------------------------- concurrent serving
    with QueryService(registry, batch_window=0.002,
                      max_batch=512) as service:
        responses, service_seconds, stats = serve_concurrently(
            service, requests, N_CLIENTS)

    identical = canonical_answers(serial) == canonical_answers(responses)
    percentiles = latency_percentiles(responses)
    print(f"QueryService ({N_CLIENTS} clients): "
          f"{service_seconds * 1000:.0f} ms "
          f"({len(requests) / service_seconds:.0f} qps)")
    print(f"  speedup over one-at-a-time: "
          f"{serial_seconds / service_seconds:.1f}x")
    print(f"  coalescing: {stats.engine_calls} engine calls for "
          f"{stats.answered} answers "
          f"({stats.coalesced_ratio:.1f} answers/call, "
          f"largest drain {stats.max_batch_observed})")
    print(f"  latency p50 {percentiles['p50_ms']:.1f} ms, "
          f"p95 {percentiles['p95_ms']:.1f} ms, "
          f"p99 {percentiles['p99_ms']:.1f} ms")
    print(f"  byte-identical to one-at-a-time answers: {identical}\n")

    # ------------------------------------------------- incremental refresh
    rng = np.random.default_rng(SEED + 1)
    fresh = system.measure_many(system.space.sample_configurations(10, rng),
                                rng=rng)
    started = time.perf_counter()
    version = registry.observe(entry.key, fresh)
    print(f"Folded 10 new measurements in "
          f"{time.perf_counter() - started:.2f}s -> model version {version} "
          f"({entry.n_measurements} measurements, incremental path: "
          f"{bool(entry.state.learned.history[-1].get('incremental'))})")


if __name__ == "__main__":
    main()
