"""Debugging a non-functional fault in a composed video-analytics pipeline.

The scenario mirrors Section 5 / Table 2 of the paper: a Deepstream-like
pipeline deployed on a Jetson board exhibits a latency fault (a configuration
in the 97th-percentile tail of the latency distribution).  We:

1. discover faults with the paper's tail-labelling protocol,
2. repair one with Unicorn (causal debugging),
3. repair the same fault with BugDoc (decision-tree baseline),
4. compare root causes, gains and measurement effort.

Run with:  python examples/debug_performance_fault.py
"""

from __future__ import annotations

from repro import get_system
from repro.baselines.bugdoc import BugDocDebugger
from repro.core.debugger import UnicornDebugger
from repro.core.unicorn import UnicornConfig
from repro.evaluation.relevant import relevant_options_for
from repro.systems.faults import discover_faults


def main() -> None:
    system_name, hardware, objective = "deepstream", "TX2", "Latency"
    relevant = relevant_options_for(system_name)

    print(f"Discovering {objective} faults for {system_name} on {hardware}…")
    catalogue = discover_faults(get_system(system_name, hardware=hardware),
                                n_samples=300, percentile=97.0,
                                objectives=[objective], seed=1)
    faults = catalogue.single_objective(objective) or catalogue.faults
    fault = faults[0]
    print(f"  found {len(catalogue)} faults; debugging one with "
          f"{objective} = {fault.measured_dict()[objective]:.1f} "
          f"(threshold {catalogue.thresholds[objective]:.1f})\n")

    # ----------------------------------------------------------------- Unicorn
    unicorn = UnicornDebugger(
        get_system(system_name, hardware=hardware),
        UnicornConfig(initial_samples=20, budget=45, seed=1,
                      relevant_options=relevant))
    unicorn_result = unicorn.debug_fault(fault, objectives=[objective])

    # ----------------------------------------------------------------- BugDoc
    bugdoc = BugDocDebugger(get_system(system_name, hardware=hardware),
                            budget=45, seed=1, relevant_options=relevant)
    bugdoc_result = bugdoc.debug(fault.configuration_dict(),
                                 fault.measured_dict(),
                                 objectives=[objective])

    # ------------------------------------------------------------------ report
    for name, result in (("Unicorn", unicorn_result),
                         ("BugDoc", bugdoc_result)):
        print(f"{name}:")
        print(f"  root causes      : {', '.join(result.root_causes[:6])}")
        print(f"  repaired {objective:<8}: "
              f"{result.faulty_measurement[objective]:.1f} -> "
              f"{result.recommended_measurement[objective]:.1f} "
              f"({result.gains[objective]:+.1f}% gain)")
        print(f"  measurements used: {result.samples_used} "
              f"(~{result.simulated_hours:.1f} simulated hours)")
        changed = ", ".join(result.changed_options[:8])
        print(f"  options changed  : {changed}\n")


if __name__ == "__main__":
    main()
