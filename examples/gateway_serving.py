"""Wire-protocol gateway walkthrough: serving queries over a socket.

The `docs/serving.md` companion for the gateway tier.  It

1. fits two cache-simulator subjects into a sharded service and fronts
   it with a ``GatewayServer`` — a real listening TCP socket speaking
   the length-prefixed JSON wire protocol with versioned envelopes,
2. provisions two tenants (API keys), one with a small query quota,
3. connects ``GatewayClient``s and walks the protocol surface: ping,
   single queries, a pipelined batch, streaming ``observe()``
   ingestion, and the stats envelope with per-tenant accounting,
4. shows the typed error surface — a bad API key, a quota exhaustion,
   a raw-socket protocol violation answered with a typed error frame —
   and verifies wire answers are byte-identical to direct in-process
   submission, and
5. drains the gateway: in-flight work settles, new connections get the
   typed ``DRAINING`` rejection.

Run with:  python examples/gateway_serving.py
"""

from __future__ import annotations

import json
import socket
import struct

import numpy as np

from repro.service import (
    DrainingError,
    EffectRequest,
    GatewayAuthError,
    GatewayClient,
    GatewayServer,
    PredictRequest,
    QuotaExceededError,
    ShardedQueryService,
    Tenant,
    canonical_answers,
    wire_workload,
)
from repro.service.sharding import registry_from_specs
from repro.systems.cache_example import make_cache_example

SPECS = {f"cache-{i}": {"system": "cache_example", "n_samples": 40,
                        "max_condition_size": 2, "seed": i}
         for i in range(2)}
SEED = 11


def main() -> None:
    # ------------------------------------------------------ service + tenants
    print(f"Fitting {len(SPECS)} cache subjects into a sharded service...")
    tenants = {"secret-alpha": Tenant("alpha"),
               "secret-beta": Tenant("beta", quota=3)}
    with ShardedQueryService(SPECS, shards=2, use_processes=False) as service, \
            GatewayServer(service, tenants=tenants) as gateway:
        host, port = gateway.address
        print(f"Gateway listening on {host}:{port} "
              f"(tenants: alpha unlimited, beta quota=3)\n")

        # ------------------------------------------------ the client surface
        with GatewayClient(gateway.address, api_key="secret-alpha") as alpha:
            print(f"ping -> {alpha.ping()}")
            effect = alpha.submit(EffectRequest.of(
                "cache-0", "Throughput", {"CachePolicy": 1.0}))
            print(f"effect query -> {effect.value:.4f} "
                  f"(model v{effect.model_version})")

            # Pipelined batch: all frames sent, then all answers read.
            registry = registry_from_specs(SPECS)
            stream = wire_workload("cache-1", registry.get("cache-1").engine,
                                   make_cache_example().objectives,
                                   n_clients=1, per_client=6,
                                   seed=SEED)[0]
            wire_answers = alpha.submit_many(stream)
            direct_answers = service.submit_many(stream)
            identical = (canonical_answers(wire_answers)
                         == canonical_answers(direct_answers))
            print(f"pipelined batch of {len(stream)} -> byte-identical "
                  f"to direct submission: {identical}")

            # Streaming ingestion: observe() over the wire.
            system = make_cache_example()
            rng = np.random.default_rng(SEED)
            measurements = system.measure_many(
                system.space.sample_configurations(4, rng), rng=rng)
            version = alpha.observe("cache-0", measurements)
            print(f"observe 4 measurements -> model v{version}\n")

        # --------------------------------------------------- the error surface
        try:
            GatewayClient(gateway.address, api_key="wrong-key").ping()
        except GatewayAuthError as exc:
            print(f"bad API key        -> {type(exc).__name__}: {exc}")
        request = PredictRequest.of("cache-0", {"CachePolicy": 1.0},
                                    ("Throughput",))
        with GatewayClient(gateway.address, api_key="secret-beta") as beta:
            for _ in range(3):
                beta.submit(request)
            try:
                beta.submit(request)
            except QuotaExceededError as exc:
                print(f"4th query, quota=3 -> {type(exc).__name__}: {exc}")

        # A raw socket speaking garbage gets a typed error frame, not a hang.
        with socket.create_connection(gateway.address, timeout=5.0) as raw:
            raw.sendall(struct.pack(">I", 12) + b"not json !!!")
            size = struct.unpack(">I", raw.recv(4))[0]
            error = json.loads(raw.recv(size))
            print(f"garbage frame      -> typed error "
                  f"{error['error']['code']!r}\n")

        # ------------------------------------------------------ graceful drain
        print("Draining the gateway...")
        gateway.drain()
        try:
            GatewayClient(gateway.address, api_key="secret-alpha").ping()
        except DrainingError as exc:
            print(f"new connection     -> {type(exc).__name__}: {exc}")

        stats = gateway.stats.as_dict()
        print(f"\ngateway stats: {stats['queries']} queries, "
              f"{stats['answered']} answered, "
              f"{stats['observed_measurements']} measurements ingested, "
              f"{stats['auth_failures']} auth failures, "
              f"{stats['quota_rejections']} quota rejections, "
              f"{stats['protocol_errors']} protocol errors")
        print(f"per-tenant: {json.dumps(stats['per_tenant'], sort_keys=True)}")


if __name__ == "__main__":
    main()
