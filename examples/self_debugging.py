"""Observability walkthrough: trace a workload, then debug the stack.

The `docs/observability.md` companion.  It

1. serves a concurrent mixed workload with the per-request
   :class:`~repro.service.tracing.Tracer` enabled and walks the
   observability surface: finished trace contexts (queue wait, engine
   and cache segments, coalesce group sizes), the aggregate
   ``trace_summary``, and the service's lock-consistent
   ``metrics_snapshot()``,
2. writes the deterministic (wall-clock-stripped) trace JSONL artifact
   and shows that a second replay of the same seeded workload renders
   byte-identical records, and
3. closes the loop — Unicorn on Unicorn: the recorded workload is
   served under a deliberately misconfigured deployment, the paper's
   own debugger diagnoses the serving stack through its causal twin
   (``systems/serving_system.py``), and the replay under the
   recommended configuration beats the faulty baseline's p99 latency
   with byte-identical answers.

Run with:  python examples/self_debugging.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.unicorn import Unicorn, UnicornConfig
from repro.evaluation.self_debug_campaign import run_self_debugging
from repro.service import (
    ModelRegistry,
    QueryService,
    TraceRecorder,
    Tracer,
    mixed_workload,
    serve_concurrently,
    trace_summary,
)
from repro.systems.cache_example import make_cache_example

SEED = 7
N_CLIENTS = 8
N_REQUESTS = 64


def trace_a_workload(tmp_dir: Path) -> None:
    """Phase 1+2: per-request tracing, metrics, deterministic records."""
    print("Fitting the cache-example subject...")
    system = make_cache_example()
    unicorn = Unicorn(system, UnicornConfig(
        initial_samples=80, budget=120, max_condition_size=2, seed=SEED,
        batched_queries=True))
    registry = ModelRegistry(capacity=2)
    entry = registry.register("cache", unicorn)
    requests = mixed_workload("cache", entry.engine, system.objectives,
                              N_REQUESTS, seed=SEED)

    tracer = Tracer(enabled=True)
    with QueryService(registry, batch_window=0.002,
                      tracer=tracer) as service:
        responses, seconds, _ = serve_concurrently(
            service, requests, N_CLIENTS)
        snapshot = service.metrics_snapshot()
    assert all(r.ok for r in responses)
    print(f"\nServed {len(responses)} requests from {N_CLIENTS} clients "
          f"in {seconds * 1000:.1f} ms with tracing on.")

    traces = tracer.drain()
    slowest = max(traces, key=lambda t: t.total_seconds)
    print(f"Slowest request {slowest.request_id}:")
    print(f"  queue wait {slowest.queue_wait_seconds * 1e3:.2f} ms, "
          f"engine {slowest.engine_seconds * 1e3:.2f} ms, "
          f"cache {'hit' if slowest.cache_hit else 'miss'}, "
          f"coalesce group of {slowest.coalesce_group_size}")
    print(f"Trace summary: {trace_summary(traces)}")
    print(f"Metrics snapshot: submitted={snapshot.submitted} "
          f"answered={snapshot.answered} "
          f"coalescing={snapshot.coalescing_ratio:.2f}x "
          f"p99={snapshot.latency_ms['p99']:.2f} ms")

    # Deterministic artifact: replaying the same seeded workload through
    # the serial reference path renders byte-identical JSONL.
    recorder = TraceRecorder(root_seed=SEED)
    path = recorder.write(tmp_dir / "trace.jsonl", traces)
    header, records = TraceRecorder.load(path)
    print(f"\nWrote {header['records']} deterministic trace records "
          f"(seed {header['root_seed']}) to {path.name}; "
          "wall-clock fields stripped:")
    print(f"  {records[0]}")


def debug_the_stack() -> None:
    """Phase 3: the reproduction debugs its own serving deployment."""
    print("\nUnicorn on Unicorn: recording a misconfigured deployment "
          "(50 ms batch window, result cache off),")
    print("debugging it on the serving twin, replaying the "
          "recommendation...")
    outcome = run_self_debugging(n_clients=8, requests_per_client=6,
                                 n_samples=40, seed=SEED)
    print(f"  faulty deployment:      p99 "
          f"{outcome['baseline_p99_ms']:8.1f} ms")
    print(f"  recommended deployment: p99 "
          f"{outcome['recommended_p99_ms']:8.1f} ms "
          f"({outcome['p99_improvement']:.1f}x better)")
    print(f"  debugger changed: {outcome['changed_options']}")
    print(f"  answers byte-identical under both deployments: "
          f"{outcome['identical']}")
    assert outcome["identical"]
    assert outcome["p99_improvement"] > 1.0


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_a_workload(Path(tmp))
    debug_the_stack()
    print("\nDone: the serving stack traced itself, and the paper's "
          "pipeline repaired its own deployment.")


if __name__ == "__main__":
    main()
