"""Performance debugging with Unicorn.

``UnicornDebugger`` runs the full five-stage loop for a repair query: learn a
causal performance model from an initial sample, extract and rank causal
paths, generate candidate repairs, score them counterfactually (ICE), measure
the best candidate, update the model, and repeat until the fault is fixed or
the budget is exhausted.  The result records the root causes, the recommended
repair, per-objective gains and the resources spent — everything Table 2 and
Fig. 14 report.

The per-iteration repair scan is batched: the engine enumerates the candidate
grid once and scores every candidate in a single vectorized counterfactual
call (``UnicornConfig.batched_queries=False`` pins the loop to the scalar
reference path).  The ranking the walk below consumes is deterministic
(:func:`repro.inference.repairs.repair_sort_key`), so scalar and batched runs
propose the same measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.inference.queries import PerformanceQuery
from repro.metrics.debugging import gain as gain_metric
from repro.systems.base import ConfigurableSystem, Measurement
from repro.systems.faults import Fault


@dataclass
class DebugResult:
    """Outcome of one debugging run."""

    system: str
    environment: str
    objectives: dict[str, str]
    faulty_configuration: dict[str, float]
    faulty_measurement: dict[str, float]
    recommended_configuration: dict[str, float]
    recommended_measurement: dict[str, float]
    root_causes: list[str]
    changed_options: list[str]
    gains: dict[str, float]
    iterations: int
    samples_used: int
    wall_clock_seconds: float
    simulated_hours: float
    fixed: bool
    history: list[dict[str, float]] = field(default_factory=list)

    @property
    def mean_gain(self) -> float:
        if not self.gains:
            return 0.0
        return sum(self.gains.values()) / len(self.gains)


class UnicornDebugger:
    """Debug non-functional faults with causal reasoning."""

    def __init__(self, system: ConfigurableSystem,
                 config: UnicornConfig | None = None) -> None:
        self.unicorn = Unicorn(system, config)
        self.system = system
        self.config = self.unicorn.config

    # ------------------------------------------------------------------ API
    def debug_fault(self, fault: Fault,
                    objectives: Sequence[str] | None = None,
                    initial_measurements: Sequence[Measurement] = (),
                    qos: Mapping[str, float] | None = None) -> DebugResult:
        """Debug a catalogued fault (convenience wrapper)."""
        objective_names = list(objectives or fault.objectives)
        return self.debug(fault.configuration_dict(),
                          faulty_measurement=fault.measured_dict(),
                          objectives=objective_names,
                          initial_measurements=initial_measurements, qos=qos)

    def debug(self, faulty_configuration: Mapping[str, float],
              faulty_measurement: Mapping[str, float] | None = None,
              objectives: Sequence[str] | None = None,
              initial_measurements: Sequence[Measurement] = (),
              qos: Mapping[str, float] | None = None) -> DebugResult:
        """Run the debugging loop for one fault.

        Parameters
        ----------
        faulty_configuration:
            The misconfiguration observed in production.
        faulty_measurement:
            Its measured objectives; measured on the spot when omitted.
        objectives:
            The objectives that are faulty (defaults to all objectives).
        initial_measurements:
            Previously measured configurations to seed Stage II (used by the
            transfer experiments to reuse source-environment data).
        qos:
            Optional per-objective thresholds; when every faulty objective
            satisfies its threshold the loop stops early ("fault fixed").
        """
        started = time.perf_counter()
        objective_names = list(objectives or self.system.objective_names)
        directions = {o: self.system.objectives[o] for o in objective_names}
        query = PerformanceQuery.repair(directions)

        if faulty_measurement is None:
            faulty = self.system.measure(faulty_configuration,
                                         n_repeats=self.config.n_repeats)
            faulty_measurement = dict(faulty.objectives)
        faulty_configuration = self.system.space.clamp(faulty_configuration)

        state = LoopState()
        self.unicorn.collect_initial_samples(state, initial_measurements)
        engine = self.unicorn.learn(state)

        best_config = dict(faulty_configuration)
        best_measurement = dict(faulty_measurement)
        best_score = 0.0
        root_causes: list[str] = []
        no_improvement_streak = 0
        tried: set[tuple[tuple[str, float], ...]] = {
            tuple(sorted(faulty_configuration.items()))}

        while self.unicorn.remaining_budget(state) > 0:
            answer = engine.answer(query,
                                   faulty_configuration=faulty_configuration,
                                   faulty_measurement=faulty_measurement)
            # Accumulate the options surfacing on top-ranked causal paths as
            # the model evolves; the union over iterations is the root-cause
            # report (later models are better, earlier findings stay valid).
            for option in answer.root_causes:
                if option not in root_causes:
                    root_causes.append(option)
            candidate = None
            explore = (state.iterations % 2 == 1
                       if self.config.exploration_fraction >= 0.5
                       else state.iterations % 4 == 3)
            if self.config.exploration_fraction <= 0.0:
                explore = False
            if not explore and answer.repairs is not None:
                # Walk down the ranked repair set until an untried candidate
                # configuration is found.
                for repair in answer.repairs:
                    proposal = dict(faulty_configuration)
                    proposal.update(repair.as_dict())
                    key = tuple(sorted(proposal.items()))
                    if key not in tried:
                        candidate = proposal
                        break
            if candidate is None:
                candidate = self.unicorn.propose_exploration(
                    state, best_config)
            tried.add(tuple(sorted(candidate.items())))

            measurement = self.unicorn.measure_and_update(state, candidate)
            score = self._improvement_score(measurement.objectives,
                                            faulty_measurement, directions)
            state.history.append({
                "iteration": float(state.iterations),
                "score": score,
                "relearn_seconds": (state.relearn_seconds[-1]
                                    if state.relearn_seconds else 0.0),
                **{f"objective:{o}": measurement.objectives[o]
                   for o in objective_names},
            })
            if score > best_score:
                best_score = score
                best_config = dict(measurement.configuration)
                best_measurement = dict(measurement.objectives)
                no_improvement_streak = 0
            else:
                no_improvement_streak += 1

            # measure_and_update refreshed the engine in place (incremental
            # path) or rebuilt it (cold fallback); re-read either way.
            engine = state.engine
            if self._qos_satisfied(best_measurement, directions, qos):
                break
            if no_improvement_streak >= self.config.termination_patience:
                break

        gains = {
            o: gain_metric(faulty_measurement[o], best_measurement[o],
                           directions[o])
            for o in objective_names
        }
        changed = [name for name in best_config
                   if best_config[name] != faulty_configuration.get(name)]
        root_causes = self._pad_root_causes(root_causes, engine,
                                            objective_names, changed)
        elapsed = time.perf_counter() - started
        return DebugResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives=directions,
            faulty_configuration=dict(faulty_configuration),
            faulty_measurement=dict(faulty_measurement),
            recommended_configuration=best_config,
            recommended_measurement=best_measurement,
            root_causes=root_causes,
            changed_options=changed,
            gains=gains,
            iterations=state.iterations,
            samples_used=state.samples_used,
            wall_clock_seconds=elapsed,
            simulated_hours=(state.samples_used
                             * self.system.measurement_cost_seconds / 3600.0),
            fixed=self._qos_satisfied(best_measurement, directions, qos)
            or all(g > 0 for g in gains.values()),
            history=state.history)

    # ------------------------------------------------------------------ impl
    def _pad_root_causes(self, root_causes: list[str], engine,
                         objective_names: Sequence[str],
                         changed_options: Sequence[str],
                         limit: int = 5) -> list[str]:
        """Complete the root-cause report up to ``limit`` options.

        Options discovered on top-ranked causal paths come first; if the
        learned graph is still sparse they are supplemented with the options
        carrying the largest estimated causal effect on the faulty
        objectives, and finally with the options the accepted repair changed.
        """
        causes = list(root_causes)
        if len(causes) < limit and engine is not None:
            totals: dict[str, float] = {}
            for objective in objective_names:
                for option, effect in engine.option_effects(objective).items():
                    totals[option] = totals.get(option, 0.0) + effect
            for option in sorted(totals, key=totals.get, reverse=True):
                if len(causes) >= limit:
                    break
                if totals[option] > 0 and option not in causes:
                    causes.append(option)
        for option in changed_options:
            if len(causes) >= limit:
                break
            if option not in causes:
                causes.append(option)
        return causes[:limit]

    @staticmethod
    def _improvement_score(measured: Mapping[str, float],
                           faulty: Mapping[str, float],
                           directions: Mapping[str, str]) -> float:
        """Mean relative improvement over the fault across objectives."""
        scores = []
        for objective, direction in directions.items():
            scores.append(gain_metric(faulty[objective], measured[objective],
                                      direction))
        return sum(scores) / len(scores) if scores else 0.0

    @staticmethod
    def _qos_satisfied(measured: Mapping[str, float],
                       directions: Mapping[str, str],
                       qos: Mapping[str, float] | None) -> bool:
        if not qos:
            return False
        for objective, threshold in qos.items():
            direction = directions.get(objective, "minimize")
            value = measured.get(objective)
            if value is None:
                return False
            if direction == "minimize" and value > threshold:
                return False
            if direction == "maximize" and value < threshold:
                return False
        return True
