"""Performance optimization with Unicorn.

``UnicornOptimizer`` runs the active loop for optimization queries: it uses
the causal model's repair machinery with the *current best* configuration in
the role of the fault, so every iteration proposes the configuration change
with the largest counterfactually estimated improvement, measures it, and
updates the model.  For multi-objective optimization the objectives are
scalarised with rotating Chebyshev weights and the Pareto front of everything
measured is maintained — Fig. 15 reports both the single-objective traces and
the multi-objective hypervolume error against PESMO.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.metrics.optimization import pareto_front
from repro.systems.base import ConfigurableSystem, Measurement


@dataclass
class OptimizationResult:
    """Outcome of one optimization run."""

    system: str
    environment: str
    objectives: dict[str, str]
    best_configuration: dict[str, float]
    best_objectives: dict[str, float]
    iterations: int
    samples_used: int
    wall_clock_seconds: float
    simulated_hours: float
    #: best-so-far value of each objective after every measurement
    trace: list[dict[str, float]] = field(default_factory=list)
    #: all measured objective vectors (for Pareto-front construction)
    evaluated: list[dict[str, float]] = field(default_factory=list)
    #: wall-clock seconds of each model (re-)learn during the loop
    relearn_seconds: list[float] = field(default_factory=list)

    def best_so_far(self, objective: str) -> list[float]:
        return [entry[objective] for entry in self.trace]

    def pareto_points(self, objectives: Sequence[str] | None = None
                      ) -> list[tuple[float, ...]]:
        """Pareto front of all evaluated configurations (all minimised)."""
        names = list(objectives or self.objectives)
        points = []
        for entry in self.evaluated:
            point = []
            for name in names:
                value = entry[name]
                point.append(value if self.objectives[name] == "minimize"
                             else -value)
            points.append(tuple(point))
        return pareto_front(points)


class UnicornOptimizer:
    """Optimize one or several performance objectives with causal reasoning."""

    def __init__(self, system: ConfigurableSystem,
                 config: UnicornConfig | None = None) -> None:
        self.unicorn = Unicorn(system, config)
        self.system = system
        self.config = self.unicorn.config

    def optimize(self, objectives: Sequence[str] | None = None,
                 initial_measurements: Sequence[Measurement] = ()
                 ) -> OptimizationResult:
        """Run the optimization loop until the measurement budget is spent."""
        started = time.perf_counter()
        objective_names = list(objectives or self.system.objective_names)
        directions = {o: self.system.objectives[o] for o in objective_names}

        state = LoopState()
        self.unicorn.collect_initial_samples(state, initial_measurements)
        engine = self.unicorn.learn(state)

        best_config, best_objectives = self._incumbent(state.measurements,
                                                       directions)
        trace: list[dict[str, float]] = [dict(best_objectives)]
        evaluated = [dict(m.objectives) for m in state.measurements]
        weight_rng = np.random.default_rng(self.config.seed + 1)

        stall = 0
        while self.unicorn.remaining_budget(state) > 0:
            weights = self._scalarisation_weights(objective_names, weight_rng)
            # One batched repair scan: the candidate grid is enumerated once
            # and every candidate's counterfactual objectives are scored in
            # a single vectorized call inside the engine.
            repair_set = engine.repair_set(best_config, best_objectives,
                                           directions)
            candidate = None
            best_predicted = -np.inf
            top = repair_set.top(10)
            if top:
                scores = self._scalarised_improvements(
                    top, best_objectives, directions, weights)
                index = int(np.argmax(scores))
                best_predicted = float(scores[index])
                candidate = dict(best_config)
                candidate.update(top[index].as_dict())
            if candidate is None or best_predicted <= 0:
                candidate = self.unicorn.propose_exploration(state, best_config)

            measurement = self.unicorn.measure_and_update(state, candidate)
            evaluated.append(dict(measurement.objectives))
            # The incremental path refreshes the engine in place; the cold
            # fallback replaces it.  Either way the loop keeps querying the
            # current one.
            engine = state.engine

            if self._dominates_or_improves(measurement.objectives,
                                           best_objectives, directions):
                best_config = dict(measurement.configuration)
                best_objectives = {o: measurement.objectives[o]
                                   for o in objective_names}
                stall = 0
            else:
                stall += 1
            trace.append(dict(best_objectives))

        elapsed = time.perf_counter() - started
        return OptimizationResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives=directions,
            best_configuration=best_config,
            best_objectives=best_objectives,
            iterations=state.iterations,
            samples_used=state.samples_used,
            wall_clock_seconds=elapsed,
            simulated_hours=(state.samples_used
                             * self.system.measurement_cost_seconds / 3600.0),
            trace=trace,
            evaluated=evaluated,
            relearn_seconds=list(state.relearn_seconds))

    # ------------------------------------------------------------------ impl
    def _incumbent(self, measurements: Sequence[Measurement],
                   directions: Mapping[str, str]
                   ) -> tuple[dict[str, float], dict[str, float]]:
        """Best configuration among the measurements (scalarised equally)."""
        best_config: dict[str, float] = {}
        best_objectives: dict[str, float] = {}
        best_score = -np.inf
        for measurement in measurements:
            score = 0.0
            for objective, direction in directions.items():
                value = measurement.objectives[objective]
                score += -value if direction == "minimize" else value
            if score > best_score:
                best_score = score
                best_config = dict(measurement.configuration)
                best_objectives = {o: measurement.objectives[o]
                                   for o in directions}
        return best_config, best_objectives

    @staticmethod
    def _scalarisation_weights(objectives: Sequence[str],
                               rng: np.random.Generator) -> dict[str, float]:
        if len(objectives) == 1:
            return {objectives[0]: 1.0}
        raw = rng.dirichlet(np.ones(len(objectives)))
        return {o: float(w) for o, w in zip(objectives, raw)}

    @staticmethod
    def _scalarised_improvement(predicted: Mapping[str, float],
                                incumbent: Mapping[str, float],
                                directions: Mapping[str, str],
                                weights: Mapping[str, float]) -> float:
        total = 0.0
        for objective, direction in directions.items():
            baseline = float(incumbent[objective])
            value = float(predicted.get(objective, baseline))
            scale = max(abs(baseline), 1e-9)
            delta = (baseline - value) if direction == "minimize" else (value - baseline)
            total += weights.get(objective, 1.0) * delta / scale
        return total

    @classmethod
    def _scalarised_improvements(cls, repairs: Sequence,
                                 incumbent: Mapping[str, float],
                                 directions: Mapping[str, str],
                                 weights: Mapping[str, float]) -> np.ndarray:
        """Scalarised predicted improvement of each candidate repair."""
        return np.array([
            cls._scalarised_improvement(repair.predicted_objectives(),
                                        incumbent, directions, weights)
            for repair in repairs
        ], dtype=float)

    @staticmethod
    def _dominates_or_improves(measured: Mapping[str, float],
                               incumbent: Mapping[str, float],
                               directions: Mapping[str, str]) -> bool:
        """True if the new point improves the (equal-weight) scalarisation."""
        total = 0.0
        for objective, direction in directions.items():
            baseline = float(incumbent[objective])
            value = float(measured[objective])
            scale = max(abs(baseline), 1e-9)
            delta = (baseline - value) if direction == "minimize" else (value - baseline)
            total += delta / scale
        return total > 0
