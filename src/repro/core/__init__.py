"""Unicorn core: the five-stage active-learning loop and its entry points.

* :class:`~repro.core.unicorn.Unicorn` — shared machinery: initial sampling,
  model learning, incremental update, inference-engine construction.
* :class:`~repro.core.debugger.UnicornDebugger` — performance debugging and
  repair of non-functional faults (Stage I-V for a repair query).
* :class:`~repro.core.optimizer.UnicornOptimizer` — single- and
  multi-objective performance optimization.
* :mod:`~repro.core.transfer` — reuse / fine-tune / rerun of learned causal
  performance models across environments.
"""

from repro.core.unicorn import Unicorn, UnicornConfig
from repro.core.debugger import DebugResult, UnicornDebugger
from repro.core.optimizer import OptimizationResult, UnicornOptimizer
from repro.core.transfer import TransferMode, TransferResult, transfer_debug

__all__ = [
    "Unicorn",
    "UnicornConfig",
    "UnicornDebugger",
    "DebugResult",
    "UnicornOptimizer",
    "OptimizationResult",
    "TransferMode",
    "TransferResult",
    "transfer_debug",
]
