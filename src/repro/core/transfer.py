"""Transferring causal performance models across environments (Section 8).

The paper evaluates three reuse strategies when the deployment environment
changes (different hardware or a larger workload):

* **Reuse** — apply the recommendation derived from the *source* environment
  directly in the target environment, without any new measurements.
* **+N (fine-tune)** — carry the source observational data over, measure a
  small number (25 in the paper) of fresh configurations in the target, and
  incrementally update the causal model before debugging.
* **Rerun** — learn everything from scratch in the target environment.

``transfer_debug`` implements all three for the debugging task; the
optimization analogue (``transfer_optimize``) mirrors the Fig. 17 workload
experiment by reusing/fine-tuning with a fraction of the original budget.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.debugger import DebugResult, UnicornDebugger
from repro.core.optimizer import OptimizationResult, UnicornOptimizer
from repro.core.unicorn import UnicornConfig
from repro.systems.base import ConfigurableSystem, Measurement
from repro.systems.faults import Fault


class TransferMode(enum.Enum):
    """How much of the source environment's knowledge is reused."""

    REUSE = "reuse"
    FINE_TUNE = "fine_tune"
    RERUN = "rerun"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransferMode.{self.name}"


@dataclass
class TransferResult:
    """Outcome of one transfer scenario."""

    mode: TransferMode
    source_environment: str
    target_environment: str
    debug_result: DebugResult | None = None
    optimization_result: OptimizationResult | None = None
    extra_target_samples: int = 0
    wall_clock_seconds: float = 0.0


def _source_measurements(source_system: ConfigurableSystem, n: int,
                         seed: int) -> list[Measurement]:
    rng = np.random.default_rng(seed)
    configs = source_system.space.sample_configurations(n, rng)
    return source_system.measure_many(configs, n_repeats=3, rng=rng)


def transfer_debug(source_system: ConfigurableSystem,
                   target_system: ConfigurableSystem,
                   fault: Fault,
                   mode: TransferMode,
                   config: UnicornConfig | None = None,
                   source_samples: int = 50,
                   fine_tune_samples: int = 25,
                   objectives: Sequence[str] | None = None) -> TransferResult:
    """Debug a fault in the target environment under a transfer strategy.

    The fault's configuration is re-measured in the *target* environment (its
    catalogued measurement came from wherever it was discovered), and the
    debugging loop is run with source knowledge injected according to
    ``mode``.
    """
    started = time.perf_counter()
    config = config or UnicornConfig()
    objective_names = list(objectives or fault.objectives)

    source_measurements = _source_measurements(source_system, source_samples,
                                               seed=config.seed + 17)
    faulty_config = fault.configuration_dict()
    faulty_in_target = target_system.measure(faulty_config,
                                             n_repeats=config.n_repeats)

    if mode is TransferMode.REUSE:
        # Recommend from the source model only: no target measurements beyond
        # validating the recommendation.
        reuse_config = UnicornConfig(**{
            **config.__dict__,
            "budget": len(source_measurements) + 3})
        debugger = UnicornDebugger(target_system, reuse_config)
        result = debugger.debug(faulty_config,
                                faulty_measurement=dict(
                                    faulty_in_target.objectives),
                                objectives=objective_names,
                                initial_measurements=source_measurements)
        extra_samples = result.samples_used - len(source_measurements)
    elif mode is TransferMode.FINE_TUNE:
        tune_config = UnicornConfig(**{
            **config.__dict__,
            "initial_samples": len(source_measurements) + fine_tune_samples,
            "budget": len(source_measurements) + fine_tune_samples
            + config.budget // 4,
        })
        debugger = UnicornDebugger(target_system, tune_config)
        result = debugger.debug(faulty_config,
                                faulty_measurement=dict(
                                    faulty_in_target.objectives),
                                objectives=objective_names,
                                initial_measurements=source_measurements)
        extra_samples = result.samples_used - len(source_measurements)
    else:  # RERUN
        debugger = UnicornDebugger(target_system, config)
        result = debugger.debug(faulty_config,
                                faulty_measurement=dict(
                                    faulty_in_target.objectives),
                                objectives=objective_names)
        extra_samples = result.samples_used

    return TransferResult(
        mode=mode,
        source_environment=source_system.environment.name,
        target_environment=target_system.environment.name,
        debug_result=result,
        extra_target_samples=max(extra_samples, 0),
        wall_clock_seconds=time.perf_counter() - started)


def transfer_optimize(source_system: ConfigurableSystem,
                      target_system: ConfigurableSystem,
                      mode: TransferMode,
                      config: UnicornConfig | None = None,
                      source_samples: int = 50,
                      budget_fraction: float = 0.2,
                      objectives: Sequence[str] | None = None) -> TransferResult:
    """Optimize in the target environment under a transfer strategy (Fig. 17)."""
    started = time.perf_counter()
    config = config or UnicornConfig()
    source_measurements = _source_measurements(source_system, source_samples,
                                               seed=config.seed + 29)

    if mode is TransferMode.REUSE:
        budget = len(source_measurements) + 2
        initial = source_measurements
    elif mode is TransferMode.FINE_TUNE:
        budget = len(source_measurements) + max(
            int(config.budget * budget_fraction), 5)
        initial = source_measurements
    else:
        budget = config.budget
        initial = ()

    run_config = UnicornConfig(**{**config.__dict__, "budget": budget})
    optimizer = UnicornOptimizer(target_system, run_config)
    result = optimizer.optimize(objectives=objectives,
                                initial_measurements=initial)
    return TransferResult(
        mode=mode,
        source_environment=source_system.environment.name,
        target_environment=target_system.environment.name,
        optimization_result=result,
        extra_target_samples=result.samples_used - len(initial),
        wall_clock_seconds=time.perf_counter() - started)
