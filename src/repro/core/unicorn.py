"""Shared Unicorn machinery: configuration, sampling and model maintenance.

``Unicorn`` owns everything the debugger and the optimizer have in common:

* restriction of the system's variable set to the options/events the user
  selected (the paper's "most relevant options" scenarios),
* collection of the initial observational sample (Stage II's input),
* learning and incrementally updating the causal performance model
  (Stages II and IV),
* building a :class:`CausalInferenceEngine` over the current model
  (Stages III and V),
* ACE-guided proposal of the next configuration to measure (Stage III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.discovery.constraints import StructuralConstraints
from repro.discovery.pipeline import CausalModelLearner, LearnedModel
from repro.inference.engine import CausalInferenceEngine
from repro.stats.dataset import Dataset
from repro.systems.base import ConfigurableSystem, Measurement


@dataclass
class UnicornConfig:
    """Hyper-parameters of the Unicorn active-learning loop.

    The defaults follow the paper's experimental parameters: 25 initial
    samples (10% of the sampling budget), the entropy threshold factor 0.8,
    and K top causal paths between 3 and 25.
    """

    initial_samples: int = 25
    budget: int = 100
    n_repeats: int = 3
    top_k_paths: int = 5
    alpha: float = 0.05
    max_condition_size: int = 1
    bins: int = 6
    entropy_threshold_factor: float = 0.8
    max_contexts: int = 60
    termination_patience: int = 12
    #: fraction of active-loop iterations spent on ACE-guided exploration
    #: (improving the causal model) rather than measuring the top-ranked
    #: counterfactual repair; Stage III of the paper is exactly this
    #: exploration step, with exploitation happening through the repair
    #: estimates of Stage V.
    exploration_fraction: float = 0.5
    #: evaluate interventional/counterfactual queries (ACE sweeps, repair
    #: scans, satisfaction probabilities) through the vectorized
    #: ``BatchedFittedModel``; set False to pin the engine to the scalar
    #: reference path (the differential-testing oracle).
    batched_queries: bool = True
    seed: int = 0
    relevant_options: Sequence[str] | None = None
    relevant_events: Sequence[str] | None = None


@dataclass
class LoopState:
    """Mutable state of one active-learning run."""

    measurements: list[Measurement] = field(default_factory=list)
    learned: LearnedModel | None = None
    engine: CausalInferenceEngine | None = None
    iterations: int = 0
    history: list[dict[str, float]] = field(default_factory=list)
    #: wall-clock seconds of each (re-)learn, in call order; entries produced
    #: by the incremental path are also flagged in ``learned.history``.
    relearn_seconds: list[float] = field(default_factory=list)

    @property
    def samples_used(self) -> int:
        return len(self.measurements)


class Unicorn:
    """Shared five-stage machinery over one configurable system."""

    def __init__(self, system: ConfigurableSystem,
                 config: UnicornConfig | None = None) -> None:
        self.system = system
        self.config = config or UnicornConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._option_names = self._select_options()
        self._event_names = self._select_events()
        self._objective_names = list(system.objective_names)
        self._constraints = StructuralConstraints.from_variable_lists(
            options=self._option_names, events=self._event_names,
            objectives=self._objective_names)
        self._learner = CausalModelLearner(
            self._constraints, alpha=self.config.alpha,
            max_condition_size=self.config.max_condition_size,
            bins=self.config.bins,
            entropy_threshold_factor=self.config.entropy_threshold_factor,
            seed=self.config.seed)
        self._domains = {name: system.space.option(name).values
                         for name in self._option_names}

    # ------------------------------------------------------------ selection
    def _select_options(self) -> list[str]:
        names = self.system.space.option_names
        if self.config.relevant_options is not None:
            wanted = [o for o in self.config.relevant_options if o in names]
            if wanted:
                return wanted
        return names

    def _select_events(self) -> list[str]:
        names = self.system.events
        if self.config.relevant_events is not None:
            wanted = [e for e in self.config.relevant_events if e in names]
            return wanted
        return names

    @property
    def option_names(self) -> list[str]:
        return list(self._option_names)

    @property
    def event_names(self) -> list[str]:
        return list(self._event_names)

    @property
    def objective_names(self) -> list[str]:
        return list(self._objective_names)

    @property
    def constraints(self) -> StructuralConstraints:
        return self._constraints

    @property
    def domains(self) -> dict[str, tuple[float, ...]]:
        return dict(self._domains)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    # ------------------------------------------------------------- datasets
    def _variables(self) -> list[str]:
        return self._option_names + self._event_names + self._objective_names

    def dataset_from_measurements(self,
                                  measurements: Sequence[Measurement]) -> Dataset:
        """Flatten measurements into a :class:`Dataset` over the loop's
        variables (options, then events, then objectives).

        Parameters
        ----------
        measurements:
            The measurements to tabulate; each contributes one row.

        Returns
        -------
        Dataset
            Column-named matrix with low-cardinality options marked
            discrete (CI tests pick their estimator from that flag).
        """
        rows = [m.as_row() for m in measurements]
        columns = self._variables()
        discrete = [name for name in self._option_names
                    if self.system.space.option(name).cardinality <= 12]
        return Dataset.from_rows(rows, columns=columns, discrete=discrete)

    # ------------------------------------------------------------ stage II
    def collect_initial_samples(self, state: LoopState,
                                initial_measurements: Sequence[Measurement] = ()
                                ) -> None:
        """Measure the initial configurations (or adopt provided ones)."""
        state.measurements.extend(initial_measurements)
        needed = self.config.initial_samples - len(state.measurements)
        if needed > 0:
            configs = self.system.space.sample_configurations(needed, self._rng)
            state.measurements.extend(self.system.measure_many(
                configs, n_repeats=self.config.n_repeats, rng=self._rng))

    def learn(self, state: LoopState,
              incremental: bool | None = None) -> CausalInferenceEngine:
        """Learn (or re-learn) the causal performance model from the state.

        By default the first call cold-starts the model and every later call
        routes through the incremental path: measurements not yet reflected
        in the model are appended in place to its dataset, the learner
        warm-starts discovery from the previous structure, and the existing
        inference engine is refreshed instead of being reconstructed.  Pass
        ``incremental=False`` to force the from-scratch path (used by
        benchmarks as the cold baseline).
        """
        started = time.perf_counter()
        if incremental is None:
            incremental = (state.learned is not None
                           and state.learned.skeleton_state is not None)
        if incremental and state.learned is not None:
            consumed = state.learned.data.n_rows
            new_rows = [m.as_row() for m in state.measurements[consumed:]]
            state.learned = self._learner.update(state.learned, new_rows)
            if state.engine is not None:
                state.engine.refresh(state.learned)
            else:  # pragma: no cover - incremental without a prior engine
                state.engine = CausalInferenceEngine(
                    state.learned, self._domains,
                    top_k_paths=self.config.top_k_paths,
                    max_contexts=self.config.max_contexts,
                    batched=self.config.batched_queries)
        else:
            data = self.dataset_from_measurements(state.measurements)
            state.learned = self._learner.learn(data)
            state.engine = CausalInferenceEngine(
                state.learned, self._domains,
                top_k_paths=self.config.top_k_paths,
                max_contexts=self.config.max_contexts,
                batched=self.config.batched_queries)
        state.relearn_seconds.append(time.perf_counter() - started)
        return state.engine

    def fit(self, initial_measurements: Sequence[Measurement] = ()
            ) -> LoopState:
        """Collect the initial sample and learn the first model in one call.

        The convenience entry point used by consumers that want a fitted,
        queryable model handle rather than to drive the active loop
        themselves — the serving layer's
        :class:`~repro.service.registry.ModelRegistry` fits registry
        entries through it, and later refreshes them via :meth:`learn`'s
        incremental path.

        Parameters
        ----------
        initial_measurements:
            Measurements to adopt before sampling; only the shortfall up to
            ``config.initial_samples`` is measured fresh.

        Returns
        -------
        LoopState
            A new loop state with ``measurements``, ``learned`` and
            ``engine`` populated (``engine`` is also reachable as
            ``state.engine``).
        """
        state = LoopState()
        self.collect_initial_samples(state, initial_measurements)
        self.learn(state)
        return state

    # ------------------------------------------------------------ stage III/IV
    def measure_and_update(self, state: LoopState,
                           configuration: Mapping[str, float],
                           relearn: bool = True,
                           incremental: bool | None = None) -> Measurement:
        """Measure one configuration and incrementally update the model."""
        measurement = self.system.measure(configuration,
                                          n_repeats=self.config.n_repeats,
                                          rng=self._rng)
        state.measurements.append(measurement)
        state.iterations += 1
        if relearn:
            self.learn(state, incremental=incremental)
        return measurement

    def propose_exploration(self, state: LoopState,
                            base_configuration: Mapping[str, float]) -> dict[str, float]:
        """ACE-guided perturbation of a configuration (Stage III heuristic).

        Options are perturbed with probability proportional to their causal
        effect on the objectives; perturbed options get a fresh value drawn
        uniformly from their domain.
        """
        config = dict(self.system.space.clamp(base_configuration))
        if state.engine is None:
            # No model yet: perturb a few options uniformly at random.
            for name in self._rng.choice(self._option_names,
                                         size=min(3, len(self._option_names)),
                                         replace=False):
                config[name] = float(self._rng.choice(self._domains[name]))
            return config
        probabilities = state.engine.sampling_probabilities(
            self._objective_names)
        for name in self._option_names:
            p = probabilities.get(name, 1.0 / max(len(self._option_names), 1))
            if self._rng.random() < min(4.0 * p, 0.9):
                config[name] = float(self._rng.choice(self._domains[name]))
        return config

    def remaining_budget(self, state: LoopState) -> int:
        """Measurements left before ``config.budget`` is exhausted."""
        return max(self.config.budget - state.samples_used, 0)
