"""The shard worker: one registry + batcher behind a spawn-safe IPC loop.

Each shard of a :class:`~repro.service.sharding.ShardedQueryService` is an
independent replica of the single-process serving stack: a
:class:`~repro.service.registry.ModelRegistry` holding the shard's fitted
subject models and a :class:`~repro.service.batcher.RequestBatcher`
coalescing drained requests into batched engine calls.  The
:class:`ShardServer` here is the worker's event loop — a plain
command/reply protocol over a pair of queues, with every message a
picklable tuple, so the same loop runs

* in a **worker process** (the production mode; the parent talks to it
  over ``multiprocessing`` queues, entered through the module-level
  :func:`run_shard_server` so the ``spawn`` start method can import it),
  and
* in a **worker thread** (the in-process mode used by tests and
  single-core environments; identical code path, identical pickled
  messages, no process boundary).

The command protocol (first tuple element is the verb)::

    ("fit", subject, spec)            -> ("fitted", subject, n_measurements,
                                          applied_op_id)
    ("upgrade", subject, spec)        -> same reply shape as "fit", but the
                                         model is always fitted fresh from
                                         the spec (never restored from the
                                         store) — the rolling-refresh path
    ("dispatch", batch_id, requests)  -> ("answers", batch_id, responses)
    ("observe", op_id, subject, ms)   -> ("observed", op_id, version,
                                          snapshot_op)
    ("quiesce", op_id)                -> ("quiesced", op_id,
                                          {subject: snapshot_op})
    ("flush", op_id)                  -> ("flushed", op_id, n_published,
                                          {subject: snapshot_op}) after
                                         registry.flush() made every entry
                                         durable
    ("sync",)                         -> no reply; joins pending refreshes
    ("stats", op_id)                  -> ("stats", op_id, payload)
    ("crash",)                        -> no reply; the worker dies abruptly
    ("shutdown",)                     -> ("bye",) after flushing final
                                         snapshots, then the loop returns

Quiesce and flush replies carry the registry's per-subject snapshot
watermarks, so the parent can compact its crash-replay journal even for
subjects that went quiet (no further live observes to ride a watermark
on).

Failures are replies, not silence: a fit error answers ``("fit_error",
subject, message)`` and an observe error ``("observe_error", op_id,
message)``; per-request engine errors ride inside the
:class:`~repro.service.requests.QueryResponse` objects as usual.  The only
command without a reply is ``crash`` — the fault-injection hook the
worker-crash requeue tests use to simulate a dying worker.

Because commands are handled strictly in arrival order by one loop, a
``quiesce`` reply doubles as a barrier: every dispatch and observe sent
before it has been fully processed (including joining any background
drift refreshes) by the time the reply arrives.
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

from repro.service.batcher import RequestBatcher
from repro.service.registry import ModelRegistry
from repro.service.requests import QueryRequest, QueryResponse


class InjectedCrash(BaseException):
    """Raised by the ``crash`` command to kill a worker abruptly.

    Derives from :class:`BaseException` so no defensive ``except
    Exception`` in the loop can swallow the simulated fault.
    """


class ShardServer:
    """The event loop of one shard worker.

    Parameters
    ----------
    shard_index:
        Position of this shard in the service's shard list (stamped on
        stats payloads for observability).
    commands, results:
        The inbound command queue and outbound reply queue.  Any object
        with blocking ``get()`` / ``put()`` works; the sharded service
        passes ``multiprocessing`` queues.
    registry_options:
        Keyword arguments for this worker's private
        :class:`ModelRegistry` (``capacity``, ``use_batched``,
        ``drift_threshold``, ``drift_min_window``, ``refresh_async``,
        ``store`` — passed as a path string so it pickles across the
        process boundary — and ``snapshot_every``).
    """

    def __init__(self, shard_index: int, commands, results,
                 registry_options: Mapping[str, object] | None = None)\
            -> None:
        self.shard_index = int(shard_index)
        self.commands = commands
        self.results = results
        self.registry = ModelRegistry(**dict(registry_options or {}))
        self.batcher = RequestBatcher()
        self.dispatches = 0
        self._dispatch_index = 0

    # ------------------------------------------------------------------ loop
    def run(self) -> None:
        """Serve commands until ``shutdown`` (or an injected crash)."""
        while True:
            command = self.commands.get()
            verb = command[0]
            if verb == "shutdown":
                # Graceful shutdown makes the store fully durable: fold
                # any buffered observations and snapshot every entry that
                # advanced past its last publish, so the next service
                # generation cold-starts byte-identical with no journal.
                self.registry.flush()
                self.results.put(("bye",))
                return
            if verb == "crash":
                raise InjectedCrash(
                    f"shard {self.shard_index} crash injected")
            if verb == "fit":
                self._handle_fit(command[1], command[2])
            elif verb == "upgrade":
                self._handle_fit(command[1], command[2], fresh=True)
            elif verb == "dispatch":
                self._handle_dispatch(command[1], command[2])
            elif verb == "observe":
                self._handle_observe(command[1], command[2], command[3])
            elif verb == "quiesce":
                self.registry.quiesce()
                self.results.put(("quiesced", command[1],
                                  self.registry.snapshot_watermarks()))
            elif verb == "flush":
                # Drain barrier + durability point: every entry's buffered
                # observations fold and publish, so after the reply the
                # store alone reproduces this worker's model state (the
                # hand-off a rolling refresh restores or rolls back from).
                self.registry.quiesce()
                published = self.registry.flush()
                self.results.put(("flushed", command[1], published,
                                  self.registry.snapshot_watermarks()))
            elif verb == "sync":
                # Reply-free barrier: join background refreshes so the
                # next command runs against the settled model state (the
                # parent's crash-replay path inserts one between journal
                # replay and requeued dispatches).
                self.registry.quiesce()
            elif verb == "stats":
                self.results.put(("stats", command[1], self.stats()))
            else:
                self.results.put(("protocol_error",
                                  f"unknown verb {verb!r}"))

    # -------------------------------------------------------------- handlers
    def _handle_fit(self, subject: str, spec: Mapping[str, object],
                    fresh: bool = False) -> None:
        try:
            if fresh:
                entry = self.registry.upgrade_spec(subject, spec)
            else:
                entry = self.registry.register_spec(subject, spec)
            # The restored watermark rides on the ack: a parent starting a
            # fresh service over an already-populated store advances its
            # op-id counter past it, so new observes are never mistaken
            # for replays of a previous service generation.
            self.results.put(("fitted", subject, entry.n_measurements,
                              entry.applied_op_id))
        except Exception as exc:  # noqa: BLE001 - reply, don't die
            self.results.put(("fit_error", subject, str(exc)))

    def _handle_dispatch(self, batch_id: int,
                         requests: Sequence[QueryRequest]) -> None:
        self.dispatches += 1
        self.results.put(("answers", batch_id,
                          self.answer(list(requests))))

    def _handle_observe(self, op_id: int, subject: str,
                        measurements: Sequence) -> None:
        try:
            version = self.registry.observe(subject, measurements,
                                            op_id=op_id)
            # The snapshot watermark rides on every observed reply: it
            # tells the parent how far this subject's durable snapshot
            # reaches, i.e. how much of its journal is safe to compact.
            # (With asynchronous refreshes the watermark can lag the op
            # that triggered the snapshot by one reply — compaction then
            # simply catches up on the next observe.)
            self.results.put(("observed", op_id, version,
                              self.registry.snapshot_watermark(subject)))
        except Exception as exc:  # noqa: BLE001 - reply, don't die
            self.results.put(("observe_error", op_id, str(exc)))

    # ------------------------------------------------------------- answering
    def answer(self, requests: list[QueryRequest]) -> list[QueryResponse]:
        """Answer one drained batch, one batcher call per subject group.

        Requests are grouped by subject in arrival order (the same move
        :class:`~repro.service.service.QueryService` makes when draining
        its queues) and each group is answered with coalesced batched
        engine calls; the responses come back aligned with ``requests``.
        A subject-level failure (unknown subject, dead engine) turns into
        per-request error responses rather than an exception.
        """
        by_subject: dict[str, list[int]] = {}
        for i, request in enumerate(requests):
            by_subject.setdefault(request.subject, []).append(i)
        responses: list[QueryResponse | None] = [None] * len(requests)
        for subject, indices in by_subject.items():
            self._dispatch_index += 1
            group = [requests[i] for i in indices]
            try:
                entry = self.registry.get(subject)
                answered = self.batcher.dispatch(
                    entry, group, dispatch_index=self._dispatch_index)
            except Exception as exc:  # noqa: BLE001 - isolate subjects
                answered = [QueryResponse(
                    request=request, subject=subject, model_version=-1,
                    value=None, dispatch_index=self._dispatch_index,
                    error=str(exc)) for request in group]
            # A misbehaving batcher returning too few responses must not
            # starve the tail requests of their replies.
            while len(answered) < len(group):
                short = group[len(answered)]
                answered.append(QueryResponse(
                    request=short, subject=subject, model_version=-1,
                    value=None, dispatch_index=self._dispatch_index,
                    error="batcher returned too few responses"))
            for i, response in zip(indices, answered):
                responses[i] = response
        return [response for response in responses if response is not None]

    def stats(self) -> dict:
        """JSON-friendly snapshot of this worker's serving counters."""
        drift = {}
        for subject in self.registry.subjects():
            entry = self.registry.get(subject)
            if entry.drift is not None:
                drift[subject] = entry.drift.state()
        return {"shard": self.shard_index,
                "subjects": self.registry.subjects(),
                "dispatches": self.dispatches,
                "engine_calls": self.batcher.calls,
                "answered": self.batcher.answered,
                "cache_hits": self.batcher.cache_hits,
                "cache_misses": self.batcher.cache_misses,
                "refreshes": self.registry.refreshes,
                "refreshes_skipped": self.registry.refreshes_skipped,
                "store_loads": self.registry.store_loads,
                "store_publishes": self.registry.store_publishes,
                "evicted_with_pending": self.registry.evicted_with_pending,
                "drift": drift}


def run_shard_server(shard_index: int, commands, results,
                     registry_options: Mapping[str, object] | None = None)\
        -> None:
    """Process entry point: run a :class:`ShardServer` until shutdown.

    Module-level (and all-picklable-arguments) so it works under both the
    ``fork`` and ``spawn`` multiprocessing start methods.  An injected
    crash exits the process abruptly with a nonzero code — the closest
    in-band analogue of a worker being OOM-killed.
    """
    try:
        ShardServer(shard_index, commands, results, registry_options).run()
    except InjectedCrash:  # pragma: no cover - exercised in a subprocess
        os._exit(13)


def run_shard_thread(shard_index: int, commands, results,
                     registry_options: Mapping[str, object] | None = None)\
        -> None:
    """Thread entry point: like :func:`run_shard_server`, dying quietly.

    An injected crash simply ends the thread without a reply — the
    thread-mode analogue of the process dying — so the parent's liveness
    monitor, requeue and respawn paths are exercised identically in both
    modes.
    """
    try:
        ShardServer(shard_index, commands, results, registry_options).run()
    except InjectedCrash:
        return
