"""Sharded multi-process query serving.

:class:`ShardedQueryService` scales the PR 4 serving stack past one
process and one GIL: subjects are hash-partitioned across ``shards``
worker replicas (:mod:`repro.service.worker`), each hosting its own
:class:`~repro.service.registry.ModelRegistry` and
:class:`~repro.service.batcher.RequestBatcher` behind a spawn-safe IPC
loop.  The parent keeps the familiar ``submit`` / ``submit_async`` /
``submit_many`` facade, routes every request to its subject's shard,
coalesces concurrently submitted requests into per-shard dispatch
batches, and adds the serving policies a multi-process tier needs:

* **Deterministic routing** — :func:`shard_of` hashes the subject name
  with SHA-256, so the shard assignment is a pure function of
  ``(subject, shards)``: stable across processes, runs and machines
  (Python's salted ``hash`` would not be).
* **Byte-identical answers** — workers fit their subjects from *specs*
  through :meth:`~repro.service.registry.ModelRegistry.register_spec`,
  a pure function of the spec, and refresh decisions are a deterministic
  function of the observation stream; answers therefore match the
  single-process :class:`~repro.service.service.QueryService` over
  :func:`registry_from_specs` byte for byte, for any shard count.  Each
  worker's per-entry :class:`~repro.service.result_cache.ResultCache` is
  scoped to its own replica and keyed by model version (invalidated by
  the observe-triggered refreshes it replays from the journal after a
  crash), so cached answers preserve the identity — hit/miss counts ride
  in :meth:`worker_stats` payloads.
* **Crash recovery** — a liveness monitor respawns a dead worker,
  restores its subjects (from the persistent model store's latest
  snapshots when ``store_path`` is set — no refit, no CI tests — and by
  refitting from specs otherwise), replays the shard's observation
  journal (so the replica reconverges to the exact pre-crash model
  state, including the drift detector's refresh schedule) and requeues
  the in-flight batches, up to ``max_requeues`` per batch before the
  batch's futures resolve with an error response instead of
  crash-looping.  With a store, each worker acknowledgement carries the
  subject's durable *snapshot watermark* and the parent compacts the
  journal up to it, so recovery replays only the journal **suffix**
  past the snapshot — the worker-side ``applied_op_id`` guard makes any
  overlap idempotent.
* **Backpressure and lifecycle** — a bounded in-flight budget raises
  :class:`~repro.service.service.AdmissionError` like the single-process
  tier, and :meth:`close` drains admitted work then resolves anything
  left with a deterministic
  :class:`~repro.service.service.ServiceClosedError`.

Ordering is preserved end to end: per shard, dispatches, observes,
quiesces and shutdown travel through one FIFO outbox and one FIFO command
queue, so :meth:`quiesce` is a true barrier — when it returns, every
previously submitted command on every shard (including background drift
refreshes) has completed.  Interleave observation phases and query phases
around :meth:`quiesce` and the serving history is deterministic, which is
how the byte-identity tests compare sharded against single-process runs.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import queue as queue_module
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Mapping, Sequence

from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.registry import ModelRegistry, UnknownSubjectError
from repro.service.requests import QueryRequest, QueryResponse
from repro.service.service import AdmissionError, ServiceClosedError
from repro.service.store import ModelStore, subject_key
from repro.service.tracing import Tracer
from repro.service.worker import run_shard_server, run_shard_thread


class RollingRefreshError(RuntimeError):
    """A rolling refresh failed; the fleet was rolled back where possible.

    Raised by :meth:`ShardedQueryService.rolling_refresh` after the
    failing shard kept (or was restored to) its previous generation and
    every shard upgraded earlier in the same sweep was downgraded back —
    the fleet is serving the *old* model generation when this surfaces.
    """


def shard_of(subject: str, shards: int) -> int:
    """Deterministic shard index of a subject key.

    SHA-256 of the UTF-8 subject name, reduced modulo ``shards`` — stable
    across interpreter runs and process boundaries, unlike the builtin
    (salted) ``hash``.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    digest = hashlib.sha256(subject.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def registry_from_specs(specs: Mapping[str, Mapping],
                        **registry_options) -> ModelRegistry:
    """Fit every ``subject -> spec`` into one single-process registry.

    The reference construction the sharded tier is held byte-identical
    to: the same :meth:`~repro.service.registry.ModelRegistry.
    register_spec` fits, in one process.  Keyword arguments are forwarded
    to :class:`ModelRegistry`; ``capacity`` defaults to the number of
    subjects so nothing is evicted mid-comparison.
    """
    registry_options.setdefault("capacity", max(len(specs), 1))
    registry = ModelRegistry(**registry_options)
    for subject, spec in specs.items():
        registry.register_spec(subject, spec)
    return registry


@dataclass
class ShardedServiceStats:
    """Parent-side counters of one sharded service's lifetime of work."""

    submitted: int = 0
    answered: int = 0
    rejected: int = 0
    cancelled: int = 0
    #: requests settled with a parent-synthesized *error* response —
    #: requeue-budget exhaustion after repeated worker crashes, or a
    #: worker reply that came back short.  These used to be folded into
    #: ``answered`` as if they had succeeded; monitoring now sees them.
    errors: int = 0
    #: dispatch batches resent to a respawned worker after a crash.
    requeues: int = 0
    #: workers respawned by the liveness monitor.
    respawns: int = 0
    #: futures resolved with ``ServiceClosedError`` by :meth:`close`.
    closed_errors: int = 0
    #: dispatch batches sent (per-shard coalescing opportunities).
    dispatch_batches: int = 0
    #: journal entries dropped because a durable snapshot covered them.
    journal_ops_compacted: int = 0
    #: fleet-wide :meth:`ShardedQueryService.rolling_refresh` sweeps that
    #: completed (every shard now serves the new model generation).
    rolling_refreshes: int = 0
    #: shards downgraded back to their previous generation after a
    #: failed rolling-refresh sweep.
    refresh_rollbacks: int = 0
    per_shard_answered: dict = field(default_factory=dict)


@dataclass
class _Pending:
    """A routed request with its future and enqueue timestamp."""

    request: QueryRequest
    future: Future
    enqueued_at: float


@dataclass
class _ControlOp:
    """A non-dispatch outbox entry (observe / quiesce / stats / shutdown)."""

    verb: str
    op_id: int
    future: Future | None = None
    payload: tuple = ()


class _Shard:
    """Parent-side handle of one worker: queues, runner, tracking state."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.subjects: dict[str, Mapping] = {}
        self.command_queue = None
        self.result_queue = None
        self.runner = None
        #: submissions not yet sent to the worker, in arrival order.
        self.outbox: deque = deque()
        self.cv = threading.Condition()
        #: guards queue swaps (respawn) and every ``put`` to the worker.
        self.lock = threading.Lock()
        #: dispatch batches sent but not yet answered.
        self.inflight: dict[int, list[_Pending]] = {}
        self.requeue_counts: dict[int, int] = {}
        #: control ops awaiting replies, by op id.
        self.control: dict[int, _ControlOp] = {}
        #: observes not yet covered by a durable snapshot, kept for
        #: deterministic crash replay.  With a model store configured,
        #: every ``observed`` acknowledgement carries the subject's
        #: snapshot watermark and the parent drops journal entries at or
        #: below it (suffix compaction) — the journal stays bounded by
        #: the snapshot cadence instead of growing with the stream.
        #: Without a store it degrades to the pre-store behaviour: the
        #: full journal, replayed in its entirety on respawn.  See
        #: docs/serving.md.
        self.journal: list[tuple[int, str, Sequence]] = []
        #: set when a respawn failed permanently; the shard fails new
        #: work fast instead of queueing it for a worker that will never
        #: answer.
        self.failed = False
        #: model generation of the currently installed worker, bumped at
        #: every rolling-refresh queue swap.  The reader captures it with
        #: the result queue and discards replies whose generation no
        #: longer matches — a swapped-out worker's final messages (its
        #: ``bye``, a late ack) must not be resolved against the new
        #: generation's tracking.
        self.generation = 0
        #: sender gate: ``True`` while a rolling refresh drains/replaces
        #: this shard's worker; submissions keep queueing on the outbox
        #: and are sent when the new generation is admitted.
        self.paused = False
        #: ``True`` while a rolling refresh owns this shard's worker
        #: lifecycle; the reader's liveness monitor must not respawn the
        #: old generation out from under it.
        self.refreshing = False
        self.sender: threading.Thread | None = None
        self.reader: threading.Thread | None = None
        #: most recent worker-side counters (set by ``worker_stats``);
        #: lets ``metrics_snapshot`` report fleet cache traffic without
        #: an IPC round-trip.
        self.last_stats: dict | None = None

    def alive(self) -> bool:
        """Whether this shard's worker process/thread is running."""
        return self.runner is not None and self.runner.is_alive()


class ShardedQueryService:
    """Hash-sharded, multi-process serving tier over spec-fitted subjects.

    Parameters
    ----------
    specs:
        ``subject name -> spec`` mapping; each worker fits its shard's
        subjects from these specs at startup (see
        :meth:`~repro.service.registry.ModelRegistry.get_or_fit` for the
        recognised spec keys).
    shards:
        Number of worker replicas; subjects are assigned by
        :func:`shard_of`.
    use_processes:
        ``True`` (default) runs each worker as a daemon process over
        ``multiprocessing`` queues (``fork`` where available, ``spawn``
        otherwise).  ``False`` runs the identical worker loop on daemon
        threads in this process — the mode single-core test environments
        use; messages still cross the same pickled-queue transport.
    use_batched, drift_threshold, drift_min_window, refresh_async,
    result_cache_size:
        Forwarded to each worker's private :class:`ModelRegistry`
        (``result_cache_size=0`` disables cross-request memoization).
    batch_window:
        Seconds the per-shard sender waits after the first pending
        submission for more to arrive before flushing — the cross-client
        coalescing window (0 flushes immediately).
    max_pending:
        Bound on unresolved requests across the service; beyond it
        :meth:`submit_async` raises :class:`AdmissionError`.
    max_requeues:
        Crash-requeue budget per dispatch batch; exhausted batches
        resolve with error responses instead of respawn-looping.
    start_timeout:
        Seconds to wait for a worker to fit its subjects at startup (and
        again on respawn) before giving up.
    store_path:
        Directory of a persistent :class:`~repro.service.store.ModelStore`
        shared by every worker (each opens it by path — a plain string
        crosses the ``spawn`` process boundary).  Workers then cold-start
        and crash-recover by *loading* their subjects' latest snapshots
        instead of refitting, publish fresh snapshots at every refresh
        boundary, and the parent compacts its observation journal up to
        each acknowledged snapshot watermark.  ``None`` (default) keeps
        the in-memory refit-plus-full-replay behaviour.
    snapshot_every:
        Forwarded to each worker registry: in eager mode
        (``drift_threshold=None``) a durable snapshot is published every
        N-th observe fold rather than every fold, bounding durability
        cost on hot observation streams (the journal covers the gap).

    Examples
    --------
    >>> specs = {"db": {"system": "sqlite", "n_samples": 60}}
    >>> with ShardedQueryService(specs, shards=4) as service:  # doctest: +SKIP
    ...     response = service.submit(
    ...         EffectRequest.of("db", "QueryTime",
    ...                          {"PRAGMA_CACHE_SIZE": 4096.0}))
    """

    def __init__(self, specs: Mapping[str, Mapping], shards: int = 2,
                 use_processes: bool = True, use_batched: bool = True,
                 drift_threshold: float | None = None,
                 drift_min_window: int = 4, refresh_async: bool = True,
                 batch_window: float = 0.001, max_pending: int = 4096,
                 max_requeues: int = 2,
                 start_timeout: float = 300.0,
                 result_cache_size: int | None = 256,
                 store_path: str | None = None,
                 snapshot_every: int = 1,
                 tracer: Tracer | None = None) -> None:
        if not specs:
            raise ValueError("a sharded service needs at least one subject")
        if shards < 1 or max_pending < 1 or max_requeues < 0:
            raise ValueError("shards/max_pending must be >= 1, "
                             "max_requeues >= 0")
        self.shards = int(shards)
        self.use_processes = bool(use_processes)
        self.batch_window = float(batch_window)
        self.max_pending = int(max_pending)
        self.max_requeues = int(max_requeues)
        self.start_timeout = float(start_timeout)
        self.stats = ShardedServiceStats()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = ServiceMetrics()
        self._registry_options = {
            "use_batched": bool(use_batched),
            "drift_threshold": drift_threshold,
            "drift_min_window": int(drift_min_window),
            "refresh_async": bool(refresh_async),
            "result_cache_size": result_cache_size,
            "store": None if store_path is None else str(store_path),
            "snapshot_every": int(snapshot_every),
        }
        self.store_path = None if store_path is None else str(store_path)
        self._ctx = (mp.get_context("fork")
                     if "fork" in mp.get_all_start_methods()
                     else mp.get_context("spawn"))
        self._lock = threading.Lock()
        #: serializes whole rolling-refresh sweeps; one at a time.
        self._refresh_lock = threading.Lock()
        self._closed = False
        self._n_unresolved = 0
        self._next_batch_id = 0
        self._next_op_id = 0
        self._subject_shard: dict[str, int] = {}
        self._shards: list[_Shard] = [_Shard(i) for i in range(self.shards)]
        for subject, spec in specs.items():
            index = shard_of(subject, self.shards)
            self._subject_shard[subject] = index
            self._shards[index].subjects[subject] = dict(spec)
        for shard in self._shards:
            self._start_worker(shard)
        for shard in self._shards:
            shard.sender = threading.Thread(
                target=self._sender_loop, args=(shard,),
                name=f"shard-{shard.index}-sender", daemon=True)
            shard.reader = threading.Thread(
                target=self._reader_loop, args=(shard,),
                name=f"shard-{shard.index}-reader", daemon=True)
            shard.sender.start()
            shard.reader.start()

    # -------------------------------------------------------------- lifecycle
    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _registry_capacity(self, shard: _Shard) -> int:
        """Per-worker registry capacity: hold every assigned subject."""
        return max(len(shard.subjects), 1)

    def _start_worker(self, shard: _Shard) -> None:
        """Create fresh queues and a worker, then wait for its fits."""
        with shard.lock:
            self._start_worker_locked(shard)

    def _start_worker_locked(self, shard: _Shard) -> None:
        """:meth:`_start_worker` body; the caller holds ``shard.lock``.

        Fresh queues on every (re)start are deliberate: commands left in
        a dead worker's queue must not be double-executed by its
        replacement — recovery replays from the parent's own journal and
        in-flight tracking instead.
        """
        options = dict(self._registry_options,
                       capacity=self._registry_capacity(shard))
        shard.command_queue = self._ctx.Queue()
        shard.result_queue = self._ctx.Queue()
        shard.runner = self._spawn_runner(shard.index, shard.command_queue,
                                          shard.result_queue, options)
        for subject, spec in shard.subjects.items():
            shard.command_queue.put(("fit", subject, spec))
        deadline = time.monotonic() + self.start_timeout
        for _ in shard.subjects:
            try:
                message = self._next_fit_reply(shard.index,
                                               shard.result_queue,
                                               shard.runner, deadline)
            except BaseException:
                # The worker outlives the failed start otherwise — a
                # thread parked on the command queue until its EOF, a
                # process serving nobody.
                self._kill_runner(shard.runner, shard.command_queue)
                raise
            if message[0] == "fit_error":
                self._kill_runner(shard.runner, shard.command_queue)
                raise RuntimeError(f"shard {shard.index} failed to fit "
                                   f"{message[1]!r}: {message[2]}")
            if message[0] == "fitted" and len(message) > 3:
                # A subject restored from a store snapshot carries the
                # op-id watermark of the service generation that published
                # it; start our own op ids past it so fresh observes are
                # never skipped as replays of a previous generation.
                with self._lock:
                    self._next_op_id = max(self._next_op_id,
                                           int(message[3]))

    def _spawn_runner(self, index: int, command_queue, result_queue,
                      options: dict):
        """Start one worker process/thread over the given queue pair."""
        if self.use_processes:
            runner = self._ctx.Process(
                target=run_shard_server,
                args=(index, command_queue, result_queue, options),
                name=f"shard-worker-{index}", daemon=True)
        else:
            runner = threading.Thread(
                target=run_shard_thread,
                args=(index, command_queue, result_queue, options),
                name=f"shard-worker-{index}", daemon=True)
        runner.start()
        return runner

    def _next_fit_reply(self, index: int, result_queue, runner,
                        deadline: float) -> tuple:
        """Wait out one fit acknowledgement, in short polls.

        Polling (instead of one long blocking ``get``) is what lets
        :meth:`close` interrupt a reader thread stuck refitting inside
        :meth:`_respawn` — shutdown no longer waits out the full
        ``start_timeout`` against a half-restored worker — and lets the
        rolling-refresh path notice an upgrade worker that died mid-fit.
        """
        while True:
            if self._closed:
                raise ServiceClosedError(
                    f"service closed while shard {index} was fitting "
                    "its subjects")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"shard {index} did not fit its subjects within "
                    f"{self.start_timeout}s") from None
            try:
                return result_queue.get(timeout=min(remaining, 0.1))
            except queue_module.Empty:
                if runner is not None and not runner.is_alive():
                    raise RuntimeError(
                        f"shard {index} worker died before finishing "
                        "its fits") from None

    # ------------------------------------------------------------- submission
    def _route(self, request: QueryRequest) -> _Shard:
        index = self._subject_shard.get(request.subject)
        if index is None:
            raise UnknownSubjectError(
                f"unknown subject {request.subject!r}; served subjects: "
                f"{sorted(self._subject_shard)}")
        shard = self._shards[index]
        if shard.failed:
            raise ServiceClosedError(
                f"shard {index} failed permanently (worker could not be "
                "respawned); its subjects are unavailable")
        return shard

    def _admit(self, n: int) -> None:
        """Reserve ``n`` in-flight slots or raise (caller holds no locks)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("sharded service is closed")
            if self._n_unresolved + n > self.max_pending:
                self.stats.rejected += n
                raise AdmissionError(
                    f"in-flight budget cannot admit {n} more requests "
                    f"({self._n_unresolved}/{self.max_pending} used)")
            self._n_unresolved += n
            self.stats.submitted += n

    def submit_async(self, request: QueryRequest) -> Future:
        """Enqueue one request and return its :class:`Future`.

        The future resolves to a :class:`QueryResponse` (engine failures
        surface in ``response.error``); it raises
        :class:`ServiceClosedError` if the service closes before the
        request could be dispatched.

        Raises
        ------
        AdmissionError
            If the in-flight budget is exhausted (backpressure).
        ServiceClosedError
            If the service has been closed.
        UnknownSubjectError
            If no shard serves the request's subject.
        """
        shard = self._route(request)
        self._admit(1)
        trace = self.tracer.begin(request)
        if trace is not None:
            trace.shard = shard.index
        pending = _Pending(request=request, future=Future(),
                           enqueued_at=time.perf_counter())
        with shard.cv:
            shard.outbox.append(pending)
            shard.cv.notify_all()
        return pending.future

    def submit(self, request: QueryRequest,
               timeout: float | None = None) -> QueryResponse:
        """Enqueue one request and block until its response arrives."""
        return self.submit_async(request).result(timeout=timeout)

    def submit_many(self, requests: Sequence[QueryRequest],
                    timeout: float | None = None) -> list[QueryResponse]:
        """Enqueue a list of requests and wait for all their responses.

        Admission is atomic (the whole list or nothing), matching
        :meth:`QueryService.submit_many <repro.service.service.
        QueryService.submit_many>`; ``timeout`` bounds the whole call.
        """
        requests = list(requests)
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))
        routed = [self._route(request) for request in requests]
        self._admit(len(requests))
        now = time.perf_counter()
        futures = []
        by_shard: dict[int, list[_Pending]] = {}
        for request, shard in zip(requests, routed):
            trace = self.tracer.begin(request)
            if trace is not None:
                trace.shard = shard.index
            pending = _Pending(request=request, future=Future(),
                               enqueued_at=now)
            by_shard.setdefault(shard.index, []).append(pending)
            futures.append(pending.future)
        for index, pendings in by_shard.items():
            shard = self._shards[index]
            with shard.cv:
                shard.outbox.extend(pendings)
                shard.cv.notify_all()
        return [future.result(
                    timeout=None if deadline is None
                    else max(deadline - time.monotonic(), 0.0))
                for future in futures]

    @property
    def n_pending(self) -> int:
        """Requests admitted but not yet resolved."""
        with self._lock:
            return self._n_unresolved

    def subjects(self) -> list[str]:
        """Every subject this service routes, in name order."""
        return sorted(self._subject_shard)

    # ---------------------------------------------------------------- control
    def _control(self, shard: _Shard, verb: str,
                 payload: tuple = ()) -> Future:
        """Enqueue a control op on a shard's outbox (FIFO with dispatches)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("sharded service is closed")
            self._next_op_id += 1
            op = _ControlOp(verb=verb, op_id=self._next_op_id,
                            future=Future(), payload=payload)
        with shard.cv:
            shard.outbox.append(op)
            shard.cv.notify_all()
        return op.future

    def observe(self, subject: str, measurements: Sequence,
                block: bool = True, timeout: float | None = None):
        """Stream new measurements into a subject's shard-resident model.

        The shard's registry decides what to do with them: relearn
        immediately (no ``drift_threshold``) or buffer them until the
        drift detector fires (see :meth:`ModelRegistry.observe
        <repro.service.registry.ModelRegistry.observe>`).  The batch is
        journaled parent-side first, so a worker crash replays it and
        the respawned replica reconverges to the same model state.

        Parameters
        ----------
        subject:
            A subject this service routes.
        measurements:
            New :class:`~repro.systems.base.Measurement` objects.
        block:
            Wait for the worker's acknowledgement and return the entry
            version (``True``, default), or return a :class:`Future`
            resolving to it.
        timeout:
            Seconds to wait when blocking.
        """
        index = self._subject_shard.get(subject)
        if index is None:
            raise UnknownSubjectError(f"unknown subject {subject!r}")
        shard = self._shards[index]
        measurements = list(measurements)
        future = self._control(shard, "observe", (subject, measurements))
        if block:
            return future.result(timeout=timeout)
        return future

    def quiesce(self, timeout: float | None = 60.0) -> None:
        """Barrier: wait until every healthy shard has processed all
        prior work.

        Because each shard's outbox and command queue are FIFO, the reply
        to a quiesce op proves every dispatch and observe submitted
        before it has been answered — and the worker joins its
        registry's background drift refreshes before replying.  Call
        between observation and query phases to make an asynchronously
        refreshing service deterministic.

        A permanently *failed* shard is skipped (its work was already
        settled with errors when it failed): one dead shard must not
        turn the whole fleet's barrier into an exception while the
        healthy N-1 shards are still serving.  Only a closed *service*
        raises :class:`ServiceClosedError`.
        """
        futures = [(shard, None if shard.failed
                    else self._control(shard, "quiesce"))
                   for shard in self._shards]
        for shard, future in futures:
            if future is None:
                continue
            try:
                future.result(timeout=timeout)
            except ServiceClosedError:
                if self._closed:
                    raise
                # The shard failed between enqueue and reply; the
                # healthy shards still quiesced.

    def worker_stats(self, timeout: float | None = 60.0) -> list[dict]:
        """Fetch each worker's serving counters (one dict per shard).

        A permanently failed shard reports ``{"shard": i, "failed":
        True}`` instead of poisoning the whole call — monitoring keeps
        seeing the healthy N-1 shards.  Only a closed *service* raises
        :class:`ServiceClosedError`.
        """
        failed_stub = {"failed": True}
        futures = [(shard, None if shard.failed
                    else self._control(shard, "stats"))
                   for shard in self._shards]
        payloads = []
        for shard, future in futures:
            if future is None:
                payloads.append(dict(failed_stub, shard=shard.index))
                continue
            try:
                payload = future.result(timeout=timeout)
                shard.last_stats = payload  # feeds metrics_snapshot()
                payloads.append(payload)
            except ServiceClosedError:
                if self._closed:
                    raise
                payloads.append(dict(failed_stub, shard=shard.index))
        return payloads

    def stats_snapshot(self) -> ShardedServiceStats:
        """A consistent point-in-time copy of :attr:`stats`.

        All counter mutations already run under ``self._lock`` (the
        settlement path is multi-threaded — one reader thread per
        shard); taking the copy under the same lock guarantees the
        snapshot never shows ``answered + errors + closed_errors >
        submitted`` mid-burst.
        """
        with self._lock:
            return dataclasses_replace(
                self.stats,
                per_shard_answered=dict(self.stats.per_shard_answered))

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A :class:`~repro.service.metrics.MetricsSnapshot` of the fleet.

        Gauges come from the parent side only (no worker round-trips, so
        the call is cheap enough to poll): queue depth is the sum of the
        per-shard outboxes, the coalescing ratio is answers per dispatch
        batch, and ``refreshes`` counts completed rolling-refresh sweeps.
        Per-worker engine counters remain available via
        :meth:`worker_stats`.
        """
        queue_depth = 0
        for shard in self._shards:
            with shard.cv:
                queue_depth += len(shard.outbox)
        stats = self.stats_snapshot()
        with self._lock:
            in_flight = self._n_unresolved
        cache_hits, cache_misses = self._worker_cache_traffic()
        return MetricsSnapshot(
            queue_depth=queue_depth,
            in_flight=in_flight,
            submitted=stats.submitted,
            answered=stats.answered,
            coalescing_ratio=stats.answered
            / max(stats.dispatch_batches, 1),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            refreshes=stats.rolling_refreshes,
            batch_histogram=self.metrics.batch_sizes.as_dict(),
            latency_ms=self.metrics.latency.percentiles(),
            latency_samples=self.metrics.latency.count)

    def _worker_cache_traffic(self) -> tuple[int, int]:
        """Fleet-wide result-cache hit/miss totals (best effort).

        Worker counters require an IPC round-trip; a snapshot must stay
        cheap and non-blocking, so this sums the most recent counters
        each shard acknowledged, defaulting to zero for shards that have
        not reported yet.
        """
        hits = misses = 0
        for shard in self._shards:
            payload = getattr(shard, "last_stats", None)
            if payload:
                hits += int(payload.get("cache_hits", 0))
                misses += int(payload.get("cache_misses", 0))
        return hits, misses

    def flush(self, timeout: float | None = 60.0) -> int:
        """Make every shard's registry durable; returns snapshots written.

        Rides each healthy shard's FIFO outbox like :meth:`quiesce`, so
        it is a barrier *and* a durability point: when it returns, every
        previously submitted command has been processed and every
        worker-resident entry that advanced past its last snapshot has
        published to the model store (no-op without a ``store_path``).
        Each acknowledgement carries the worker's per-subject snapshot
        watermarks and the parent compacts its crash-replay journal up
        to them — this is how journals of *quiet* subjects (no further
        live observes to carry a watermark) finally shrink.
        """
        futures = [(shard, None if shard.failed
                    else self._control(shard, "flush"))
                   for shard in self._shards]
        published = 0
        for shard, future in futures:
            if future is None:
                continue
            try:
                published += int(future.result(timeout=timeout))
            except ServiceClosedError:
                if self._closed:
                    raise
        return published

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain admitted work, stop every worker, settle every future.

        Outstanding dispatches and observes are processed before each
        worker exits (the shutdown command queues behind them).  Anything
        that still cannot be resolved — e.g. a worker that died and
        could not be respawned in time — resolves with a deterministic
        :class:`ServiceClosedError` rather than hanging its client.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            op = _ControlOp(verb="shutdown", op_id=0)
            with shard.cv:
                # A sender paused by an in-flight rolling refresh must
                # still drain the shutdown; the refresh itself aborts at
                # its next closed-service check.
                shard.paused = False
                shard.outbox.append(op)
                shard.cv.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            for thread in (shard.sender, shard.reader):
                if thread is None:
                    continue
                remaining = (None if deadline is None
                             else max(deadline - time.monotonic(), 0.01))
                thread.join(timeout=remaining)
        for shard in self._shards:
            if shard.runner is not None and not shard.alive() \
                    and self.use_processes:
                shard.runner.join(timeout=1.0)
            self._settle_shard_closed(shard)

    def _settle_shard_closed(self, shard: _Shard) -> None:
        """Resolve every unsettled future of a shard with ServiceClosed."""
        with shard.cv:
            leftovers = list(shard.outbox)
            shard.outbox.clear()
        with shard.lock:
            for pendings in shard.inflight.values():
                leftovers.extend(pendings)
            shard.inflight.clear()
            ops = list(shard.control.values())
            shard.control.clear()
        for item in leftovers:
            if isinstance(item, _Pending):
                self._settle(item, exception=ServiceClosedError(
                    "service closed before the request was dispatched"))
            elif item.future is not None and not item.future.done():
                item.future.set_exception(ServiceClosedError(
                    "service closed before the operation completed"))
        for op in ops:
            if op.future is not None and not op.future.done():
                op.future.set_exception(ServiceClosedError(
                    "service closed before the operation completed"))

    # ------------------------------------------------------------- resolution
    def _settle(self, pending: _Pending,
                response: QueryResponse | None = None,
                exception: BaseException | None = None,
                synthesized_error: bool = False) -> None:
        """Resolve one pending future exactly once, tolerating cancellation.

        Counter updates happen under the service lock — settlement runs
        on every shard's reader thread concurrently, and unsynchronized
        ``+=`` would lose increments.  ``synthesized_error`` marks a
        response the *parent* fabricated because no worker answer exists
        (requeue budget exhausted, short reply): it counts in
        ``stats.errors``, not ``stats.answered`` — an error settlement is
        not a served answer.
        """
        # finish() pops the oldest live context — the occurrence this
        # settlement resolves — so repeats of one hot request object each
        # stamp their own context (mutating after the pop is fine, the
        # finished log holds the same object).
        if not pending.future.set_running_or_notify_cancel():
            with self._lock:
                self._n_unresolved -= 1
                self.stats.cancelled += 1
            trace = self.tracer.finish(pending.request)
            if trace is not None:
                trace.error = "cancelled"
            return
        if exception is not None:
            with self._lock:
                self._n_unresolved -= 1
                if isinstance(exception, ServiceClosedError):
                    self.stats.closed_errors += 1
            trace = self.tracer.finish(pending.request)
            if trace is not None:
                trace.error = type(exception).__name__
            pending.future.set_exception(exception)
            return
        with self._lock:
            self._n_unresolved -= 1
            if synthesized_error:
                self.stats.errors += 1
            else:
                self.stats.answered += 1
        trace = self.tracer.finish(pending.request)
        if trace is not None:
            trace.total_seconds = response.latency_seconds
            if response.error:
                trace.error = response.error
        pending.future.set_result(response)

    # ----------------------------------------------------------------- sender
    def _sender_loop(self, shard: _Shard) -> None:
        """Per-shard sender: wait, window, drain the outbox, send batches."""
        while True:
            with shard.cv:
                while not shard.outbox or shard.paused:
                    shard.cv.wait()
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            with shard.cv:
                drained = list(shard.outbox)
                shard.outbox.clear()
            if self._flush(shard, drained):
                return

    def _flush(self, shard: _Shard, drained: list) -> bool:
        """Send one drained outbox run, preserving order.

        Contiguous runs of requests become single dispatch batches;
        control ops are sent in place between them.  Returns ``True``
        when a shutdown op was sent (the sender then exits).
        """
        if shard.failed:
            # Nothing will ever answer; fail the drained work fast
            # instead of queueing it for a dead worker.
            for item in drained:
                if isinstance(item, _Pending):
                    self._settle(item, exception=ServiceClosedError(
                        f"shard {shard.index} failed permanently"))
                elif item.future is not None and not item.future.done():
                    item.future.set_exception(ServiceClosedError(
                        f"shard {shard.index} failed permanently"))
            return any(not isinstance(item, _Pending)
                       and item.verb == "shutdown" for item in drained)
        pending_run: list[_Pending] = []
        for position, item in enumerate(drained):
            if isinstance(item, _Pending):
                pending_run.append(item)
                continue
            self._send_dispatch(shard, pending_run)
            pending_run = []
            if item.verb == "shutdown":
                with shard.lock:
                    shard.command_queue.put(("shutdown",))
                return True
            if item.verb == "pause":
                # The rolling-refresh barrier: everything enqueued before
                # this op has been sent (the worker will drain it in
                # order); everything after it returns to the outbox front
                # and waits out the pause.  Resolving the future tells
                # the refresh thread the send-side is quiet.  A cancelled
                # future marks a pause whose refresh already timed out and
                # gave up — honouring it would park the shard with nobody
                # left to unpause it; the check happens under the cv, the
                # same lock the abandoning refresh cancels under.
                with shard.cv:
                    abandoned = (item.future is not None
                                 and item.future.cancelled())
                    if not abandoned:
                        shard.paused = True
                        for leftover in reversed(drained[position + 1:]):
                            shard.outbox.appendleft(leftover)
                if abandoned:
                    continue
                if item.future is not None and not item.future.done():
                    item.future.set_result(None)
                return False
            self._send_control(shard, item)
        self._send_dispatch(shard, pending_run)
        return False

    def _send_dispatch(self, shard: _Shard,
                       pendings: list[_Pending]) -> None:
        if not pendings:
            return
        with self._lock:
            self._next_batch_id += 1
            batch_id = self._next_batch_id
            self.stats.dispatch_batches += 1
        with shard.lock:
            shard.inflight[batch_id] = pendings
            shard.requeue_counts[batch_id] = 0
            shard.command_queue.put(
                ("dispatch", batch_id, [p.request for p in pendings]))

    def _send_control(self, shard: _Shard, op: _ControlOp) -> None:
        with shard.lock:
            if op.verb == "crash":  # fault injection: no reply, no tracking
                shard.command_queue.put(("crash",))
                return
            shard.control[op.op_id] = op
            if op.verb == "observe":
                subject, measurements = op.payload
                shard.journal.append((op.op_id, subject, measurements))
                shard.command_queue.put(
                    ("observe", op.op_id, subject, measurements))
            else:
                shard.command_queue.put((op.verb, op.op_id))

    def _inject_crash(self, shard_index: int) -> None:
        """Fault-injection hook (tests): make one worker die abruptly.

        The crash command rides the shard's FIFO outbox, so work enqueued
        before it is processed first and work enqueued after it lands on
        the dead worker — exactly the window the liveness monitor's
        respawn-and-requeue path exists for.
        """
        shard = self._shards[shard_index]
        op = _ControlOp(verb="crash", op_id=-1, future=None)
        with shard.cv:
            shard.outbox.append(op)
            shard.cv.notify_all()

    # ----------------------------------------------------------------- reader
    def _reader_loop(self, shard: _Shard) -> None:
        """Per-shard reader: resolve replies, watch liveness, respawn."""
        while True:
            with shard.lock:
                result_queue = shard.result_queue
                generation = shard.generation
            try:
                message = result_queue.get(timeout=0.1)
            except queue_module.Empty:
                if shard.alive():
                    continue
                if self._closed:
                    return
                if shard.refreshing:
                    # A rolling refresh owns this shard's lifecycle: the
                    # old worker is *expected* to exit and the refresh
                    # thread installs (or rolls back to) the next worker
                    # itself — respawning the old generation here would
                    # fight it.
                    continue
                try:
                    self._respawn(shard)
                except Exception:  # noqa: BLE001 - a shard that cannot be
                    # revived (fit failure, startup timeout) must fail its
                    # clients deterministically, not hang them: flag it
                    # first so routing and the sender reject new work,
                    # then settle everything already tracked.  A respawn
                    # aborted because close() raced it is not a shard
                    # failure — the service is going away; just settle.
                    if not self._closed:
                        shard.failed = True
                    self._settle_shard_closed(shard)
                    return
                continue
            with shard.lock:
                stale = shard.generation != generation
            if stale:
                # A reply from a swapped-out model generation (e.g. the
                # old worker's final "bye" after a rolling refresh, or a
                # late ack queued before the swap).  The drain barrier
                # guarantees nothing of value is in it; resolving it
                # against the new generation's tracking would mis-settle
                # fresh work, so it is discarded.
                continue
            verb = message[0]
            if verb == "bye":
                return
            if verb == "answers":
                self._resolve_answers(shard, message[1], message[2])
            elif verb == "observed":
                self._resolve_observed(shard, message)
            elif verb == "quiesced":
                self._resolve_quiesced(shard, message)
            elif verb == "flushed":
                self._resolve_flushed(shard, message)
            elif verb == "stats":
                self._resolve_control(shard, message[1], message[2])
            elif verb == "observe_error":
                self._fail_control(shard, message[1],
                                   RuntimeError(message[2]))
            # "fitted" acks from a respawn race are ignorable noise.

    def _resolve_answers(self, shard: _Shard, batch_id: int,
                         responses: list[QueryResponse]) -> None:
        with shard.lock:
            pendings = shard.inflight.pop(batch_id, None)
            shard.requeue_counts.pop(batch_id, None)
        if pendings is None:  # duplicate after a crash-requeue race
            return
        now = time.perf_counter()
        latencies = []
        for pending, response in zip(pendings, responses):
            response.latency_seconds = now - pending.enqueued_at
            latencies.append(response.latency_seconds)
            self._settle(pending, response)
        for pending in pendings[len(responses):]:  # defensive: short reply
            self._settle(pending, QueryResponse(
                request=pending.request, subject=pending.request.subject,
                model_version=-1, value=None,
                error="worker returned too few responses"),
                synthesized_error=True)
        if latencies:
            self.metrics.observe_dispatch(len(latencies), latencies)
        with self._lock:
            answered = self.stats.per_shard_answered
            answered[shard.index] = answered.get(shard.index, 0) \
                + len(responses)

    def _resolve_observed(self, shard: _Shard, message: tuple) -> None:
        """Resolve one observe acknowledgement and compact its journal.

        The reply's optional fourth element is the subject's durable
        snapshot watermark: every journal entry of that subject with an
        op id at or below it is folded into a snapshot the worker can
        reload, so the parent drops those entries *before* resolving the
        caller's future (a client that has seen the ack can rely on the
        compaction having happened).  Replayed ops after a respawn have
        no tracked control entry (and thus no known subject) — their
        replies resolve nothing and compact nothing; compaction catches
        up on the next live observe.
        """
        op_id, version = message[1], message[2]
        with shard.lock:
            op = shard.control.pop(op_id, None)
            if op is not None and op.payload and len(message) > 3:
                self._compact_journal_locked(shard, str(op.payload[0]),
                                             int(message[3]))
        if op is not None and op.future is not None \
                and not op.future.done():
            op.future.set_result(version)

    def _compact_journal_locked(self, shard: _Shard, subject: str,
                                watermark: int) -> None:
        """Drop ``subject``'s journal prefix covered by ``watermark``;
        the caller holds ``shard.lock``."""
        if watermark <= 0:
            return
        kept = [entry for entry in shard.journal
                if entry[1] != subject or entry[0] > watermark]
        dropped = len(shard.journal) - len(kept)
        if dropped:
            shard.journal = kept
            with self._lock:
                self.stats.journal_ops_compacted += dropped

    def _resolve_quiesced(self, shard: _Shard, message: tuple) -> None:
        """Resolve a quiesce barrier, compacting from its watermarks.

        The reply carries the worker registry's full per-subject
        snapshot-watermark map, which closes the quiet-subject gap of
        per-observe compaction: a subject whose stream stopped right
        after a snapshot never sees another ``observed`` ack, so before
        this its stale journal suffix survived forever.  Any barrier —
        an explicit :meth:`quiesce`, the per-round quiesce of a serving
        loop — now compacts every subject it covers.
        """
        with shard.lock:
            op = shard.control.pop(message[1], None)
            if len(message) > 2:
                for subject, watermark in dict(message[2]).items():
                    self._compact_journal_locked(shard, str(subject),
                                                 int(watermark))
        if op is not None and op.future is not None \
                and not op.future.done():
            op.future.set_result(None)

    def _resolve_flushed(self, shard: _Shard, message: tuple) -> None:
        """Resolve a flush ack (snapshots-published count + watermarks)."""
        with shard.lock:
            op = shard.control.pop(message[1], None)
            for subject, watermark in dict(message[3]).items():
                self._compact_journal_locked(shard, str(subject),
                                             int(watermark))
        if op is not None and op.future is not None \
                and not op.future.done():
            op.future.set_result(int(message[2]))

    def _resolve_control(self, shard: _Shard, op_id: int, value) -> None:
        with shard.lock:
            op = shard.control.pop(op_id, None)
        if op is not None and op.future is not None \
                and not op.future.done():
            op.future.set_result(value)

    def _fail_control(self, shard: _Shard, op_id: int,
                      exception: BaseException) -> None:
        with shard.lock:
            op = shard.control.pop(op_id, None)
        if op is not None and op.future is not None \
                and not op.future.done():
            op.future.set_exception(exception)

    # ---------------------------------------------------------------- respawn
    def _respawn(self, shard: _Shard) -> None:
        """Replace a dead worker and deterministically restore its state.

        Runs on the shard's reader thread: start a fresh worker on fresh
        queues and restore the shard's subjects — loaded from the model
        store's latest snapshots when one is configured (the fast path:
        no refit), fitted from specs otherwise — then replay the
        observation journal in order.  With a store the journal has been
        compacted up to each subject's snapshot watermark, so this
        replays only the *suffix* past the restored snapshots, and the
        worker's ``applied_op_id`` guard skips any entry the snapshot
        already covers (the watermark may run ahead of the last
        compaction by one acknowledgement).  Either way the replica
        reconverges to the exact pre-crash model state, including the
        drift detector's refresh schedule.  Finally the in-flight
        dispatch batches are requeued — each at most ``max_requeues``
        times, after which their futures resolve with error responses so
        a poison batch cannot respawn-loop the shard forever.
        """
        if self._closed:
            # close() raced the liveness monitor: a respawn would refit
            # under the full start_timeout on a service that is being
            # torn down — abort early; the reader settles what remains.
            raise ServiceClosedError(
                f"service closed; shard {shard.index} will not respawn")
        with self._lock:
            self.stats.respawns += 1
        exhausted: list[tuple[int, list[_Pending]]] = []
        # One critical section for restart + replay + requeue: the sender
        # cannot interleave a fresh command between the refit and the
        # journal replay, which would reorder the observation stream the
        # replica's recovered state depends on.
        with shard.lock:
            self._start_worker_locked(shard)
            for op_id, subject, measurements in shard.journal:
                shard.command_queue.put(
                    ("observe", op_id, subject, measurements))
            if shard.journal:
                # Barrier: any refresh the replay re-triggers must land
                # before the requeued batches are answered, so they see
                # the same model state the dead worker had reached.
                shard.command_queue.put(("sync",))
            for batch_id, pendings in list(shard.inflight.items()):
                shard.requeue_counts[batch_id] = \
                    shard.requeue_counts.get(batch_id, 0) + 1
                if shard.requeue_counts[batch_id] > self.max_requeues:
                    shard.inflight.pop(batch_id, None)
                    shard.requeue_counts.pop(batch_id, None)
                    exhausted.append((batch_id, pendings))
                    continue
                with self._lock:
                    self.stats.requeues += 1
                shard.command_queue.put(
                    ("dispatch", batch_id,
                     [p.request for p in pendings]))
            # Pending *non-observe* control ops (a quiesce, stats probe
            # or flush the dead worker swallowed) are re-sent too, in op
            # order — journaled observes already went back with the
            # replay above, but without this a caller blocked on a
            # barrier future would hang forever (and a rolling refresh
            # whose drain the crash interrupted could never finish).
            for op_id in sorted(shard.control):
                op = shard.control[op_id]
                if op.verb != "observe":
                    shard.command_queue.put((op.verb, op_id))
        for batch_id, pendings in exhausted:
            for pending in pendings:
                self._settle(pending, QueryResponse(
                    request=pending.request,
                    subject=pending.request.subject, model_version=-1,
                    value=None,
                    error=f"batch {batch_id} requeued more than "
                          f"{self.max_requeues} times across worker "
                          "crashes"),
                    synthesized_error=True)

    # -------------------------------------------------------- rolling refresh
    def rolling_refresh(self, new_specs: Mapping[str, Mapping],
                        drain_timeout: float | None = 120.0) -> list[dict]:
        """Upgrade the fleet onto new subject specs, one shard at a time.

        For each shard in turn: the sender is parked behind a ``pause``
        barrier (submissions keep queueing on the outbox), the worker
        drains everything already handed to it and flushes its registry
        to the model store (durable snapshots + acknowledged watermarks,
        which also compact the shard's crash-replay journal), a
        *replacement* worker is fitted fresh on the new specs
        (make-before-break: the old worker keeps its state until the new
        one is ready), and the queues are swapped atomically under a
        bumped generation tag — the old worker's final replies are
        discarded as stale instead of mis-resolved.  The other N-1
        shards serve continuously throughout; queries to the refreshing
        shard queue and are answered by the new generation, so the
        upgrade costs latency on one shard at a time, never availability
        or admissions.

        An upgraded subject serves exactly the model a cold fleet fitted
        directly on its new spec would (version 0, fresh fit — the store
        is never *read* for an upgrade), so post-refresh answers are
        byte-identical to that cold fleet's.  The pre-upgrade state
        stays in the store under the old ``(subject, spec)`` keys.

        If any shard's new generation fails to fit (bad spec, dead
        worker, timeout), that shard keeps serving its current
        generation, the failed generation's store publishes are rolled
        back (:meth:`ModelStore.rollback` to the recorded prior version,
        or discarded for brand-new keys), every shard upgraded earlier
        in the sweep is downgraded the same way — its worker restored
        from the flushed pre-upgrade snapshots, byte-identically — and
        :class:`RollingRefreshError` is raised.

        Parameters
        ----------
        new_specs:
            ``subject -> spec`` for **every** routed subject (subjects
            cannot be added or removed mid-flight; routing is fixed at
            construction).  Unchanged specs are refitted fresh too — the
            whole fleet lands on one generation.
        drain_timeout:
            Seconds to wait for each shard's pause and flush barriers;
            the new generation's fits use ``start_timeout`` as usual.

        Returns
        -------
        list of dict
            One ``{"shard", "subjects", "started", "finished"}`` record
            per shard in upgrade order — ``time.monotonic`` bounds of
            the window in which that shard was the one refreshing (the
            capacity gate of the rolling-refresh benchmark checks these
            windows never overlap).

        Raises
        ------
        ValueError
            If no ``store_path`` is configured (the drain state must be
            flushed somewhere durable and rollback needs snapshots), or
            ``new_specs`` does not cover exactly the routed subjects.
        RollingRefreshError
            If an upgrade failed; the fleet serves the old generation.
        ServiceClosedError
            If the service is closed.
        """
        if self.store_path is None:
            raise ValueError(
                "rolling_refresh needs a persistent model store "
                "(store_path=...): each shard's pre-upgrade state is "
                "flushed to it and failed upgrades roll back from it")
        new_specs = {str(subject): dict(spec)
                     for subject, spec in new_specs.items()}
        if set(new_specs) != set(self._subject_shard):
            raise ValueError(
                "new_specs must cover exactly the routed subjects; "
                f"missing {sorted(set(self._subject_shard) - set(new_specs))},"
                f" unknown {sorted(set(new_specs) - set(self._subject_shard))}")
        with self._refresh_lock:
            if self._closed:
                raise ServiceClosedError("sharded service is closed")
            for shard in self._shards:
                if shard.failed:
                    raise RollingRefreshError(
                        f"shard {shard.index} failed permanently; it "
                        "cannot be drained for a rolling refresh")
            old_specs = {
                shard.index: {subject: dict(spec) for subject, spec
                              in shard.subjects.items()}
                for shard in self._shards}
            upgraded: list[tuple[_Shard, dict]] = []
            windows: list[dict] = []
            shard = self._shards[0]
            try:
                for shard in self._shards:
                    started = time.monotonic()
                    prior = self._refresh_shard(
                        shard,
                        {subject: new_specs[subject]
                         for subject in shard.subjects},
                        drain_timeout=drain_timeout)
                    upgraded.append((shard, prior))
                    windows.append({"shard": shard.index,
                                    "subjects": sorted(shard.subjects),
                                    "started": started,
                                    "finished": time.monotonic()})
            except BaseException as exc:
                rolled_back = self._rollback_upgraded(
                    upgraded, old_specs, drain_timeout)
                raise RollingRefreshError(
                    f"rolling refresh failed at shard {shard.index} "
                    f"({exc}); {rolled_back} of {len(upgraded)} "
                    "previously upgraded shard(s) rolled back to the "
                    "prior generation") from exc
            with self._lock:
                self.stats.rolling_refreshes += 1
            return windows

    def _rollback_upgraded(self, upgraded: list, old_specs: dict,
                           drain_timeout: float | None) -> int:
        """Downgrade already-upgraded shards after a failed sweep.

        Reverse upgrade order; each shard's published new-generation
        store keys are rolled back and its worker is replaced by one
        *restored* from the old keys' flushed snapshots (``fit``, not
        ``upgrade`` — restoring IS the point: the pre-refresh model
        state comes back byte-identically, folded observations
        included).  A shard whose downgrade itself fails keeps serving
        the new generation rather than being killed — a mixed-generation
        fleet beats a dead shard; the count of successful downgrades is
        returned and surfaced in the :class:`RollingRefreshError`.
        """
        rolled_back = 0
        for shard, prior in reversed(upgraded):
            if self._closed:
                break
            try:
                self._refresh_shard(shard, old_specs[shard.index],
                                    drain_timeout=drain_timeout,
                                    restore=prior)
            except Exception:  # noqa: BLE001 - keep downgrading the rest
                continue
            rolled_back += 1
            with self._lock:
                self.stats.refresh_rollbacks += 1
        return rolled_back

    def _refresh_shard(self, shard: _Shard, subjects: Mapping[str, Mapping],
                       *, drain_timeout: float | None,
                       restore: dict | None = None) -> dict:
        """Drain one shard and swap its worker onto ``subjects``.

        The make-before-break unit both directions share — *upgrade*
        (``restore=None``: fresh ``upgrade`` fits, record prior store
        versions, roll them back on failure) and *downgrade*
        (``restore={key: prior_version_or_None}``: flip the store back
        first, then ``fit`` so the worker restores the pre-upgrade
        snapshots).  Returns the prior-version map an upgrade recorded
        (empty for downgrades).  On failure the shard's current worker
        is left serving untouched and the half-built replacement is
        killed.
        """
        subjects = {str(subject): dict(spec)
                    for subject, spec in subjects.items()}
        # 1. Park the sender behind the FIFO barrier: everything enqueued
        # before the pause has been handed to the worker when it resolves;
        # everything after waits on the outbox.
        pause = self._control(shard, "pause")
        try:
            pause.result(timeout=drain_timeout)
        except TimeoutError:
            with shard.cv:
                # Cancel under the cv so a late-draining sender sees the
                # abandoned op and skips it instead of parking forever.
                pause.cancel()
                shard.paused = False
                shard.cv.notify_all()
            raise TimeoutError(
                f"shard {shard.index} sender did not reach the pause "
                f"barrier within {drain_timeout}s") from None
        try:
            # 2. Drain + durability point.  The worker answers the
            # barrier only after every previously sent dispatch/observe;
            # "flush" additionally publishes every advanced entry and
            # compacts the journal from the acknowledged watermarks.  A
            # worker crash mid-drain is survivable: the liveness monitor
            # respawns it (``refreshing`` is still False) and re-sends
            # this very barrier op along with the journal replay.
            barrier = self._direct_control(
                shard, "quiesce" if restore is not None else "flush")
            barrier.result(timeout=drain_timeout)
            shard.refreshing = True
            prior: dict[str, int | None] = {}
            store = ModelStore(self.store_path)
            if restore is not None:
                # Store pointers first: the restored worker must load the
                # *pre-upgrade* snapshots, so any key the failed sweep
                # republished flips back (or vanishes) before the fits.
                for key, version in restore.items():
                    if version is None:
                        store.discard(key)
                    else:
                        store.rollback(key, to_version=version)
            else:
                for subject, spec in subjects.items():
                    key = subject_key(subject, spec)
                    prior[key] = store.latest_version(key)
            # 3. Make before break: fit the replacement on private queues
            # while the old worker keeps its (flushed) state.
            options = dict(self._registry_options,
                           capacity=max(len(subjects), 1))
            command_queue = self._ctx.Queue()
            result_queue = self._ctx.Queue()
            runner = self._spawn_runner(shard.index, command_queue,
                                        result_queue, options)
            try:
                verb = "fit" if restore is not None else "upgrade"
                for subject, spec in subjects.items():
                    command_queue.put((verb, subject, spec))
                deadline = time.monotonic() + self.start_timeout
                for _ in subjects:
                    message = self._next_fit_reply(
                        shard.index, result_queue, runner, deadline)
                    if message[0] == "fit_error":
                        raise RuntimeError(
                            f"shard {shard.index} failed to fit "
                            f"{message[1]!r}: {message[2]}")
            except BaseException:
                self._kill_runner(runner, command_queue)
                for key, version in prior.items():
                    if version is None:
                        store.discard(key)
                    else:
                        store.rollback(key, to_version=version)
                raise
            # 4. Atomic swap under the shard lock: new generation in, old
            # worker's journal out (its entries must never replay into
            # the new model), shutdown to the old command queue.  The
            # bumped generation makes the old worker's final replies
            # (its "bye") stale noise to the reader.
            with shard.lock:
                old_command = shard.command_queue
                old_runner = shard.runner
                shard.command_queue = command_queue
                shard.result_queue = result_queue
                shard.runner = runner
                shard.generation += 1
                shard.subjects = subjects
                shard.journal.clear()
                old_command.put(("shutdown",))
            if self.use_processes and old_runner is not None:
                old_runner.join(timeout=10.0)
            return prior
        finally:
            # 5. Re-admit: whatever queued during the swap flows to the
            # current worker — the new generation on success, the intact
            # old one on failure.
            shard.refreshing = False
            with shard.cv:
                shard.paused = False
                shard.cv.notify_all()

    def _direct_control(self, shard: _Shard, verb: str) -> Future:
        """Register + send one control op directly (the sender is paused)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("sharded service is closed")
            self._next_op_id += 1
            op = _ControlOp(verb=verb, op_id=self._next_op_id,
                            future=Future())
        with shard.lock:
            shard.control[op.op_id] = op
            shard.command_queue.put((verb, op.op_id))
        return op.future

    def _kill_runner(self, runner, command_queue) -> None:
        """Stop a half-built replacement worker that will not be admitted."""
        if runner is None:
            return
        if self.use_processes:
            runner.terminate()
            runner.join(timeout=5.0)
        else:
            # A thread cannot be terminated; ask it to exit.  Its
            # registry holds only freshly fitted entries, so the
            # shutdown flush publishes nothing new.
            command_queue.put(("shutdown",))
