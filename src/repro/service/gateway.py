"""The network front door of the serving tier.

:class:`GatewayServer` puts a :class:`~repro.service.service.QueryService`
or :class:`~repro.service.sharding.ShardedQueryService` behind a real
socket: a threaded TCP server speaking the length-prefixed JSON protocol
of :mod:`repro.service.protocol`, with the policies a multi-tenant wire
tier needs and the in-process tier could not express:

* **Per-tenant API keys** — every request envelope carries an
  ``api_key``; unknown or missing keys are refused with a typed
  ``unauthorized`` error (anonymous mode, ``tenants=None``, keeps small
  demos friction-free).
* **Per-tenant quotas** — each tenant may carry a lifetime query budget;
  exhaustion is a typed ``quota_exceeded`` rejection, counted per
  tenant in :class:`GatewayStats`, never a dropped connection.
* **Streaming ``observe()`` ingestion** — measurement batches flow
  through the same framed connection and are acknowledged with the
  subject's post-fold model version, so a wire client can drive the
  drift-refresh lifecycle exactly like an in-process caller.
* **Graceful drain** — :meth:`GatewayServer.close` stops admitting
  (``draining`` typed errors on new connections and new requests) while
  requests already executing settle and their responses are delivered;
  only then do the sockets come down.

Answers cross the wire byte-identically: the response codec carries the
request and the exact float values, so
:meth:`~repro.service.requests.QueryResponse.canonical_value` of a
:class:`GatewayClient` answer equals the in-process answer — the gateway
benchmark gates on it.

:class:`GatewayClient` is the reference client: one connection, framed
request/response exchanges (pipelined by :meth:`GatewayClient.
submit_many`), typed exceptions mapped back from error envelopes
(:class:`GatewayAuthError`, :class:`QuotaExceededError`,
:class:`DrainingError`, and the service's own
:class:`~repro.service.service.AdmissionError` /
:class:`~repro.service.registry.UnknownSubjectError` for full surface
symmetry with in-process submission).
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameDecoder,
    ProtocolError,
    decode_envelope,
    encode_envelope,
    error_envelope,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from repro.service.registry import UnknownSubjectError
from repro.service.requests import QueryRequest, QueryResponse
from repro.service.service import AdmissionError, ServiceClosedError
from repro.service.store import measurement_from_dict, measurement_to_dict


class GatewayError(RuntimeError):
    """A typed gateway-level failure, mirroring a wire error envelope.

    Parameters
    ----------
    code:
        The :class:`~repro.service.protocol.ErrorCode` constant the
        server answered with (or a client-side code such as
        ``"closed"``).
    message:
        Human-readable detail.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = str(code)


class GatewayAuthError(GatewayError):
    """The request's API key was missing or unknown."""


class QuotaExceededError(GatewayError):
    """The tenant's lifetime query quota is exhausted."""


class DrainingError(GatewayError):
    """The gateway is draining and refused new work."""


@dataclass
class Tenant:
    """One tenant's identity and admission policy.

    Parameters
    ----------
    name:
        Display name used in per-tenant accounting.
    quota:
        Lifetime query budget (``None`` = unlimited).  Observe batches
        and stats/ping probes do not consume quota — the budget guards
        engine work.
    """

    name: str
    quota: int | None = None


@dataclass
class GatewayStats:
    """Counters describing one gateway's lifetime of wire traffic.

    ``per_tenant`` maps tenant name to a dict with ``submitted``,
    ``answered``, ``errors`` (answers whose ``response.error`` was set),
    ``rejected`` (auth/quota/draining/admission refusals) and
    ``observes`` — the per-tenant admission accounting the quota policy
    runs on.
    """

    connections: int = 0
    frames: int = 0
    queries: int = 0
    answered: int = 0
    #: answers delivered with a non-``None`` ``response.error`` surface.
    response_errors: int = 0
    observes: int = 0
    observed_measurements: int = 0
    #: framing/JSON/envelope/version/body violations (the fuzz surface).
    protocol_errors: int = 0
    auth_failures: int = 0
    quota_rejections: int = 0
    draining_rejections: int = 0
    admission_rejections: int = 0
    unknown_subjects: int = 0
    internal_errors: int = 0
    per_tenant: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-safe snapshot (what the ``stats`` wire op returns)."""
        return dataclasses.asdict(self)


class _Reject(Exception):
    """Internal control flow: a typed refusal to be sent as an error
    envelope (never escapes the handler loop)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class _Connection:
    """Server-side per-connection state: socket, handler thread, flags."""

    def __init__(self, sock: socket.socket, address) -> None:
        self.sock = sock
        self.address = address
        self.thread: threading.Thread | None = None
        #: ``True`` while a frame is being processed (an in-flight
        #: request a drain must let settle).
        self.busy = False


def _tenant_of(value) -> Tenant:
    """Coerce a tenants-mapping value into a :class:`Tenant`."""
    if isinstance(value, Tenant):
        return value
    if isinstance(value, str):
        return Tenant(name=value)
    if isinstance(value, Mapping):
        quota = value.get("quota")
        return Tenant(name=str(value.get("name", "tenant")),
                      quota=None if quota is None else int(quota))
    raise ValueError(f"cannot build a Tenant from {value!r}")


class GatewayServer:
    """Threaded wire-protocol server fronting one query service.

    Parameters
    ----------
    service:
        A started :class:`~repro.service.service.QueryService` or
        :class:`~repro.service.sharding.ShardedQueryService` (anything
        with ``submit``, ``observe`` and a ``stats`` dataclass).  The
        gateway does not own the service's lifecycle: closing the
        gateway drains the wire but leaves the service running.
    tenants:
        ``api_key -> tenant`` mapping (values may be :class:`Tenant`
        objects, plain names, or ``{"name": ..., "quota": ...}`` dicts).
        ``None`` disables authentication: every request is accounted to
        an unlimited ``"anonymous"`` tenant.
    host, port:
        Bind address; port 0 (default) picks a free ephemeral port —
        read the bound address back from :attr:`address`.
    max_frame_bytes:
        Per-frame payload ceiling enforced on both directions.
    recv_timeout:
        Seconds a connection may stall *mid-frame* before it is dropped
        as a slow-loris writer.  Idle connections between frames are
        not affected.
    request_timeout:
        Seconds the handler waits for the service to answer one query.
    auto_start:
        Bind and serve immediately; pass ``False`` to :meth:`start`
        later.

    Examples
    --------
    >>> with GatewayServer(service, tenants={"k1": "alice"}) as gw:
    ...     client = GatewayClient(gw.address, api_key="k1")  # doctest: +SKIP
    """

    def __init__(self, service, tenants: Mapping[str, object] | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 recv_timeout: float = 30.0,
                 request_timeout: float | None = 300.0,
                 auto_start: bool = True) -> None:
        self.service = service
        self.max_frame_bytes = int(max_frame_bytes)
        self.recv_timeout = float(recv_timeout)
        self.request_timeout = request_timeout
        self.stats = GatewayStats()
        self._tenants = (None if tenants is None
                         else {str(key): _tenant_of(value)
                               for key, value in tenants.items()})
        self._anonymous = Tenant(name="anonymous")
        self._host = str(host)
        self._port = int(port)
        self._lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: dict[int, _Connection] = {}
        self._next_connection_id = 0
        #: tenant name -> remaining quota (None = unlimited).
        self._remaining: dict[str, int | None] = {}
        if auto_start:
            self.start()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind the listener and start accepting connections (idempotent)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("gateway already closed")
            if self._listener is not None:
                return
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            listener.listen(64)
            # Short accept timeout so the loop notices drain/close fast.
            listener.settimeout(0.1)
            self._listener = listener
            self._port = listener.getsockname()[1]
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="gateway-accept", daemon=True)
            self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the gateway is bound to."""
        return (self._host, self._port)

    @property
    def draining(self) -> bool:
        """Whether the gateway is refusing new work."""
        with self._lock:
            return self._draining

    def n_connections(self) -> int:
        """Currently open client connections."""
        with self._lock:
            return len(self._connections)

    def drain(self) -> None:
        """Stop admitting new work; in-flight requests keep settling.

        From this point every *new* query/observe — on existing
        connections or brand-new ones — receives a typed ``draining``
        error envelope, while requests already executing complete and
        deliver their responses.  ``ping`` and ``stats`` keep working so
        health checks can watch the drain.
        """
        with self._lock:
            self._draining = True

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain, let in-flight requests settle, then tear the wire down.

        The sequence is: (1) :meth:`drain` — new work is refused with
        typed errors but connections stay up; (2) wait up to ``timeout``
        for busy handlers to finish delivering their responses; (3)
        close the listener and every connection and join all gateway
        threads.  The underlying service is left running (it has its own
        ``close``).
        """
        with self._lock:
            if self._closed:
                return
            self._draining = True
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))
        # (2) let in-flight requests settle.
        while True:
            with self._lock:
                busy = any(conn.busy for conn in self._connections.values())
            if not busy:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.005)
        with self._lock:
            self._closed = True
            listener = self._listener
            self._listener = None
            connections = list(self._connections.values())
        if listener is not None:
            listener.close()
        for conn in connections:
            _shutdown_socket(conn.sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for conn in connections:
            if conn.thread is not None:
                conn.thread.join(timeout=5.0)

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- accepting
    def _accept_loop(self) -> None:
        """Accept connections until closed; drain-refuse while draining."""
        while True:
            with self._lock:
                if self._closed or self._listener is None:
                    return
                listener = self._listener
            try:
                sock, address = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutdown
            with self._lock:
                if self._draining:
                    self.stats.draining_rejections += 1
                    refused = True
                else:
                    refused = False
                    self.stats.connections += 1
                    self._next_connection_id += 1
                    conn = _Connection(sock, address)
                    self._connections[self._next_connection_id] = conn
                    conn_id = self._next_connection_id
            if refused:
                # A typed goodbye instead of a slammed door: the client
                # can fail over to another replica.  Half-close and
                # briefly drain the peer's pending bytes so the error
                # envelope is delivered instead of being clobbered by a
                # reset when the peer is mid-send.
                try:
                    sock.sendall(encode_envelope(error_envelope(
                        ErrorCode.DRAINING,
                        "gateway is draining; retry elsewhere"),
                        max_frame_bytes=self.max_frame_bytes))
                    sock.shutdown(socket.SHUT_WR)
                    sock.settimeout(0.5)
                    while sock.recv(4096):
                        pass
                except OSError:
                    pass
                sock.close()
                continue
            conn.thread = threading.Thread(
                target=self._serve_connection, args=(conn_id, conn),
                name=f"gateway-conn-{conn_id}", daemon=True)
            conn.thread.start()

    # --------------------------------------------------------------- serving
    def _serve_connection(self, conn_id: int, conn: _Connection) -> None:
        """Per-connection loop: reassemble frames, answer each in order."""
        sock = conn.sock
        sock.settimeout(self.recv_timeout)
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            while True:
                frame = self._next_frame(sock, decoder)
                if frame is None:
                    return
                with self._lock:
                    self.stats.frames += 1
                    conn.busy = True
                try:
                    reply = self._handle_frame(frame)
                finally:
                    with self._lock:
                        conn.busy = False
                sock.sendall(encode_envelope(
                    reply, max_frame_bytes=self.max_frame_bytes))
        except ProtocolError as exc:
            with self._lock:
                self.stats.protocol_errors += 1
            # Best effort: tell the peer why before hanging up.  The
            # connection cannot be resynchronized after a framing error,
            # so it closes either way.
            try:
                sock.sendall(encode_envelope(
                    error_envelope(exc.code, str(exc)),
                    max_frame_bytes=self.max_frame_bytes))
            except OSError:
                pass
        except OSError:
            pass  # peer vanished (reset, shutdown during close)
        finally:
            sock.close()
            with self._lock:
                self._connections.pop(conn_id, None)

    def _next_frame(self, sock: socket.socket,
                    decoder: FrameDecoder) -> bytes | None:
        """Read one frame; ``None`` on clean EOF.

        Raises
        ------
        ProtocolError
            Oversize prefixes and truncated streams from the decoder,
            plus :data:`ErrorCode.TRUNCATED_FRAME` when a peer stalls
            mid-frame past ``recv_timeout`` (the slow-loris guard) —
            idle waits at a frame boundary do not trip it.
        """
        while True:
            frame = decoder.next_frame()
            if frame is not None:
                return frame
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                if decoder.pending_bytes():
                    raise ProtocolError(
                        ErrorCode.TRUNCATED_FRAME,
                        f"peer stalled mid-frame for {self.recv_timeout}s "
                        f"with {decoder.pending_bytes()} bytes buffered"
                    ) from None
                if self._closed_or_draining():
                    return None
                continue
            if not chunk:
                decoder.close()  # raises on a partial frame
                return None
            decoder.feed(chunk)

    def _closed_or_draining(self) -> bool:
        with self._lock:
            return self._closed or self._draining

    # -------------------------------------------------------------- handling
    def _handle_frame(self, frame: bytes) -> dict:
        """Decode one frame and produce its reply envelope.

        Envelope/body violations become typed error envelopes (the
        connection survives — only *framing* errors are fatal to it);
        unexpected exceptions become ``internal`` errors so the handler
        loop never dies with a request unanswered.
        """
        try:
            try:
                envelope = decode_envelope(frame)
            except ProtocolError as exc:
                with self._lock:
                    self.stats.protocol_errors += 1
                raise _Reject(exc.code, str(exc)) from None
            op = envelope.get("op")
            tenant = self._authenticate(envelope)
            if op == "ping":
                return {"protocol_version": PROTOCOL_VERSION, "ok": True,
                        "op": "ping", "draining": self.draining}
            if op == "stats":
                return self._handle_stats()
            if op == "metrics":
                return self._handle_metrics()
            if op == "query":
                return self._handle_query(envelope, tenant,
                                          frame_bytes=len(frame))
            if op == "observe":
                return self._handle_observe(envelope, tenant)
            with self._lock:
                self.stats.protocol_errors += 1
            raise _Reject(ErrorCode.UNKNOWN_OP,
                          f"unknown operation {op!r}; known: "
                          "ping, stats, metrics, query, observe")
        except _Reject as reject:
            return error_envelope(reject.code, str(reject))
        except Exception as exc:  # noqa: BLE001 - the handler must answer
            with self._lock:
                self.stats.internal_errors += 1
            return error_envelope(ErrorCode.INTERNAL,
                                  f"{type(exc).__name__}: {exc}")

    def _authenticate(self, envelope: Mapping) -> Tenant:
        """Resolve the envelope's API key to a tenant (or refuse)."""
        if self._tenants is None:
            return self._anonymous
        api_key = envelope.get("api_key")
        tenant = (self._tenants.get(api_key)
                  if isinstance(api_key, str) else None)
        if tenant is None:
            with self._lock:
                self.stats.auth_failures += 1
            raise _Reject(ErrorCode.UNAUTHORIZED,
                          "missing or unrecognised api_key")
        return tenant

    def _tenant_account(self, tenant: Tenant) -> dict:
        """Per-tenant accounting row (caller holds ``self._lock``)."""
        return self.stats.per_tenant.setdefault(
            tenant.name, {"submitted": 0, "answered": 0, "errors": 0,
                          "rejected": 0, "observes": 0})

    def _admit_query(self, tenant: Tenant) -> None:
        """Charge one query against drain state and the tenant's quota."""
        with self._lock:
            account = self._tenant_account(tenant)
            if self._draining:
                self.stats.draining_rejections += 1
                account["rejected"] += 1
                raise _Reject(ErrorCode.DRAINING,
                              "gateway is draining; no new queries")
            remaining = self._remaining.setdefault(tenant.name, tenant.quota)
            if remaining is not None and remaining <= 0:
                self.stats.quota_rejections += 1
                account["rejected"] += 1
                raise _Reject(
                    ErrorCode.QUOTA_EXCEEDED,
                    f"tenant {tenant.name!r} exhausted its quota of "
                    f"{tenant.quota} queries")
            if remaining is not None:
                self._remaining[tenant.name] = remaining - 1
            self.stats.queries += 1
            account["submitted"] += 1

    def _handle_query(self, envelope: Mapping, tenant: Tenant,
                      frame_bytes: int = 0) -> dict:
        """Answer one query op: decode, admit, submit, encode."""
        try:
            request = request_from_wire(envelope.get("request"))
        except ProtocolError as exc:
            with self._lock:
                self.stats.protocol_errors += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(exc.code, str(exc)) from None
        self._admit_query(tenant)
        tracer = getattr(self.service, "tracer", None)
        if tracer is not None and tracer.enabled:
            # Post the wire-level facts before submission: ``begin()``
            # inside the service folds them into the new trace context.
            tracer.annotate(request, tenant=tenant.name,
                            frame_bytes=int(frame_bytes))
        try:
            response = self.service.submit(request,
                                           timeout=self.request_timeout)
        except AdmissionError as exc:
            with self._lock:
                self.stats.admission_rejections += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(ErrorCode.ADMISSION, str(exc)) from None
        except UnknownSubjectError as exc:
            with self._lock:
                self.stats.unknown_subjects += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(ErrorCode.UNKNOWN_SUBJECT, str(exc)) from None
        except ServiceClosedError as exc:
            with self._lock:
                self.stats.draining_rejections += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(ErrorCode.DRAINING, str(exc)) from None
        with self._lock:
            self.stats.answered += 1
            account = self._tenant_account(tenant)
            account["answered"] += 1
            if response.error is not None:
                self.stats.response_errors += 1
                account["errors"] += 1
        return {"protocol_version": PROTOCOL_VERSION, "ok": True,
                "op": "query", "response": response_to_wire(response)}

    def _handle_observe(self, envelope: Mapping, tenant: Tenant) -> dict:
        """Fold one streamed measurement batch; ack with the new version."""
        with self._lock:
            if self._draining:
                self.stats.draining_rejections += 1
                self._tenant_account(tenant)["rejected"] += 1
                raise _Reject(ErrorCode.DRAINING,
                              "gateway is draining; no new observations")
        subject = envelope.get("subject")
        batch = envelope.get("measurements")
        if not isinstance(subject, str) or not isinstance(batch, list):
            with self._lock:
                self.stats.protocol_errors += 1
            raise _Reject(ErrorCode.BAD_REQUEST,
                          "observe needs a string 'subject' and a list "
                          "'measurements'")
        try:
            measurements = [measurement_from_dict(m) for m in batch]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            with self._lock:
                self.stats.protocol_errors += 1
            raise _Reject(ErrorCode.BAD_REQUEST,
                          f"malformed measurement: {exc}") from None
        try:
            version = self.service.observe(subject, measurements)
        except UnknownSubjectError as exc:
            with self._lock:
                self.stats.unknown_subjects += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(ErrorCode.UNKNOWN_SUBJECT, str(exc)) from None
        except ServiceClosedError as exc:
            with self._lock:
                self.stats.draining_rejections += 1
                self._tenant_account(tenant)["rejected"] += 1
            raise _Reject(ErrorCode.DRAINING, str(exc)) from None
        with self._lock:
            self.stats.observes += 1
            self.stats.observed_measurements += len(measurements)
            self._tenant_account(tenant)["observes"] += 1
        return {"protocol_version": PROTOCOL_VERSION, "ok": True,
                "op": "observe", "subject": subject,
                "version": int(version)}

    def _handle_stats(self) -> dict:
        """Serve the gateway's and the fronted service's counters.

        The service side reads through ``stats_snapshot()`` — the
        consistent copy taken under the service's own stats lock — so a
        wire snapshot taken mid-burst can never show a torn view such as
        ``answered > submitted``.
        """
        with self._lock:
            gateway = self.stats.as_dict()
        snapshot = getattr(self.service, "stats_snapshot", None)
        service_stats = (snapshot() if callable(snapshot)
                         else self.service.stats)
        return {"protocol_version": PROTOCOL_VERSION, "ok": True,
                "op": "stats", "gateway": gateway,
                "service": dataclasses.asdict(service_stats),
                "draining": self.draining}

    def _handle_metrics(self) -> dict:
        """Serve the fronted service's :class:`MetricsSnapshot`.

        Like ``stats``/``ping``, ``metrics`` keeps answering while the
        gateway drains, so dashboards can watch a drain complete.
        """
        snapshot = self.service.metrics_snapshot()
        return {"protocol_version": PROTOCOL_VERSION, "ok": True,
                "op": "metrics", "metrics": snapshot.as_dict(),
                "draining": self.draining}


def _shutdown_socket(sock: socket.socket) -> None:
    """Half-close then close a socket, tolerating already-dead peers."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - close best-effort
        pass


class GatewayClient:
    """Reference wire client: one framed connection, typed failures.

    Parameters
    ----------
    address:
        ``(host, port)`` of a :class:`GatewayServer` (its
        :attr:`~GatewayServer.address`).
    api_key:
        Credential stamped on every envelope (``None`` for anonymous
        gateways).
    timeout:
        Socket timeout in seconds for connect and each exchange.
    max_frame_bytes:
        Per-frame ceiling, matching the server's.

    Examples
    --------
    >>> with GatewayClient(gateway.address, api_key="k1") as client:
    ...     response = client.submit(request)        # doctest: +SKIP
    """

    def __init__(self, address: tuple[str, int], api_key: str | None = None,
                 timeout: float = 60.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.api_key = api_key
        self.max_frame_bytes = int(max_frame_bytes)
        self._lock = threading.Lock()
        self._sock = socket.create_connection(tuple(address),
                                              timeout=float(timeout))
        self._sock.settimeout(float(timeout))

    # ------------------------------------------------------------- transport
    def _send(self, envelope: dict) -> None:
        document = dict(envelope)
        if self.api_key is not None:
            document.setdefault("api_key", self.api_key)
        self._sock.sendall(encode_envelope(
            document, max_frame_bytes=self.max_frame_bytes))

    def _recv(self) -> dict:
        payload = read_frame(self._sock.recv,
                             max_frame_bytes=self.max_frame_bytes)
        if payload is None:
            raise GatewayError("closed",
                               "gateway closed the connection")
        envelope = decode_envelope(payload)
        if envelope.get("ok"):
            return envelope
        error = envelope.get("error")
        error = error if isinstance(error, Mapping) else {}
        self._raise_for(str(error.get("code", ErrorCode.INTERNAL)),
                        str(error.get("message", "unspecified failure")))

    @staticmethod
    def _raise_for(code: str, message: str) -> None:
        """Map a wire error code onto the matching typed exception."""
        if code == ErrorCode.UNAUTHORIZED:
            raise GatewayAuthError(code, message)
        if code == ErrorCode.QUOTA_EXCEEDED:
            raise QuotaExceededError(code, message)
        if code == ErrorCode.DRAINING:
            raise DrainingError(code, message)
        if code == ErrorCode.ADMISSION:
            raise AdmissionError(message)
        if code == ErrorCode.UNKNOWN_SUBJECT:
            raise UnknownSubjectError(message)
        raise GatewayError(code, message)

    def _exchange(self, envelope: dict) -> dict:
        with self._lock:
            self._send(envelope)
            return self._recv()

    # -------------------------------------------------------------- requests
    def submit(self, request: QueryRequest) -> QueryResponse:
        """Submit one typed request over the wire and await its response.

        The returned :class:`~repro.service.requests.QueryResponse`
        matches the in-process ``service.submit`` answer byte for byte
        under :meth:`~repro.service.requests.QueryResponse.
        canonical_value`; engine failures still surface in
        ``response.error``, not as exceptions.

        Raises
        ------
        GatewayAuthError, QuotaExceededError, DrainingError
            Typed gateway refusals.
        AdmissionError, UnknownSubjectError
            The service's own admission surface, forwarded.
        ProtocolError
            If the server's reply violates the wire protocol.
        """
        reply = self._exchange({"op": "query",
                                "request": request_to_wire(request)})
        return response_from_wire(reply.get("response"))

    def submit_many(self, requests: Sequence[QueryRequest]
                    ) -> list[QueryResponse]:
        """Submit a batch pipelined: all frames out, then all replies in.

        Replies arrive in request order (the protocol is strictly
        ordered per connection), so one round trip's latency is paid
        once for the whole batch instead of once per request.
        """
        requests = list(requests)
        with self._lock:
            for request in requests:
                self._send({"op": "query",
                            "request": request_to_wire(request)})
            return [response_from_wire(self._recv().get("response"))
                    for _ in requests]

    def observe(self, subject: str, measurements: Sequence) -> int:
        """Stream one measurement batch into a subject's model.

        Returns the subject's model version after the fold (or after
        buffering, for drift-aware registries), mirroring the
        in-process ``service.observe`` acknowledgement.
        """
        reply = self._exchange({
            "op": "observe", "subject": str(subject),
            "measurements": [measurement_to_dict(m) for m in measurements]})
        return int(reply.get("version", -1))

    def stats(self) -> dict:
        """Fetch the gateway's and fronted service's counter snapshot."""
        reply = self._exchange({"op": "stats"})
        return {"gateway": reply.get("gateway"),
                "service": reply.get("service"),
                "draining": reply.get("draining")}

    def metrics(self) -> dict:
        """Fetch the fronted service's metrics snapshot.

        Returns the :meth:`MetricsSnapshot.as_dict
        <repro.service.metrics.MetricsSnapshot.as_dict>` rendering —
        queue depth, in-flight, coalescing ratio, batch-size histogram,
        refresh cadence and p50/p95/p99 latency — decodable with
        :meth:`MetricsSnapshot.from_dict
        <repro.service.metrics.MetricsSnapshot.from_dict>`.
        """
        reply = self._exchange({"op": "metrics"})
        return dict(reply.get("metrics") or {})

    def ping(self) -> bool:
        """Health probe; returns ``True`` while the gateway answers."""
        return bool(self._exchange({"op": "ping"}).get("ok"))

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            _shutdown_socket(self._sock)

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
