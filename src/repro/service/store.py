"""Persistent, content-addressed, versioned on-disk model store.

Every worker spawn and crash recovery used to refit models from specs and
replay the *entire* observation journal.  :class:`ModelStore` converts the
serving tier from "recompute everything" to "load, replay suffix, serve":
a fitted :class:`~repro.service.registry.ModelEntry` snapshots to one JSON
document — spec, measurements, learned structure, fitted equations and
drift-detector state, all through the typed ``to_dict``/``from_dict``
layer with numpy arrays carried bitwise by the base64 codec
(:mod:`repro.stats.codec`) — and reloads byte-identically without a single
CI test or least-squares solve.

Layout (content-hash directory scheme)::

    <root>/
      <key>/                      # spec_key(spec), or subject-scoped key
        v000000000000.json        # snapshot of entry version 0
        v000000000003.json        # snapshot of entry version 3
        LATEST                    # text file holding the live version

``publish`` is atomic (temp file + ``os.replace``, then the ``LATEST``
pointer flips the same way), so a crash mid-write never corrupts the live
snapshot; the previously published version file is retained, which makes
:meth:`ModelStore.rollback` an instant pointer flip back.  Every read is
fail-closed: a missing, truncated or otherwise unreadable snapshot loads
as ``None`` and the caller falls back to a clean refit.

Snapshots are taken at *refresh boundaries* — right after a relearn folds
the entry's pending buffer and the drift detector rebaselines — so the
document's ``applied_op_id`` watermark covers every observation folded
into the model.  The sharded tier compacts its parent-side journal up to
that watermark and crash recovery replays only the journal *suffix* past
it (see :mod:`repro.service.sharding`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.evaluation.store import canonical_json, content_hash
from repro.systems.base import Measurement

#: Snapshot document schema version; bumped on incompatible layout changes.
#: Loaders reject (fail closed on) documents with a different format.
STORE_FORMAT = 1

#: Spec keys whose documented default values are dropped before hashing,
#: so ``{"system": "x", "seed": 0}`` and ``{"system": "x"}`` share one
#: entry and one store key (see :func:`canonical_spec`).
SPEC_DEFAULTS: dict[str, object] = {
    "n_samples": 60,
    "seed": 0,
    "max_condition_size": 1,
}


# --------------------------------------------------------------------- specs
def canonical_spec(spec: Mapping[str, object]) -> dict:
    """Normalise a subject spec to its canonical, default-free form.

    Three semantically-neutral differences are erased: key order (hashing
    uses sorted canonical JSON), container spelling (tuples become lists
    via a JSON round-trip), and explicitly spelled defaults (``seed=0``,
    ``n_samples=60``, ``max_condition_size=1``, or any key set to
    ``None``) which are dropped because :func:`~repro.service.registry.
    unicorn_from_spec` fills them in identically.  Equal-meaning specs
    therefore canonicalise to equal dicts — the fix for the raw-spec
    hashing that used to give ``{"system": "x", "seed": 0}`` and
    ``{"system": "x"}`` two separate entries and two separate fits.
    """
    normalised = json.loads(canonical_json(dict(spec)))
    out: dict = {}
    for key, value in normalised.items():
        if value is None:
            continue
        if key in SPEC_DEFAULTS and value == SPEC_DEFAULTS[key]:
            continue
        out[key] = value
    return out


def spec_key(spec: Mapping[str, object]) -> str:
    """Content hash of the canonical spec — the registry and store key."""
    return content_hash(canonical_spec(spec))


def subject_key(subject: str, spec: Mapping[str, object]) -> str:
    """Store key of a named subject (the sharded tier's addressing).

    Named subjects evolve independently even when their specs are equal
    (each has its own observation stream), so their snapshots are keyed
    by ``(subject, canonical spec)`` rather than the spec alone.
    """
    return content_hash({"subject": str(subject),
                         "spec": canonical_spec(spec)})


# -------------------------------------------------------------- measurements
def measurement_to_dict(measurement: Measurement) -> dict:
    """JSON-safe form of one measurement (floats round-trip exactly)."""
    return {
        "configuration": {k: float(v) for k, v
                          in measurement.configuration.items()},
        "events": {k: float(v) for k, v in measurement.events.items()},
        "objectives": {k: float(v) for k, v
                       in measurement.objectives.items()},
        "environment": measurement.environment,
        "replicates": int(measurement.replicates),
        "measurement_seconds": float(measurement.measurement_seconds),
    }


def measurement_from_dict(payload: dict) -> Measurement:
    """Rebuild a measurement serialized by :func:`measurement_to_dict`."""
    return Measurement(
        configuration=dict(payload["configuration"]),
        events=dict(payload["events"]),
        objectives=dict(payload["objectives"]),
        environment=payload["environment"],
        replicates=int(payload.get("replicates", 1)),
        measurement_seconds=float(payload.get("measurement_seconds", 0.0)))


# ----------------------------------------------------------------- documents
def snapshot_document(entry, spec: Mapping[str, object], *,
                      subject: str | None = None,
                      applied_op_id: int = 0) -> dict:
    """Build the durable snapshot document of one fitted registry entry.

    Must be called at a refresh boundary (the entry's ``pending`` buffer
    empty, its drift detector just rebaselined) under the entry's lock —
    the invariant that makes ``applied_op_id`` a true watermark: every
    observation with an op id at or below it is folded into the captured
    model and drift state.

    Parameters
    ----------
    entry:
        A fitted :class:`~repro.service.registry.ModelEntry` with a live
        loop state (adopted entries have nothing to snapshot).
    spec:
        The subject spec the entry was fitted from.
    subject:
        Registry key the entry is addressed by (defaults to the entry's
        own key).
    applied_op_id:
        Journal watermark covered by this snapshot (0 outside the
        sharded tier).
    """
    state = entry.state
    if state is None or state.learned is None or state.engine is None:
        raise ValueError(f"entry {entry.key!r} holds no fitted loop state "
                         "to snapshot")
    return {
        "format": STORE_FORMAT,
        "subject": str(subject if subject is not None else entry.key),
        "spec": canonical_spec(spec),
        "spec_hash": spec_key(spec),
        "version": int(entry.version),
        "applied_op_id": int(applied_op_id),
        "measurements": [measurement_to_dict(m)
                         for m in state.measurements],
        "learned": state.learned.to_dict(),
        "fitted": state.engine.fitted_model.to_dict(),
        "drift": None if entry.drift is None else entry.drift.to_dict(),
    }


def measurements_from_document(doc: dict) -> list[Measurement]:
    """The measurement stream captured in a snapshot document."""
    return [measurement_from_dict(m) for m in doc["measurements"]]


# --------------------------------------------------------------------- store
class ModelStore:
    """A directory of versioned model snapshots keyed by content hash.

    Parameters
    ----------
    root:
        Store directory (created on demand).
    retain:
        Snapshot versions kept per key; older version files are pruned
        after each publish.  The minimum useful value is 2 — the live
        version plus its predecessor, which is what makes
        :meth:`rollback` instant.
    """

    def __init__(self, root: str | Path, retain: int = 2) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self.retain = int(retain)

    @property
    def root(self) -> Path:
        return self._root

    # ---------------------------------------------------------------- layout
    def key_dir(self, key: str) -> Path:
        """Directory holding every snapshot version of ``key``."""
        return self._root / key

    def version_path(self, key: str, version: int) -> Path:
        """Path of one snapshot version file (zero-padded, sorts by age)."""
        return self.key_dir(key) / f"v{int(version):012d}.json"

    def _latest_path(self, key: str) -> Path:
        return self.key_dir(key) / "LATEST"

    def keys(self) -> Iterator[str]:
        """Keys with at least one published snapshot, sorted."""
        for path in sorted(self._root.iterdir()):
            if path.is_dir() and (path / "LATEST").exists():
                yield path.name

    def __contains__(self, key: str) -> bool:
        return self.latest_version(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def versions(self, key: str) -> list[int]:
        """Retained snapshot versions of ``key``, ascending."""
        out = []
        for path in self.key_dir(key).glob("v*.json"):
            try:
                out.append(int(path.stem[1:]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(out)

    # --------------------------------------------------------------- publish
    def publish(self, key: str, doc: dict) -> Path:
        """Atomically persist ``doc`` as the live snapshot of ``key``.

        The version file lands first (temp file + ``os.replace``), then
        the ``LATEST`` pointer flips — a reader therefore never observes
        a pointer to a half-written snapshot.  The previous version file
        is retained (up to ``retain`` total) for instant rollback.
        """
        version = int(doc["version"])
        directory = self.key_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.version_path(key, version)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(doc))
        os.replace(tmp, path)
        self._point_latest(key, version)
        self._prune(key, keep=version)
        return path

    def _point_latest(self, key: str, version: int) -> None:
        latest = self._latest_path(key)
        tmp = latest.with_suffix(".tmp")
        tmp.write_text(str(int(version)))
        os.replace(tmp, latest)

    def _prune(self, key: str, keep: int) -> None:
        """Drop version files beyond ``retain``, newest kept first."""
        versions = self.versions(key)
        for version in versions[:-self.retain]:
            if version == keep:  # pragma: no cover - defensive
                continue
            try:
                self.version_path(key, version).unlink()
            except FileNotFoundError:  # pragma: no cover - racing prune
                pass

    # ------------------------------------------------------------------ load
    def latest_version(self, key: str) -> int | None:
        """Version the ``LATEST`` pointer names, or ``None`` (fail closed)."""
        try:
            return int(self._latest_path(key).read_text().strip())
        except (OSError, ValueError):
            return None

    def load(self, key: str, version: int | None = None) -> dict | None:
        """Load one snapshot document, or ``None`` if absent/corrupt.

        Every failure mode — missing key, dangling ``LATEST`` pointer,
        truncated or non-JSON file, wrong schema format — loads as
        ``None`` so callers fall back to a clean refit rather than
        serving from a damaged snapshot.
        """
        if version is None:
            version = self.latest_version(key)
            if version is None:
                return None
        try:
            doc = json.loads(self.version_path(key, version).read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("format") != STORE_FORMAT:
            return None
        return doc

    # -------------------------------------------------------------- rollback
    def rollback(self, key: str, to_version: int | None = None) -> int | None:
        """Flip ``LATEST`` back to an older retained version.

        With ``to_version=None`` the pointer moves to the newest retained
        version *older* than the current one.  An explicit ``to_version``
        restores that exact retained version — the rolling-refresh path
        uses it to undo a model upgrade that published *lower-numbered*
        snapshots under the same key (a fresh generation restarts at
        version 0, so "newest older than current" would not find the
        pre-upgrade state).

        Returns the version now live, or ``None`` when the requested
        target does not exist (the pointer is left untouched).
        """
        current = self.latest_version(key)
        if current is None:
            return None
        if to_version is not None:
            if int(to_version) not in self.versions(key):
                return None
            self._point_latest(key, int(to_version))
            return int(to_version)
        older = [v for v in self.versions(key) if v < current]
        if not older:
            return None
        self._point_latest(key, older[-1])
        return older[-1]

    def discard(self, key: str) -> None:
        """Remove every snapshot of ``key`` (absent keys are a no-op)."""
        directory = self.key_dir(key)
        if not directory.is_dir():
            return
        for path in directory.iterdir():
            try:
                path.unlink()
            except (FileNotFoundError, IsADirectoryError):
                # pragma: no cover - racing writer / foreign subdirectory
                continue
        try:
            directory.rmdir()
        except OSError:  # pragma: no cover - directory not empty
            pass


def sequence_as_measurements(measurements: Sequence) -> list[Measurement]:
    """Coerce a replayed measurement batch to :class:`Measurement` objects.

    Journal entries cross process boundaries as pickled measurements, so
    this is normally the identity; it exists as a seam for wire-protocol
    front ends that deliver measurement dicts instead.
    """
    out = []
    for m in measurements:
        out.append(m if isinstance(m, Measurement)
                   else measurement_from_dict(m))
    return out
