"""The thread-safe query-serving facade.

:class:`QueryService` is what a deployment exposes to its clients: a
``submit`` / ``submit_many`` surface over the
:class:`~repro.service.registry.ModelRegistry` and
:class:`~repro.service.batcher.RequestBatcher`.  Client threads enqueue
requests and block on futures; a dispatcher thread drains the queue in
small timed windows, groups what arrived together, and answers each group
with one batched engine call.  The lifecycle of a request is::

    submit() ──admission──▶ per-subject queue ──drain──▶ RequestBatcher
                                                            │ one *_batch
                                                            ▼ engine call
    client ◀────────────── future.result() ◀──────────── QueryResponse

Three serving policies are enforced here rather than in the batcher:

* **Admission control** — at most ``max_pending`` requests may be queued;
  beyond that :meth:`submit` raises :class:`AdmissionError` immediately
  (backpressure the caller can see) instead of growing an unbounded queue.
* **Per-subject fairness** — the drain loop round-robins across subjects,
  taking at most ``fairness_quantum`` requests from each per turn, so one
  hot subject cannot starve the others no matter how deep its backlog.
* **Version isolation** — a drained group is answered under its registry
  entry's lock at one model version; a concurrent
  :meth:`~repro.service.registry.ModelRegistry.observe` refresh either
  happens before the group (all answers carry the new version) or after
  (all the old) — never in between.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

from repro.service.batcher import RequestBatcher
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.registry import ModelRegistry
from repro.service.requests import QueryRequest, QueryResponse
from repro.service.tracing import Tracer


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a service that has been closed."""


class AdmissionError(RuntimeError):
    """Raised when the bounded in-flight queue rejects a submission."""


@dataclass
class ServiceStats:
    """Counters describing one service's lifetime of work.

    ``coalesced_ratio`` is requests answered per engine call — the
    serving-layer speedup lever (1.0 means no coalescing happened).
    ``cache_hits`` / ``cache_misses`` count distinct item keys served
    from (or stored into) the per-entry cross-request
    :class:`~repro.service.result_cache.ResultCache`; a hit answers
    without any engine call at all.
    """

    submitted: int = 0
    answered: int = 0
    rejected: int = 0
    dispatches: int = 0
    engine_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    max_batch_observed: int = 0
    #: futures that could not be resolved (client cancelled them while
    #: queued) and dispatch rounds that raised unexpectedly — both are
    #: absorbed so the dispatcher thread survives.
    cancelled: int = 0
    dispatch_errors: int = 0
    #: futures resolved with :class:`ServiceClosedError` because
    #: :meth:`QueryService.close` found them still queued with no
    #: dispatcher left to answer them.
    closed_errors: int = 0
    per_subject: dict = field(default_factory=dict)

    @property
    def coalesced_ratio(self) -> float:
        """Requests answered per engine call (>= 1.0 once work happened)."""
        return self.answered / max(self.engine_calls, 1)


@dataclass
class _Pending:
    """A queued request with its future and enqueue timestamp."""

    request: QueryRequest
    future: Future
    enqueued_at: float


class QueryService:
    """Concurrent query-serving facade over a model registry.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` holding the fitted subject models.
    batcher:
        The dispatch strategy; defaults to a coalescing
        :class:`RequestBatcher` (pass ``RequestBatcher(coalesce=False)``
        for the one-at-a-time reference mode).
    batch_window:
        Seconds the dispatcher waits after the first pending request for
        more to arrive before draining — the coalescing opportunity window.
    max_pending:
        Bound on queued requests; beyond it :meth:`submit` raises
        :class:`AdmissionError`.
    max_batch:
        Most requests drained per dispatch round, across all subjects.
    fairness_quantum:
        Most requests drained from any one subject per round.
    auto_start:
        Start the dispatcher thread immediately; pass ``False`` to enqueue
        first and :meth:`start` later (used by backpressure tests).
    tracer:
        Optional :class:`~repro.service.tracing.Tracer`.  When enabled it
        receives a per-request :class:`~repro.service.tracing.TraceContext`
        carrying the queue-wait / batch-wait / engine / cache segments;
        when absent (or disabled) the hot path performs no per-request
        trace work at all.

    Examples
    --------
    >>> registry = ModelRegistry()
    >>> registry.register("cache", unicorn)            # doctest: +SKIP
    >>> with QueryService(registry) as service:        # doctest: +SKIP
    ...     response = service.submit(
    ...         EffectRequest.of("cache", "Throughput",
    ...                          {"CachePolicy": 0.0}))
    """

    def __init__(self, registry: ModelRegistry,
                 batcher: RequestBatcher | None = None,
                 batch_window: float = 0.002,
                 max_pending: int = 1024,
                 max_batch: int = 256,
                 fairness_quantum: int = 32,
                 auto_start: bool = True,
                 tracer: Tracer | None = None) -> None:
        if max_pending < 1 or max_batch < 1 or fairness_quantum < 1:
            raise ValueError("queue bounds must be >= 1")
        self.registry = registry
        self.batcher = batcher if batcher is not None else RequestBatcher()
        self.batch_window = float(batch_window)
        self.max_pending = int(max_pending)
        self.max_batch = int(max_batch)
        self.fairness_quantum = int(fairness_quantum)
        self.stats = ServiceStats()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = ServiceMetrics()
        #: innermost lock guarding every ``self.stats`` mutation and the
        #: consistent :meth:`stats_snapshot` copy; never held while
        #: acquiring ``self._cv``.
        self._stats_lock = threading.Lock()

        #: per-subject FIFO queues, in subject-arrival order; the drain
        #: loop round-robins over this OrderedDict for fairness.
        self._queues: "OrderedDict[str, deque[_Pending]]" = OrderedDict()
        self._n_pending = 0
        self._cv = threading.Condition()
        self._closed = False
        self._dispatch_index = 0
        self._thread: threading.Thread | None = None
        if auto_start:
            self.start()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._cv:
            if self._closed:
                raise ServiceClosedError("service already closed")
            if self._thread is not None:
                return
            self._thread = threading.Thread(target=self._dispatch_loop,
                                            name="query-service-dispatcher",
                                            daemon=True)
            self._thread.start()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain outstanding work, stop the dispatcher, settle every future.

        Requests already queued are still answered by the dispatcher
        before it exits; new submissions raise
        :class:`ServiceClosedError`.  If the dispatcher cannot finish the
        drain — it never started, or it is still busy when ``timeout``
        expires — the still-queued requests are taken off the queues and
        their futures resolve with a deterministic
        :class:`ServiceClosedError`, so a client blocked in
        ``future.result()`` always gets a definite outcome (the answer,
        or the error) rather than hanging on a cancelled or leaked
        entry.  Requests a live dispatcher had already drained keep their
        promise and are answered normally.
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        # Whatever is still queued at this point will never be drained by
        # a healthy dispatcher (none ever ran, or it outlived the join
        # timeout); taking the entries off the queues under the lock
        # guarantees a still-running dispatcher cannot also answer them.
        with self._cv:
            leftovers = [pending for queue in self._queues.values()
                         for pending in queue]
            self._queues.clear()
            self._n_pending = 0
        for pending in leftovers:
            if not pending.future.set_running_or_notify_cancel():
                with self._stats_lock:
                    self.stats.cancelled += 1
                continue
            with self._stats_lock:
                self.stats.closed_errors += 1
            trace = self.tracer.finish(pending.request)
            if trace is not None:
                trace.error = "service closed before dispatch"
            pending.future.set_exception(ServiceClosedError(
                "service closed before the request was dispatched"))

    def __enter__(self) -> "QueryService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def submit_async(self, request: QueryRequest) -> Future:
        """Enqueue one request and return its :class:`Future`.

        The future resolves to a :class:`QueryResponse` (engine failures
        surface in ``response.error``, not as future exceptions).

        Raises
        ------
        AdmissionError
            If the bounded queue is full — the backpressure signal; retry
            after backing off or after outstanding futures resolve.
        ServiceClosedError
            If the service has been closed.
        UnknownSubjectError
            If the request names a subject the registry does not hold.
        """
        self.registry.get(request.subject)  # validate before queueing
        pending = _Pending(request=request, future=Future(),
                           enqueued_at=time.perf_counter())
        # The context must exist before the dispatcher can possibly see
        # the request, so the batcher's lookup never races a late begin.
        trace = self.tracer.begin(request)
        try:
            with self._cv:
                if self._closed:
                    raise ServiceClosedError("service is closed")
                if self._n_pending >= self.max_pending:
                    with self._stats_lock:
                        self.stats.rejected += 1
                    raise AdmissionError(
                        f"in-flight queue full ({self.max_pending} pending);"
                        " back off and retry")
                self._queues.setdefault(request.subject,
                                        deque()).append(pending)
                self._n_pending += 1
                with self._stats_lock:
                    self.stats.submitted += 1
                self._cv.notify_all()
        except Exception as exc:
            if trace is not None:
                trace.error = type(exc).__name__
                self.tracer.finish(request, trace)
            raise
        return pending.future

    def submit(self, request: QueryRequest,
               timeout: float | None = None) -> QueryResponse:
        """Enqueue one request and block until its response arrives.

        Parameters
        ----------
        request:
            Any :mod:`repro.service.requests` request.
        timeout:
            Seconds to wait for the answer (``None`` waits indefinitely).

        Returns
        -------
        QueryResponse

        Raises
        ------
        AdmissionError
            If the queue rejected the submission (see :meth:`submit_async`).
        concurrent.futures.TimeoutError
            If the answer did not arrive within ``timeout``.
        """
        return self.submit_async(request).result(timeout=timeout)

    def submit_many(self, requests: Sequence[QueryRequest],
                    timeout: float | None = None) -> list[QueryResponse]:
        """Enqueue a list of requests and wait for all their responses.

        The list is admitted atomically (all requests or none), so a
        client's coherent batch cannot be half-rejected.

        Raises
        ------
        AdmissionError
            If the whole list does not fit in the queue.
        """
        requests = list(requests)
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))
        for request in requests:
            self.registry.get(request.subject)
        futures = []
        # One bulk begin: a single tracer-lock handshake for the whole
        # slice instead of one per request.
        self.tracer.begin_many(requests)
        with self._cv:
            if self._closed:
                raise ServiceClosedError("service is closed")
            if self._n_pending + len(requests) > self.max_pending:
                with self._stats_lock:
                    self.stats.rejected += len(requests)
                if self.tracer.enabled:
                    for request in requests:
                        self.tracer.finish(request)
                raise AdmissionError(
                    f"in-flight queue cannot admit {len(requests)} more "
                    f"requests ({self._n_pending}/{self.max_pending} used)")
            now = time.perf_counter()
            for request in requests:
                pending = _Pending(request=request, future=Future(),
                                   enqueued_at=now)
                self._queues.setdefault(request.subject,
                                        deque()).append(pending)
                futures.append(pending.future)
            self._n_pending += len(requests)
            with self._stats_lock:
                self.stats.submitted += len(requests)
            self._cv.notify_all()
        # One shared deadline: ``timeout`` bounds the whole call, not each
        # future individually.
        return [future.result(
                    timeout=None if deadline is None
                    else max(deadline - time.monotonic(), 0.0))
                for future in futures]

    @property
    def n_pending(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        with self._cv:
            return self._n_pending

    # ------------------------------------------------------------ observability
    def stats_snapshot(self) -> ServiceStats:
        """A consistent point-in-time copy of :attr:`stats`.

        Taken under the same lock every counter mutation holds, so a
        snapshot read mid-burst can never show a torn view such as
        ``answered + dispatch_errors + closed_errors > submitted`` —
        the guarantee the gateway's ``stats`` verb and the regression
        test in ``tests/test_stats_consistency.py`` rely on.  Reading
        :attr:`stats` directly remains possible but is only
        race-free once the service has quiesced.
        """
        with self._stats_lock:
            return dataclasses.replace(
                self.stats, per_subject=dict(self.stats.per_subject))

    def metrics_snapshot(self) -> MetricsSnapshot:
        """A :class:`~repro.service.metrics.MetricsSnapshot` of this tier.

        Combines the consistent counter snapshot with the live gauges
        (queue depth, in-flight estimate), the dispatch batch-size
        histogram, the latency reservoir's p50/p95/p99, and the
        registry's refresh cadence.
        """
        with self._cv:
            queue_depth = self._n_pending
        stats = self.stats_snapshot()
        in_flight = max(0, stats.submitted - stats.answered
                        - stats.cancelled - stats.closed_errors)
        return MetricsSnapshot(
            queue_depth=queue_depth,
            in_flight=in_flight,
            submitted=stats.submitted,
            answered=stats.answered,
            coalescing_ratio=stats.coalesced_ratio,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            refreshes=self.registry.refreshes,
            batch_histogram=self.metrics.batch_sizes.as_dict(),
            latency_ms=self.metrics.latency.percentiles(),
            latency_samples=self.metrics.latency.count)

    # ------------------------------------------------------------ maintenance
    def observe(self, subject: str, measurements: Sequence,
                block: bool = True) -> int:
        """Stream new measurements into a subject's model.

        Pass-through to :meth:`ModelRegistry.observe
        <repro.service.registry.ModelRegistry.observe>` — eager or
        drift-aware depending on how the registry was configured — so a
        :class:`QueryService` and a
        :class:`~repro.service.sharding.ShardedQueryService` expose the
        same maintenance surface to workload drivers.  ``block`` exists
        for that surface symmetry: an in-process observe is processed on
        the calling thread either way and always returns the version.
        """
        return self.registry.observe(subject, measurements)

    def quiesce(self, timeout: float | None = 60.0) -> None:
        """Wait for outstanding background model refreshes to land.

        Pass-through to :meth:`ModelRegistry.quiesce
        <repro.service.registry.ModelRegistry.quiesce>`; a no-op unless
        the registry refreshes asynchronously.
        """
        self.registry.quiesce(timeout=timeout)

    # --------------------------------------------------------------- dispatch
    def _dispatch_loop(self) -> None:
        """Dispatcher thread: wait, window, drain fairly, answer."""
        while True:
            with self._cv:
                while not self._n_pending and not self._closed:
                    self._cv.wait()
                if self._closed and not self._n_pending:
                    return
            # Let a burst of concurrent submissions accumulate so they can
            # be coalesced; clients blocked on futures are waiting anyway.
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            batch = self._drain()
            if batch:
                try:
                    self._answer(batch)
                except Exception as exc:  # noqa: BLE001 - the dispatcher
                    # must survive anything _answer lets through (it
                    # already isolates engine errors per response); a dead
                    # dispatcher would hang every future submission.  The
                    # drained futures of the failed round were removed
                    # from the queues, so resolve them with an error
                    # instead of leaving their clients blocked forever.
                    with self._stats_lock:
                        self.stats.dispatch_errors += 1
                    for pendings in batch.values():
                        for pending in pendings:
                            trace = self.tracer.finish(pending.request)
                            if trace is not None:
                                trace.error = f"dispatch round failed: {exc}"
                            self._resolve(pending, QueryResponse(
                                request=pending.request,
                                subject=pending.request.subject,
                                model_version=-1, value=None,
                                error=f"dispatch round failed: {exc}"))

    def _drain(self) -> "OrderedDict[str, list[_Pending]]":
        """Take up to ``max_batch`` pending requests, round-robin by subject.

        Each pass over the subject queues takes at most
        ``fairness_quantum`` requests per subject, so a deep backlog on one
        subject cannot monopolise a drain round.  A subject that was
        served but still has a backlog is rotated to the back of the
        queue order, so when one round cannot reach every subject the
        next round starts with the subjects this one skipped — no subject
        starves no matter how many are backlogged.
        """
        drained: "OrderedDict[str, list[_Pending]]" = OrderedDict()
        with self._cv:
            budget = self.max_batch
            while budget > 0:
                took_any = False
                for subject in list(self._queues):
                    queue = self._queues[subject]
                    quantum = min(self.fairness_quantum, budget)
                    taken = drained.setdefault(subject, [])
                    while queue and quantum > 0:
                        taken.append(queue.popleft())
                        self._n_pending -= 1
                        quantum -= 1
                        budget -= 1
                        took_any = True
                    if not queue:
                        del self._queues[subject]
                    else:
                        self._queues.move_to_end(subject)
                    if budget <= 0:
                        break
                if not took_any:
                    break
            self._cv.notify_all()
        return OrderedDict((s, p) for s, p in drained.items() if p)

    def _resolve(self, pending: _Pending, response: QueryResponse) -> None:
        """Set a response on a pending future, tolerating cancellation.

        A client may have cancelled its future while the request was
        queued; that must not kill the dispatcher or starve the other
        futures of the round.
        """
        if not pending.future.set_running_or_notify_cancel():
            with self._stats_lock:
                self.stats.cancelled += 1
            return
        pending.future.set_result(response)

    def _answer(self, batch: "OrderedDict[str, list[_Pending]]") -> None:
        """Dispatch one drained round, one batcher call per subject."""
        tracing = self.tracer.enabled
        for subject, pendings in batch.items():
            self._dispatch_index += 1
            index = self._dispatch_index
            calls_before = self.batcher.calls
            hits_before = self.batcher.cache_hits
            misses_before = self.batcher.cache_misses
            requests = [p.request for p in pendings]
            # claim_round() retires each request's oldest live context —
            # exactly the occurrence its response settles, so repeats of
            # one hot request object each stamp their own context — and
            # the one aligned list serves the batcher's annotations and
            # the settle loop below: one tracer-lock pass per round.
            traces = (self.tracer.claim_round(requests) if tracing
                      else None)
            dispatch_start = time.perf_counter()
            try:
                entry = self.registry.get(subject)
                responses = self.batcher.dispatch(
                    entry, requests, dispatch_index=index, traces=traces)
            except Exception as exc:  # noqa: BLE001 - isolate subjects
                responses = [QueryResponse(
                    request=p.request, subject=subject, model_version=-1,
                    value=None, dispatch_index=index, error=str(exc))
                    for p in pendings]
            # A misbehaving batcher returning too few responses must not
            # leave the tail futures unresolved (zip would truncate).
            while len(responses) < len(pendings):
                short = pendings[len(responses)]
                responses.append(QueryResponse(
                    request=short.request, subject=subject,
                    model_version=-1, value=None, dispatch_index=index,
                    error="batcher returned too few responses"))
            now = time.perf_counter()
            latencies = []
            if traces is None:
                traces = [None] * len(pendings)
            for pending, response, trace in zip(pendings, responses,
                                                traces):
                response.latency_seconds = now - pending.enqueued_at
                latencies.append(response.latency_seconds)
                if trace is not None:
                    trace.queue_wait_seconds = \
                        dispatch_start - pending.enqueued_at
                    trace.batch_wait_seconds = self.batch_window
                    trace.total_seconds = response.latency_seconds
                    if response.error:
                        trace.error = response.error
            self.metrics.observe_dispatch(len(pendings), latencies)
            with self._stats_lock:
                self.stats.dispatches += 1
                self.stats.answered += len(responses)
                self.stats.engine_calls += self.batcher.calls - calls_before
                self.stats.cache_hits += \
                    self.batcher.cache_hits - hits_before
                self.stats.cache_misses += \
                    self.batcher.cache_misses - misses_before
                self.stats.max_batch_observed = max(
                    self.stats.max_batch_observed, len(pendings))
                per_subject = self.stats.per_subject
                per_subject[subject] = per_subject.get(subject, 0) \
                    + len(responses)
            # Resolve only after the round's stats are published: a
            # client whose future just completed must never read a
            # snapshot that has not yet counted its answer.
            for pending, response in zip(pendings, responses):
                self._resolve(pending, response)
