"""Lock-cheap serving metrics: reservoirs, histograms, snapshots.

The serving tier's counters (:class:`~repro.service.service.ServiceStats`,
:class:`~repro.service.sharding.ShardedServiceStats`) answer *how much*
work happened; this module answers *how it felt*: latency percentiles
from a streaming reservoir, the batch-size distribution the coalescer
actually achieved, queue depth and in-flight gauges, refresh cadence.
Everything here is designed for the hot path:

* :class:`LatencyReservoir` — a fixed-capacity ring of the most recent
  samples.  Recording is one lock acquisition, one float store and one
  integer increment; percentile computation (the cold read path) sorts
  a copy.  A ring (rather than Vitter's algorithm R) keeps recording
  deterministic — no random number draw per sample — so two identical
  serial replays produce identical snapshots.
* :class:`BatchSizeHistogram` — power-of-two buckets over observed
  dispatch batch sizes; one ``bit_length`` and one list increment per
  dispatch round (not per request).
* :class:`MetricsSnapshot` — the immutable, JSON-safe point-in-time
  view ``metrics_snapshot()`` returns and the gateway's ``metrics``
  wire verb serves.

The snapshot is assembled under the owning service's stats lock, so its
cross-counter sums obey the same invariants the consistent
:meth:`~repro.service.service.QueryService.stats_snapshot` guarantees
(``answered <= submitted``, never a torn mid-burst view).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: Default reservoir capacity: large enough that p99 over a benchmark
#: round is computed from real samples, small enough that the ring and
#: its sorted copy stay cache-friendly.
DEFAULT_RESERVOIR_CAPACITY = 2048


class LatencyReservoir:
    """Streaming reservoir of latency samples (seconds), ring-buffered.

    Keeps the most recent ``capacity`` samples.  Recording is O(1) and
    lock-cheap; :meth:`percentiles` sorts a copy (the cold path).  The
    ring is deterministic: identical sample streams produce identical
    reservoir contents, which the trace-determinism tests rely on.

    Parameters
    ----------
    capacity:
        Maximum samples retained; older samples are overwritten.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: list[float] = [0.0] * self.capacity
        self._count = 0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency sample (hot path: one lock, two stores)."""
        with self._lock:
            self._ring[self._count % self.capacity] = float(seconds)
            self._count += 1

    def record_many(self, samples: Sequence[float]) -> None:
        """Add a batch of samples under one lock acquisition."""
        with self._lock:
            count = self._count
            for sample in samples:
                self._ring[count % self.capacity] = float(sample)
                count += 1
            self._count = count

    @property
    def count(self) -> int:
        """Total samples ever recorded (retained or overwritten)."""
        with self._lock:
            return self._count

    def samples(self) -> list[float]:
        """The retained samples, oldest first (a copy)."""
        with self._lock:
            count = self._count
            if count <= self.capacity:
                return self._ring[:count]
            start = count % self.capacity
            return self._ring[start:] + self._ring[:start]

    def percentiles(self, ranks: Sequence[float] = (50.0, 95.0, 99.0)
                    ) -> dict[str, float]:
        """``{"p50": ..., ...}`` in **milliseconds** over retained samples.

        Empty reservoirs report zeros.  Uses nearest-rank on the sorted
        retained window — deterministic and dependency-free.
        """
        retained = sorted(self.samples())
        if not retained:
            return {f"p{rank:g}": 0.0 for rank in ranks}
        out = {}
        for rank in ranks:
            position = max(
                0, min(len(retained) - 1,
                       int(round(rank / 100.0 * (len(retained) - 1)))))
            out[f"p{rank:g}"] = retained[position] * 1000.0
        return out


class BatchSizeHistogram:
    """Power-of-two histogram of dispatch batch sizes.

    Bucket ``i`` counts batches of size in ``[2**i, 2**(i+1))`` (bucket 0
    is size 1).  Recording is one ``bit_length`` call and one increment
    per *dispatch round*, not per request — effectively free.
    """

    def __init__(self, n_buckets: int = 12) -> None:
        if n_buckets < 1:
            raise ValueError("histogram needs at least one bucket")
        self._counts = [0] * int(n_buckets)
        self._lock = threading.Lock()

    def record(self, batch_size: int) -> None:
        """Count one dispatch batch of ``batch_size`` requests."""
        if batch_size < 1:
            return
        bucket = min(int(batch_size).bit_length() - 1,
                     len(self._counts) - 1)
        with self._lock:
            self._counts[bucket] += 1

    def as_dict(self) -> dict[str, int]:
        """``{"1": ..., "2-3": ..., "4-7": ...}`` label → count (non-zero
        buckets only, stable label order)."""
        with self._lock:
            counts = list(self._counts)
        out: dict[str, int] = {}
        for bucket, count in enumerate(counts):
            if not count:
                continue
            lo = 1 << bucket
            hi = (1 << (bucket + 1)) - 1
            label = str(lo) if lo == hi else f"{lo}-{hi}"
            if bucket == len(counts) - 1:
                label = f"{lo}+"
            out[label] = count
        return out

    def total(self) -> int:
        """Total batches recorded across all buckets."""
        with self._lock:
            return sum(self._counts)


@dataclass(frozen=True)
class MetricsSnapshot:
    """One immutable, JSON-safe point-in-time view of a serving tier.

    Assembled by ``metrics_snapshot()`` on
    :class:`~repro.service.service.QueryService` and
    :class:`~repro.service.sharding.ShardedQueryService` under the
    owning service's stats lock, and served over the wire by the
    gateway's ``metrics`` verb.  All fields are plain numbers or dicts
    of numbers, so ``as_dict()`` round-trips through JSON exactly.
    """

    #: requests queued but not yet drained.
    queue_depth: int
    #: requests admitted but not yet resolved (queued + being answered).
    in_flight: int
    submitted: int
    answered: int
    #: requests answered per engine call (the coalescing win).
    coalescing_ratio: float
    cache_hits: int
    cache_misses: int
    #: model refreshes performed (the drift-aware refresh cadence).
    refreshes: int
    #: dispatch batch-size distribution, power-of-two buckets.
    batch_histogram: dict[str, int] = field(default_factory=dict)
    #: latency percentiles in milliseconds from the streaming reservoir.
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: latency samples the reservoir has seen in total.
    latency_samples: int = 0

    def as_dict(self) -> dict:
        """JSON-safe rendering (what the ``metrics`` wire op returns)."""
        return {
            "queue_depth": int(self.queue_depth),
            "in_flight": int(self.in_flight),
            "submitted": int(self.submitted),
            "answered": int(self.answered),
            "coalescing_ratio": float(self.coalescing_ratio),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "refreshes": int(self.refreshes),
            "batch_histogram": dict(self.batch_histogram),
            "latency_ms": dict(self.latency_ms),
            "latency_samples": int(self.latency_samples),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        """Rebuild a snapshot from its :meth:`as_dict` rendering."""
        return cls(
            queue_depth=int(payload.get("queue_depth", 0)),
            in_flight=int(payload.get("in_flight", 0)),
            submitted=int(payload.get("submitted", 0)),
            answered=int(payload.get("answered", 0)),
            coalescing_ratio=float(payload.get("coalescing_ratio", 0.0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            refreshes=int(payload.get("refreshes", 0)),
            batch_histogram={str(k): int(v) for k, v in
                             dict(payload.get("batch_histogram",
                                              {})).items()},
            latency_ms={str(k): float(v) for k, v in
                        dict(payload.get("latency_ms", {})).items()},
            latency_samples=int(payload.get("latency_samples", 0)))


class ServiceMetrics:
    """The always-on metrics instruments a serving tier owns.

    One :class:`LatencyReservoir` plus one :class:`BatchSizeHistogram`;
    both are lock-cheap enough to stay enabled unconditionally (the
    tracing layer, which allocates per request, is the part that can be
    switched off).  The owning service combines these with its counter
    snapshot into a :class:`MetricsSnapshot`.
    """

    def __init__(self, reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY
                 ) -> None:
        self.latency = LatencyReservoir(reservoir_capacity)
        self.batch_sizes = BatchSizeHistogram()

    def observe_dispatch(self, batch_size: int,
                         latencies: Sequence[float]) -> None:
        """Record one dispatch round: its batch size and latencies."""
        self.batch_sizes.record(batch_size)
        self.latency.record_many(latencies)
