"""Typed request and response objects of the query-serving layer.

Every query the serving layer accepts is a small frozen dataclass naming a
*subject* (a model in the :class:`~repro.service.registry.ModelRegistry`)
plus the query payload.  Requests are hashable value objects: the batcher
groups them by :meth:`QueryRequest.group_key` (queries that can share one
vectorized engine call) and deduplicates them by :meth:`QueryRequest.item_key`
(queries guaranteed to produce the same answer against the same model
version).  Where a request corresponds to one of the paper's performance
queries it also converts to a :class:`~repro.inference.queries.
PerformanceQuery` descriptor, whose ``batch_key`` is reused as the item key,
so the serving layer and the offline engine speak the same query language.

Construct requests either directly with canonical tuple fields or through
the ``of`` classmethods, which accept plain mappings::

    EffectRequest.of("sqlite", objective="QueryTime",
                     intervention={"PRAGMA_CACHE_SIZE": 4096.0})
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.inference.queries import PerformanceQuery, QoSConstraint


class ServiceKind(enum.Enum):
    """The query kinds the serving layer dispatches.

    ``ACE`` and ``PREDICT`` have no :class:`~repro.inference.queries.
    QueryKind` counterpart (they are engine primitives rather than
    paper-level performance queries); the other three map one-to-one.
    """

    ACE = "ace"
    PREDICT = "predict"
    EFFECT = "effect"
    SATISFACTION = "satisfaction"
    REPAIR = "repair"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceKind.{self.name}"


def _pairs(mapping: Mapping[str, float]) -> tuple[tuple[str, float], ...]:
    """Canonical (sorted, float-valued) tuple form of a mapping."""
    return tuple(sorted((str(k), float(v)) for k, v in mapping.items()))


def _str_pairs(mapping: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted) tuple form of a string-valued mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in mapping.items()))


@dataclass(frozen=True)
class QueryRequest:
    """Base class of every serving-layer request.

    Parameters
    ----------
    subject:
        Name (or registry key) of the fitted model this query runs against.
    """

    subject: str

    @property
    def kind(self) -> ServiceKind:
        """Which query family this request belongs to."""
        raise NotImplementedError

    def group_key(self) -> tuple:
        """Key under which requests may share one batched engine call.

        Requests with equal group keys (against the same subject and model
        version) are dispatched together; the default groups by kind only.
        """
        return (self.kind.value,)

    def item_key(self) -> tuple:
        """Canonical identity of the answer this request will receive.

        Requests with equal item keys are interchangeable against one model
        version: the batcher evaluates one of them and fans the answer out.
        """
        raise NotImplementedError

    def item_key_cached(self) -> tuple:
        """:meth:`item_key`, computed once per instance.

        Some kinds derive their key through a full
        :class:`~repro.inference.queries.PerformanceQuery` build — too
        costly to repeat on every cache probe, coalesce grouping and
        trace begin.  Requests are frozen, so the key never changes;
        hot paths read this memo instead.

        The memo lives in ``__dict__`` but is not a dataclass field, so
        clone requests with :func:`dataclasses.replace` (which passes
        only declared fields), never ``type(r)(**r.__dict__)``.
        """
        key = self.__dict__.get("_item_key_memo")
        if key is None:
            key = self.item_key()
            object.__setattr__(self, "_item_key_memo", key)
        return key

    def to_performance_query(self) -> PerformanceQuery | None:
        """The paper-level query descriptor, where one exists.

        Returns
        -------
        PerformanceQuery or None
            ``None`` for engine primitives (ACE, prediction) that have no
            :class:`~repro.inference.queries.QueryKind` counterpart.
        """
        return None


@dataclass(frozen=True)
class AceRequest(QueryRequest):
    """Average causal effect of one option on one objective.

    Answered by :meth:`~repro.inference.engine.CausalInferenceEngine.
    causal_effect`; the response value is the signed ACE (a float).
    """

    option: str = ""
    objective: str = ""

    @property
    def kind(self) -> ServiceKind:
        return ServiceKind.ACE

    def group_key(self) -> tuple:
        """ACE requests on one objective share one batched sweep."""
        return (self.kind.value, self.objective)

    def item_key(self) -> tuple:
        """Identity: the (option, objective) pair."""
        return (self.kind.value, self.option, self.objective)


@dataclass(frozen=True)
class PredictRequest(QueryRequest):
    """Conditional-expectation prediction of objectives for a configuration.

    Answered by :meth:`~repro.inference.engine.CausalInferenceEngine.
    predict_batch`; the response value is an objective → prediction dict.
    """

    configuration: tuple[tuple[str, float], ...] = ()
    objectives: tuple[str, ...] = ()

    @classmethod
    def of(cls, subject: str, configuration: Mapping[str, float],
           objectives: Sequence[str]) -> "PredictRequest":
        """Build from a plain configuration mapping and objective list."""
        return cls(subject=subject, configuration=_pairs(configuration),
                   objectives=tuple(objectives))

    @property
    def kind(self) -> ServiceKind:
        return ServiceKind.PREDICT

    def group_key(self) -> tuple:
        """Predictions wanting the same objectives share one
        ``predict_batch`` call regardless of their configurations."""
        return (self.kind.value, self.objectives)

    def item_key(self) -> tuple:
        """Identity: the objectives plus the full configuration."""
        return (self.kind.value, self.objectives, self.configuration)

    def configuration_dict(self) -> dict[str, float]:
        """The configuration as a plain mapping (engine argument form)."""
        return dict(self.configuration)


@dataclass(frozen=True)
class EffectRequest(QueryRequest):
    """Interventional expectation ``E[objective | do(intervention)]``.

    Answered by :meth:`~repro.inference.engine.CausalInferenceEngine.
    interventional_expectations_batch`; the response value is a float.
    """

    objective: str = ""
    intervention: tuple[tuple[str, float], ...] = ()

    @classmethod
    def of(cls, subject: str, objective: str,
           intervention: Mapping[str, float]) -> "EffectRequest":
        """Build from a plain intervention mapping."""
        return cls(subject=subject, objective=objective,
                   intervention=_pairs(intervention))

    @property
    def kind(self) -> ServiceKind:
        return ServiceKind.EFFECT

    def group_key(self) -> tuple:
        """One vectorized sweep per objective: the engine's batch entry
        point takes one target and many interventions."""
        return (self.kind.value, self.objective)

    def item_key(self) -> tuple:
        """Identity: the descriptor's :meth:`PerformanceQuery.batch_key`."""
        query = self.to_performance_query()
        return (self.kind.value, query.batch_key())

    def intervention_dict(self) -> dict[str, float]:
        """The intervention as a plain mapping (engine argument form)."""
        return dict(self.intervention)

    def to_performance_query(self) -> PerformanceQuery:
        """The :class:`~repro.inference.queries.QueryKind.EFFECT`
        descriptor of this request (direction is immaterial to the
        interventional expectation and pinned to ``minimize``)."""
        return PerformanceQuery.effect_of(
            intervention=dict(self.intervention),
            objectives={self.objective: "minimize"})


@dataclass(frozen=True)
class SatisfactionRequest(QueryRequest):
    """``P(objective meets threshold | do(intervention))``.

    Answered by :meth:`~repro.inference.engine.CausalInferenceEngine.
    satisfaction_probability` (already vectorized over the observed
    contexts); identical concurrent requests are evaluated once.  The
    response value is a probability in ``[0, 1]``.
    """

    objective: str = ""
    direction: str = "minimize"
    threshold: float | None = None
    intervention: tuple[tuple[str, float], ...] = ()

    @classmethod
    def of(cls, subject: str, constraint: QoSConstraint,
           intervention: Mapping[str, float]) -> "SatisfactionRequest":
        """Build from a :class:`QoSConstraint` and an intervention mapping."""
        return cls(subject=subject, objective=constraint.objective,
                   direction=constraint.direction,
                   threshold=constraint.threshold,
                   intervention=_pairs(intervention))

    @property
    def kind(self) -> ServiceKind:
        return ServiceKind.SATISFACTION

    def item_key(self) -> tuple:
        """Identity: the descriptor's :meth:`PerformanceQuery.batch_key`."""
        query = self.to_performance_query()
        return (self.kind.value, query.batch_key())

    def constraint(self) -> QoSConstraint:
        """The QoS constraint in the engine's argument form."""
        return QoSConstraint(self.objective, self.direction, self.threshold)

    def intervention_dict(self) -> dict[str, float]:
        """The intervention as a plain mapping (engine argument form)."""
        return dict(self.intervention)

    def to_performance_query(self) -> PerformanceQuery:
        """The :class:`~repro.inference.queries.QueryKind.SATISFACTION`
        descriptor of this request."""
        return PerformanceQuery.satisfaction(
            intervention=dict(self.intervention),
            constraint=self.constraint())


@dataclass(frozen=True)
class RepairRequest(QueryRequest):
    """Counterfactual repair scan for a performance fault.

    Answered by :meth:`~repro.inference.engine.CausalInferenceEngine.
    repair_set` (one batched counterfactual scan over the candidate grid);
    identical concurrent requests are evaluated once.  The response value is
    the ranked repair list in JSON form (see
    :func:`repair_payload`).
    """

    objectives: tuple[tuple[str, str], ...] = ()
    faulty_configuration: tuple[tuple[str, float], ...] = ()
    faulty_measurement: tuple[tuple[str, float], ...] = ()
    max_repairs: int = 300

    @classmethod
    def of(cls, subject: str, objectives: Mapping[str, str],
           faulty_configuration: Mapping[str, float],
           faulty_measurement: Mapping[str, float],
           max_repairs: int = 300) -> "RepairRequest":
        """Build from plain mappings of the fault and its objectives."""
        return cls(subject=subject, objectives=_str_pairs(objectives),
                   faulty_configuration=_pairs(faulty_configuration),
                   faulty_measurement=_pairs(faulty_measurement),
                   max_repairs=int(max_repairs))

    @property
    def kind(self) -> ServiceKind:
        return ServiceKind.REPAIR

    def item_key(self) -> tuple:
        """Identity: the repair descriptor's batch key plus the fault
        (configuration, measurement) and the candidate cap."""
        query = self.to_performance_query()
        return (self.kind.value, query.batch_key(),
                self.faulty_configuration, self.faulty_measurement,
                self.max_repairs)

    def objectives_dict(self) -> dict[str, str]:
        """Objective → direction mapping (engine argument form)."""
        return dict(self.objectives)

    def to_performance_query(self) -> PerformanceQuery:
        """The :class:`~repro.inference.queries.QueryKind.REPAIR`
        descriptor of this request."""
        return PerformanceQuery.repair(objectives=dict(self.objectives))


def repair_payload(repair_set) -> list[dict]:
    """JSON form of a ranked :class:`~repro.inference.repairs.RepairSet`.

    Rank order is preserved; each entry carries the changed options, the
    ICE score, the raw improvement and the predicted objective values —
    everything a client needs to apply or display the repair.

    Parameters
    ----------
    repair_set:
        The :class:`~repro.inference.repairs.RepairSet` to serialize.

    Returns
    -------
    list of dict
        One dict per repair, in ranking order.
    """
    return [{"changes": {k: float(v) for k, v in repair.changes},
             "ice": float(repair.ice),
             "improvement": float(repair.improvement),
             "predicted": {k: float(v) for k, v in repair.predicted}}
            for repair in repair_set]


@dataclass
class QueryResponse:
    """Answer to one serving-layer request.

    Parameters
    ----------
    request:
        The request this response answers.
    subject:
        Registry subject that served it.
    model_version:
        The registry entry's version at evaluation time; answers with equal
        ``(subject, model_version)`` came from the same model state.
    value:
        The answer payload: a float (ACE, effect, satisfaction), an
        objective → value dict (prediction) or a ranked repair list
        (repair; see :func:`repair_payload`).
    batched:
        Whether the answer came out of a coalesced batch call (``False``
        on the one-at-a-time reference path).
    batch_size:
        Number of requests dispatched in the same engine call (after
        deduplication; 1 on the serial path).
    dispatch_index:
        Monotonic sequence number of the dispatch group that produced the
        answer — exposes drain order for fairness tests and tracing.
    latency_seconds:
        Wall-clock time from submission to answer (0.0 when dispatched
        synchronously without queueing).
    error:
        ``None`` on success; otherwise a message describing the failure
        (the ``value`` is then ``None``).
    """

    request: QueryRequest
    subject: str
    model_version: int
    value: object
    batched: bool = False
    batch_size: int = 1
    dispatch_index: int = 0
    latency_seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the request was answered without error."""
        return self.error is None

    def canonical_value(self) -> object:
        """The answer in canonical JSON-comparable form.

        Floats are kept as-is (byte-identity comparisons rely on exact
        values); dicts are key-sorted via the canonical JSON round-trip
        performed by the caller.  Used by the determinism tests and the
        benchmark to compare coalesced against one-at-a-time answers.
        """
        return {"item": list(map(str, self.request.item_key())),
                "value": self.value,
                "model_version": self.model_version,
                "error": self.error}
