"""Version-keyed cross-request memoization of query answers.

Repeated serving traffic is highly redundant: dashboards re-ask the same
ACE sweeps, repair scans for one incident arrive from several operators,
and drift-aware registries keep a model version stable across thousands of
requests.  The batcher already deduplicates *within* one drained batch;
the :class:`ResultCache` extends that across batches — each
:class:`~repro.service.registry.ModelEntry` owns one, keyed by
``(model_version, request.item_key())``, so a repeated repair scan or ACE
sweep against an unchanged model skips propagation entirely.

The safety argument mirrors the batcher's dedup contract: requests with
equal item keys are interchangeable against one model version (see
:meth:`repro.service.requests.QueryRequest.item_key`), and the cache never
returns a value stored under a different version — a refresh bumps the
entry's version, which both orphans old keys structurally and triggers an
explicit :meth:`ResultCache.invalidate_older_than` sweep.  The model
content-hash dimension of the key is carried by cache *placement*: caches
live per registry entry, and spec-fitted entries are keyed by the spec's
content hash, so two different models can never share a cache line.

Stored values are defensively copied on both store and lookup (the
serving layer hands clients mutable payloads), so a client mutating its
response can never poison the cache or another client's answer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: sentinel returned by :meth:`ResultCache.lookup` on a miss — distinct
#: from ``None``, which is a legal cached value.
MISS = object()


def fresh_value(value: object) -> object:
    """Independent copy of a JSON-like answer payload.

    Answer values are floats, flat dicts or lists of (nested) dicts;
    recursing over exactly those shapes is much cheaper than
    ``copy.deepcopy`` on the hot fan-out path.
    """
    if isinstance(value, dict):
        return {key: fresh_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [fresh_value(item) for item in value]
    return value


class ResultCache:
    """LRU cache of answered queries, keyed by ``(version, item_key)``.

    Parameters
    ----------
    capacity:
        Maximum resident answers; the least-recently-used entry is
        evicted beyond it.

    Notes
    -----
    Thread-safe: the serving layer consults the cache from the dispatcher
    thread while :meth:`invalidate_older_than` runs on refresh threads.
    All counters are cumulative over the cache's lifetime.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, tuple[int, object]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: entries dropped because their version fell behind a refresh.
        self.invalidated = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, version: int, item_key: tuple) -> object:
        """The cached answer for ``item_key`` at ``version``, or :data:`MISS`.

        A stored answer from an older model version never matches: it is
        dropped on sight (counted in :attr:`invalidated`) and the lookup
        reports a miss.  Hits return an independent copy of the payload.
        """
        with self._lock:
            stored = self._entries.get(item_key)
            if stored is not None and stored[0] == version:
                self._entries.move_to_end(item_key)
                self.hits += 1
                return fresh_value(stored[1])
            if stored is not None:
                del self._entries[item_key]
                self.invalidated += 1
            self.misses += 1
            return MISS

    def store(self, version: int, item_key: tuple, value: object) -> None:
        """Remember ``value`` as the answer to ``item_key`` at ``version``.

        The payload is copied on the way in, so later client mutation of
        the served object cannot corrupt the cache.
        """
        with self._lock:
            self._entries[item_key] = (int(version), fresh_value(value))
            self._entries.move_to_end(item_key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate_older_than(self, version: int) -> int:
        """Drop every entry stored under a version below ``version``.

        Called by the registry right after a refresh bumps the entry
        version; returns how many answers were dropped.  (Version-checked
        lookups make this a memory-hygiene sweep rather than a
        correctness requirement.)
        """
        with self._lock:
            stale = [key for key, (stored_version, _)
                     in self._entries.items() if stored_version < version]
            for key in stale:
                del self._entries[key]
            self.invalidated += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns how many entries were resident."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidated += dropped
            return dropped

    @property
    def hit_rate(self) -> float:
        """Hits per lookup over the cache's lifetime (0.0 before traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-friendly snapshot of the cache counters."""
        with self._lock:
            resident = len(self._entries)
        return {"capacity": self.capacity, "resident": resident,
                "hits": self.hits, "misses": self.misses,
                "invalidated": self.invalidated,
                "hit_rate": self.hit_rate}
