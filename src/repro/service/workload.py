"""Deterministic mixed query workloads for serving tests and benchmarks.

A realistic serving mix is mostly cheap interventional/prediction queries
with a long tail of heavier satisfaction and repair scans, and it contains
*hot* queries — many clients asking the same thing at once.
:func:`mixed_workload` reproduces that shape deterministically from a seed,
so the concurrency tests, the throughput benchmark, the campaign cell and
the example all fire the same kind of traffic.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

import numpy as np

from repro.inference.engine import CausalInferenceEngine
from repro.inference.queries import QoSConstraint
from repro.service.requests import (
    AceRequest,
    EffectRequest,
    PredictRequest,
    QueryRequest,
    RepairRequest,
    SatisfactionRequest,
)


def mixed_workload(subject: str, engine: CausalInferenceEngine,
                   directions: Mapping[str, str], n_requests: int,
                   seed: int = 0, satisfaction_pool: int = 4,
                   repair_pool: int = 3,
                   max_repairs: int = 48) -> list[QueryRequest]:
    """Generate a deterministic mixed workload against one subject.

    The mix is roughly 30% interventional-effect queries, 30% predictions,
    10% ACE queries, 18% satisfaction probabilities drawn from a small pool
    of hot queries and 12% repair scans drawn from a pool of hot faults —
    the duplicates are deliberate, they model many clients asking the same
    question (the same fault, the same QoS check) and give the batcher's
    deduplication something to do.

    Parameters
    ----------
    subject:
        Registry subject name stamped on every request.
    engine:
        The fitted engine the workload will run against (provides option
        domains, constraints and observed data for plausible payloads).
    directions:
        Objective → ``"minimize"``/``"maximize"`` mapping (usually
        ``system.objectives``).
    n_requests:
        Number of requests to generate.
    seed:
        Seed of the workload's private random generator; equal seeds give
        byte-equal workloads.
    satisfaction_pool, repair_pool:
        Sizes of the hot-query pools.
    max_repairs:
        Candidate-grid cap carried by the repair requests.

    Returns
    -------
    list of QueryRequest
        ``n_requests`` requests in generation order.
    """
    rng = np.random.default_rng(seed)
    domains = engine.domains
    constraints = engine.constraints
    options = [o for o in constraints.options()
               if o in domains and len(domains[o]) >= 2
               and constraints.is_intervenable(o)]
    objectives = [o for o in directions if o in engine.learned_model.data.columns]
    if not options or not objectives:
        raise ValueError("workload needs at least one intervenable option "
                         "with a domain and one observed objective")
    data = engine.learned_model.data
    medians = {o: float(np.median(data.column(o))) for o in objectives}

    def random_intervention() -> dict[str, float]:
        option = options[int(rng.integers(len(options)))]
        value = domains[option][int(rng.integers(len(domains[option])))]
        return {option: float(value)}

    def random_configuration() -> dict[str, float]:
        return {option: float(domains[option][
                    int(rng.integers(len(domains[option])))])
                for option in options}

    hot_satisfaction: list[SatisfactionRequest] = []
    for _ in range(max(satisfaction_pool, 1)):
        objective = objectives[int(rng.integers(len(objectives)))]
        constraint = QoSConstraint(objective, directions[objective],
                                   threshold=medians[objective])
        hot_satisfaction.append(SatisfactionRequest.of(
            subject, constraint, random_intervention()))

    hot_repairs: list[RepairRequest] = []
    for _ in range(max(repair_pool, 1)):
        objective = objectives[int(rng.integers(len(objectives)))]
        degrade = 1.3 if directions[objective] == "minimize" else 0.7
        hot_repairs.append(RepairRequest.of(
            subject, {objective: directions[objective]},
            faulty_configuration=random_configuration(),
            faulty_measurement={objective: medians[objective] * degrade},
            max_repairs=max_repairs))

    predict_objectives = tuple(sorted(objectives))
    requests: list[QueryRequest] = []
    for _ in range(n_requests):
        roll = float(rng.random())
        if roll < 0.30:
            objective = objectives[int(rng.integers(len(objectives)))]
            requests.append(EffectRequest.of(subject, objective,
                                             random_intervention()))
        elif roll < 0.60:
            requests.append(PredictRequest.of(subject,
                                              random_configuration(),
                                              predict_objectives))
        elif roll < 0.70:
            option = options[int(rng.integers(len(options)))]
            objective = objectives[int(rng.integers(len(objectives)))]
            requests.append(AceRequest(subject=subject, option=option,
                                       objective=objective))
        elif roll < 0.88:
            requests.append(hot_satisfaction[
                int(rng.integers(len(hot_satisfaction)))])
        else:
            requests.append(hot_repairs[int(rng.integers(len(hot_repairs)))])
    return requests


def canonical_answers(responses: Sequence) -> list[str]:
    """Canonical JSON rendering of each response's answer.

    The one comparison the byte-identity contract is checked with —
    shared by the determinism tests, the throughput benchmark, the
    service campaign cell and the example, so the three call sites
    cannot drift apart.
    """
    from repro.evaluation.store import canonical_json

    return [canonical_json(response.canonical_value())
            for response in responses]


def serve_concurrently(service, requests: Sequence[QueryRequest],
                       n_clients: int) -> tuple[list, float, object]:
    """Fan a workload out to concurrent clients and time the serving window.

    Splits ``requests`` into ``n_clients`` equal contiguous slices; each
    client thread submits its slice as one ``submit_many`` batch and
    blocks for the answers.  All clients start together behind a barrier,
    so the measured wall clock covers serving work only, not thread
    startup.  This is the one client pattern shared by the throughput
    benchmark, the service campaign cell and the example walkthrough.

    Parameters
    ----------
    service:
        A started :class:`~repro.service.service.QueryService`.
    requests:
        The workload; its length must be divisible by ``n_clients``.
    n_clients:
        Number of concurrent client threads.

    Returns
    -------
    tuple
        ``(responses, seconds, stats)``: the responses aligned with
        ``requests``, the serving wall-clock seconds, and a snapshot of
        ``service.stats``.
    """
    requests = list(requests)
    if n_clients < 1 or len(requests) % n_clients:
        raise ValueError(f"cannot split {len(requests)} requests evenly "
                         f"across {n_clients} clients")
    per_client = len(requests) // n_clients
    responses: list = [None] * len(requests)
    failures: list[BaseException] = []
    barrier = threading.Barrier(n_clients + 1)

    def client(worker: int) -> None:
        barrier.wait()
        lo = worker * per_client
        try:
            answers = service.submit_many(requests[lo:lo + per_client])
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            failures.append(exc)
            return
        responses[lo:lo + per_client] = answers

    threads = [threading.Thread(target=client, args=(worker,))
               for worker in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    # A swallowed client error (e.g. AdmissionError from an oversized
    # workload) would otherwise surface later as inexplicable None holes
    # in the responses; re-raise it here instead.
    if failures:
        raise failures[0]
    return responses, seconds, service.stats


def latency_percentiles(responses: Sequence, percentiles=(50, 95, 99)
                        ) -> dict[str, float]:
    """Latency percentiles (milliseconds) of a batch of responses.

    Parameters
    ----------
    responses:
        :class:`~repro.service.requests.QueryResponse` objects.
    percentiles:
        Percentile ranks to report.

    Returns
    -------
    dict
        ``{"p50_ms": ..., "p95_ms": ..., ...}`` (empty input gives zeros).
    """
    latencies = np.array([r.latency_seconds for r in responses], dtype=float)
    if latencies.size == 0:
        return {f"p{p}_ms": 0.0 for p in percentiles}
    return {f"p{p}_ms": float(np.percentile(latencies, p) * 1000.0)
            for p in percentiles}
