"""Deterministic mixed query workloads for serving tests and benchmarks.

A realistic serving mix is mostly cheap interventional/prediction queries
with a long tail of heavier satisfaction and repair scans, and it contains
*hot* queries — many clients asking the same thing at once.
:func:`mixed_workload` reproduces that shape deterministically from a seed,
so the concurrency tests, the throughput benchmark, the campaign cell and
the example all fire the same kind of traffic.

For the sharded tier two long-horizon generators join it:
:func:`drifting_measurement_stream` produces per-round observation batches
whose objective distribution undergoes persistent regime shifts at chosen
rounds (the signal a drift detector must catch — and must *not* fire on
during the stationary rounds), and :func:`long_horizon_workload` weaves
multi-subject query rounds and observation rounds into one serving
history.  All seeds derive from :class:`numpy.random.SeedSequence` spawn
trees keyed by round and subject position — the PR 2 discipline — so the
same arguments always produce the byte-identical workload, no matter
which process consumes it.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

import numpy as np

from repro.inference.engine import CausalInferenceEngine
from repro.inference.queries import QoSConstraint
from repro.service.requests import (
    AceRequest,
    EffectRequest,
    PredictRequest,
    QueryRequest,
    RepairRequest,
    SatisfactionRequest,
)
from repro.systems.base import Measurement


def mixed_workload(subject: str, engine: CausalInferenceEngine,
                   directions: Mapping[str, str], n_requests: int,
                   seed: int = 0, satisfaction_pool: int = 4,
                   repair_pool: int = 3,
                   max_repairs: int = 48) -> list[QueryRequest]:
    """Generate a deterministic mixed workload against one subject.

    The mix is roughly 30% interventional-effect queries, 30% predictions,
    10% ACE queries, 18% satisfaction probabilities drawn from a small pool
    of hot queries and 12% repair scans drawn from a pool of hot faults —
    the duplicates are deliberate, they model many clients asking the same
    question (the same fault, the same QoS check) and give the batcher's
    deduplication something to do.

    Parameters
    ----------
    subject:
        Registry subject name stamped on every request.
    engine:
        The fitted engine the workload will run against (provides option
        domains, constraints and observed data for plausible payloads).
    directions:
        Objective → ``"minimize"``/``"maximize"`` mapping (usually
        ``system.objectives``).
    n_requests:
        Number of requests to generate.
    seed:
        Seed of the workload's private random generator; equal seeds give
        byte-equal workloads.
    satisfaction_pool, repair_pool:
        Sizes of the hot-query pools.
    max_repairs:
        Candidate-grid cap carried by the repair requests.

    Returns
    -------
    list of QueryRequest
        ``n_requests`` requests in generation order.
    """
    rng = np.random.default_rng(seed)
    domains = engine.domains
    constraints = engine.constraints
    options = [o for o in constraints.options()
               if o in domains and len(domains[o]) >= 2
               and constraints.is_intervenable(o)]
    objectives = [o for o in directions if o in engine.learned_model.data.columns]
    if not options or not objectives:
        raise ValueError("workload needs at least one intervenable option "
                         "with a domain and one observed objective")
    data = engine.learned_model.data
    medians = {o: float(np.median(data.column(o))) for o in objectives}

    def random_intervention() -> dict[str, float]:
        option = options[int(rng.integers(len(options)))]
        value = domains[option][int(rng.integers(len(domains[option])))]
        return {option: float(value)}

    def random_configuration() -> dict[str, float]:
        return {option: float(domains[option][
                    int(rng.integers(len(domains[option])))])
                for option in options}

    hot_satisfaction: list[SatisfactionRequest] = []
    for _ in range(max(satisfaction_pool, 1)):
        objective = objectives[int(rng.integers(len(objectives)))]
        constraint = QoSConstraint(objective, directions[objective],
                                   threshold=medians[objective])
        hot_satisfaction.append(SatisfactionRequest.of(
            subject, constraint, random_intervention()))

    hot_repairs: list[RepairRequest] = []
    for _ in range(max(repair_pool, 1)):
        objective = objectives[int(rng.integers(len(objectives)))]
        degrade = 1.3 if directions[objective] == "minimize" else 0.7
        hot_repairs.append(RepairRequest.of(
            subject, {objective: directions[objective]},
            faulty_configuration=random_configuration(),
            faulty_measurement={objective: medians[objective] * degrade},
            max_repairs=max_repairs))

    predict_objectives = tuple(sorted(objectives))
    requests: list[QueryRequest] = []
    for _ in range(n_requests):
        roll = float(rng.random())
        if roll < 0.30:
            objective = objectives[int(rng.integers(len(objectives)))]
            requests.append(EffectRequest.of(subject, objective,
                                             random_intervention()))
        elif roll < 0.60:
            requests.append(PredictRequest.of(subject,
                                              random_configuration(),
                                              predict_objectives))
        elif roll < 0.70:
            option = options[int(rng.integers(len(options)))]
            objective = objectives[int(rng.integers(len(objectives)))]
            requests.append(AceRequest(subject=subject, option=option,
                                       objective=objective))
        elif roll < 0.88:
            requests.append(hot_satisfaction[
                int(rng.integers(len(hot_satisfaction)))])
        else:
            requests.append(hot_repairs[int(rng.integers(len(hot_repairs)))])
    return requests


def _derived_seed(root_seed: int, *spawn_key: int) -> int:
    """One integer seed from a SeedSequence spawn tree position."""
    sequence = np.random.SeedSequence(root_seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, np.uint64)[0])


def wire_workload(subject: str, engine: CausalInferenceEngine,
                  directions: Mapping[str, str], n_clients: int,
                  per_client: int, seed: int = 0,
                  max_repairs: int = 48) -> list[list[QueryRequest]]:
    """Per-client request streams for wire soaks and their direct baseline.

    The gateway soak benchmark needs N concurrent clients each firing its
    own request stream, and the direct in-process baseline must consume
    the *identical* requests to make the byte-identity gate meaningful.
    This generator produces one stream per client, each from its own
    :class:`numpy.random.SeedSequence` spawn-tree position
    ``(client_index,)`` under ``seed`` — no generator is shared between
    client threads, so neither thread scheduling nor consumption order
    can perturb the streams, and calling it twice with equal arguments
    yields byte-equal workloads for the soak and the baseline.

    Parameters
    ----------
    subject, engine, directions, max_repairs:
        Forwarded to :func:`mixed_workload` per client.
    n_clients:
        Number of independent client streams.
    per_client:
        Requests in each stream.
    seed:
        Root of the spawn tree; equal seeds give byte-equal stream sets.

    Returns
    -------
    list of list of QueryRequest
        ``n_clients`` streams of ``per_client`` requests each; the
        direct-call baseline is the concatenation in client order.
    """
    return [mixed_workload(subject, engine, directions, per_client,
                           seed=_derived_seed(seed, client),
                           max_repairs=max_repairs)
            for client in range(n_clients)]


def drifting_measurement_stream(system, n_rounds: int, per_round: int,
                                seed: int = 0,
                                drift_rounds: Sequence[int] = (),
                                drift_scale: float = 1.5
                                ) -> list[list[Measurement]]:
    """Per-round observation batches with persistent regime shifts.

    Each round measures ``per_round`` freshly sampled configurations with
    a round-keyed rng from the seed tree.  From every round listed in
    ``drift_rounds`` onward, the measured objective values are scaled by
    ``drift_scale`` (shifts compound if several drift rounds fire) — a
    synthetic but persistent regime change, the kind of shift a resident
    model cannot explain away and must refresh for.  Rounds before the
    first drift round are stationary: same configuration distribution,
    same measurement process, nothing for a drift detector to act on.

    Parameters
    ----------
    system:
        The :class:`~repro.systems.base.ConfigurableSystem` to measure.
    n_rounds, per_round:
        Stream shape: ``n_rounds`` batches of ``per_round`` measurements.
    seed:
        Root of the stream's seed tree; equal seeds give byte-equal
        streams.
    drift_rounds:
        Round indices at which the regime shifts (empty = stationary).
    drift_scale:
        Multiplicative objective shift applied from a drift round onward.

    Returns
    -------
    list of list of Measurement
        ``n_rounds`` observation batches, in round order.
    """
    drift_at = set(int(r) for r in drift_rounds)
    scale = 1.0
    batches: list[list[Measurement]] = []
    for round_index in range(int(n_rounds)):
        rng = np.random.default_rng(_derived_seed(seed, round_index))
        configurations = system.space.sample_configurations(
            int(per_round), rng)
        measured = system.measure_many(configurations, rng=rng)
        if round_index in drift_at:
            scale *= float(drift_scale)
        if scale != 1.0:
            measured = [Measurement(
                configuration=m.configuration, events=m.events,
                objectives={k: v * scale for k, v in m.objectives.items()},
                environment=m.environment, replicates=m.replicates,
                measurement_seconds=m.measurement_seconds)
                for m in measured]
        batches.append(measured)
    return batches


def long_horizon_workload(engines: Mapping[str, CausalInferenceEngine],
                          systems: Mapping[str, object], n_rounds: int,
                          queries_per_round: int,
                          observations_per_round: int, seed: int = 0,
                          drift_rounds: Sequence[int] = (),
                          drift_scale: float = 1.5,
                          observation_batches_per_round: int = 1,
                          max_repairs: int = 32) -> list[dict]:
    """A multi-subject serving history: query rounds + observation rounds.

    Each round carries (a) a mixed query batch spread round-robin across
    the subjects (so every shard of a sharded deployment sees balanced
    traffic) and (b) per subject, ``observation_batches_per_round``
    observation batches from that subject's
    :func:`drifting_measurement_stream` — streams arrive in small
    batches, and an eagerly refreshing tier pays one relearn per batch.
    A serving tier processes round *k* by answering the queries,
    streaming the observation batches through ``observe``, and quiescing
    before round *k+1* — see :func:`serve_rounds`.

    Parameters
    ----------
    engines:
        ``subject -> fitted engine`` (payload vocabulary for the query
        generator).
    systems:
        ``subject -> ConfigurableSystem`` (objective directions and the
        measurement process).
    n_rounds, queries_per_round, observations_per_round:
        History shape; ``queries_per_round`` splits evenly across
        subjects and ``observations_per_round`` evenly across the
        round's observation batches.
    seed, drift_rounds, drift_scale:
        Seed tree root and regime-shift schedule, forwarded per subject
        (``drift_rounds`` are round indices; the shift lands on the
        round's first observation batch).
    observation_batches_per_round:
        How many separate ``observe`` calls deliver a round's
        observations.
    max_repairs:
        Candidate-grid cap carried by generated repair queries.

    Returns
    -------
    list of dict
        One ``{"queries": [...], "observations": {subject: [batch,
        ...]}}`` per round.
    """
    subjects = sorted(engines)
    if not subjects:
        raise ValueError("long-horizon workload needs at least one subject")
    # Exactly queries_per_round queries per round (so any client count
    # dividing it splits evenly): distribute the remainder one-by-one
    # over the leading subjects.
    base, remainder = divmod(int(queries_per_round), len(subjects))
    counts = [base + (1 if position < remainder else 0)
              for position in range(len(subjects))]
    batches_per_round = max(int(observation_batches_per_round), 1)
    per_batch = max(int(observations_per_round) // batches_per_round, 1)
    streams = {
        subject: drifting_measurement_stream(
            systems[subject], int(n_rounds) * batches_per_round, per_batch,
            seed=_derived_seed(seed, 1, position),
            drift_rounds=[int(r) * batches_per_round
                          for r in drift_rounds],
            drift_scale=drift_scale)
        for position, subject in enumerate(subjects)
    }
    rounds: list[dict] = []
    for round_index in range(int(n_rounds)):
        per_subject_queries = [
            mixed_workload(subject, engines[subject],
                           systems[subject].objectives, counts[position],
                           seed=_derived_seed(seed, 2, round_index,
                                              position),
                           max_repairs=max_repairs)
            for position, subject in enumerate(subjects)
        ]
        # Round-robin interleave so contiguous client slices mix subjects.
        queries = [queue[i] for i in range(max(counts))
                   for queue in per_subject_queries if i < len(queue)]
        lo = round_index * batches_per_round
        rounds.append({
            "queries": queries,
            "observations": {
                subject: streams[subject][lo:lo + batches_per_round]
                for subject in subjects},
        })
    return rounds


def serve_rounds(service, rounds: Sequence[Mapping], n_clients: int
                 ) -> tuple[list, float]:
    """Drive a long-horizon workload through a serving tier, timed.

    For every round: answer the query batch with ``n_clients``
    barrier-started concurrent clients (:func:`serve_concurrently`),
    stream each subject's observation batch through ``service.observe``,
    and ``service.quiesce()`` so any triggered model refresh lands before
    the next round — the deterministic phase alignment that lets two
    services' serving histories be compared byte for byte.  Works with
    both :class:`~repro.service.service.QueryService` and
    :class:`~repro.service.sharding.ShardedQueryService` (any object with
    ``submit_many``, ``observe`` and ``quiesce``).

    Returns
    -------
    tuple
        ``(responses, seconds)``: all query responses in workload order,
        and the wall-clock seconds over the whole horizon (queries,
        observation streaming and refreshes included).
    """
    from concurrent.futures import Future

    responses: list = []
    started = time.perf_counter()
    for round_spec in rounds:
        answered, _, _ = serve_concurrently(service, round_spec["queries"],
                                            n_clients)
        responses.extend(answered)
        # Observation batches are pipelined (no per-batch acknowledgement
        # wait); the quiesce barrier below both confirms their delivery
        # and lands any refresh they triggered before the next round.
        acks = []
        for subject, batches in round_spec["observations"].items():
            for batch in batches:
                acks.append(service.observe(subject, batch, block=False))
        service.quiesce()
        # The FIFO barrier guarantees every ack already arrived; collect
        # them so an observe failure surfaces here, at its round, rather
        # than as a silent identity mismatch later.
        for ack in acks:
            if isinstance(ack, Future):
                ack.result(timeout=60)
    return responses, time.perf_counter() - started


def refresh_under_traffic(service, new_specs: Mapping[str, Mapping],
                          probes: Mapping[str, QueryRequest],
                          drain_timeout: float | None = 120.0,
                          poll_interval: float = 0.0
                          ) -> tuple[list[dict], list[dict]]:
    """Roll a sharded fleet onto new specs while probe clients keep asking.

    One prober thread per entry of ``probes`` submits its request in a
    tight loop (every answer recorded with monotonic start/finish stamps)
    while the calling thread runs
    :meth:`~repro.service.sharding.ShardedQueryService.rolling_refresh`.
    The two timelines share one clock, so correlating the probe records
    against the returned per-shard refresh windows answers the
    availability questions the rolling-refresh gate asks: did any probe
    error or get rejected, and was at most one shard's window open at a
    time (capacity never below N-1)?

    Parameters
    ----------
    service:
        A started :class:`~repro.service.sharding.ShardedQueryService`
        with a ``store_path`` (rolling refresh requires one).
    new_specs:
        Forwarded to ``rolling_refresh`` — one spec per routed subject.
    probes:
        ``subject -> request`` probe traffic; one client thread each.
    drain_timeout:
        Forwarded to ``rolling_refresh`` and used as each probe's
        ``submit`` timeout.
    poll_interval:
        Optional sleep between a probe's answer and its next submission
        (0 = back-to-back).

    Returns
    -------
    tuple
        ``(windows, records)``: the refresh windows from
        ``rolling_refresh`` and one ``{"subject", "started", "finished",
        "ok", "error"}`` dict per answered probe.  A refresh failure
        propagates *after* the probers have been joined.
    """
    records: list[dict] = []
    lock = threading.Lock()
    stop = threading.Event()
    barrier = threading.Barrier(len(probes) + 1)

    def prober(subject: str, request: QueryRequest) -> None:
        barrier.wait()
        while not stop.is_set():
            entry = {"subject": subject, "started": time.monotonic()}
            try:
                response = service.submit(request, timeout=drain_timeout)
                entry["ok"] = bool(response.ok)
                entry["error"] = response.error
            except BaseException as exc:  # noqa: BLE001 - recorded verdict
                entry["ok"] = False
                entry["error"] = f"{type(exc).__name__}: {exc}"
            entry["finished"] = time.monotonic()
            with lock:
                records.append(entry)
            if poll_interval:
                time.sleep(poll_interval)

    threads = [threading.Thread(target=prober, args=(subject, request),
                                name=f"refresh-probe-{subject}")
               for subject, request in sorted(probes.items())]
    for thread in threads:
        thread.start()
    barrier.wait()
    try:
        windows = service.rolling_refresh(new_specs,
                                          drain_timeout=drain_timeout)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    return windows, records


def canonical_answers(responses: Sequence) -> list[str]:
    """Canonical JSON rendering of each response's answer.

    The one comparison the byte-identity contract is checked with —
    shared by the determinism tests, the throughput benchmark, the
    service campaign cell and the example, so the three call sites
    cannot drift apart.
    """
    from repro.evaluation.store import canonical_json

    return [canonical_json(response.canonical_value())
            for response in responses]


def serve_concurrently(service, requests: Sequence[QueryRequest],
                       n_clients: int) -> tuple[list, float, object]:
    """Fan a workload out to concurrent clients and time the serving window.

    Splits ``requests`` into ``n_clients`` equal contiguous slices; each
    client thread submits its slice as one ``submit_many`` batch and
    blocks for the answers.  All clients start together behind a barrier,
    so the measured wall clock covers serving work only, not thread
    startup.  This is the one client pattern shared by the throughput
    benchmark, the service campaign cell and the example walkthrough.

    Parameters
    ----------
    service:
        A started :class:`~repro.service.service.QueryService`.
    requests:
        The workload; its length must be divisible by ``n_clients``.
    n_clients:
        Number of concurrent client threads.

    Returns
    -------
    tuple
        ``(responses, seconds, stats)``: the responses aligned with
        ``requests``, the serving wall-clock seconds, and a snapshot of
        ``service.stats``.
    """
    requests = list(requests)
    if n_clients < 1 or len(requests) % n_clients:
        raise ValueError(f"cannot split {len(requests)} requests evenly "
                         f"across {n_clients} clients")
    per_client = len(requests) // n_clients
    responses: list = [None] * len(requests)
    failures: list[BaseException] = []
    barrier = threading.Barrier(n_clients + 1)

    def client(worker: int) -> None:
        barrier.wait()
        lo = worker * per_client
        try:
            answers = service.submit_many(requests[lo:lo + per_client])
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            failures.append(exc)
            return
        responses[lo:lo + per_client] = answers

    threads = [threading.Thread(target=client, args=(worker,))
               for worker in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    # A swallowed client error (e.g. AdmissionError from an oversized
    # workload) would otherwise surface later as inexplicable None holes
    # in the responses; re-raise it here instead.
    if failures:
        raise failures[0]
    return responses, seconds, service.stats


def latency_percentiles(responses: Sequence, percentiles=(50, 95, 99)
                        ) -> dict[str, float]:
    """Latency percentiles (milliseconds) of a batch of responses.

    Parameters
    ----------
    responses:
        :class:`~repro.service.requests.QueryResponse` objects.
    percentiles:
        Percentile ranks to report.

    Returns
    -------
    dict
        ``{"p50_ms": ..., "p95_ms": ..., ...}`` (empty input gives zeros).
    """
    latencies = np.array([r.latency_seconds for r in responses], dtype=float)
    if latencies.size == 0:
        return {f"p{p}_ms": 0.0 for p in percentiles}
    return {f"p{p}_ms": float(np.percentile(latencies, p) * 1000.0)
            for p in percentiles}
