"""The serving gateway's wire protocol: framing, envelopes, codecs.

Everything that crosses the gateway's socket is a **frame**: a 4-byte
big-endian length prefix followed by that many bytes of UTF-8 JSON.  The
JSON document is an **envelope** — a dict carrying an explicit
``protocol_version``, an operation name, and an operation body whose
request/response payloads are the :mod:`repro.service.requests`
dataclasses rendered through the ``*_to_wire`` / ``*_from_wire`` codecs
below.  Three properties are load-bearing:

* **Exactness** — floats survive the JSON round trip bit for bit
  (Python's ``json`` uses shortest-repr encoding), so a
  :class:`~repro.service.requests.QueryResponse` decoded from the wire
  answers :meth:`~repro.service.requests.QueryResponse.canonical_value`
  byte-identically to the in-process original.  This is what lets the
  gateway benchmark gate wire answers against direct ``submit()`` calls.
* **Versioning with unknown-field tolerance** — every envelope names its
  ``protocol_version``; a peer speaking an *unknown* version is rejected
  with a typed :class:`ProtocolError`, while unknown *fields* inside a
  known version are ignored, so additive evolution never breaks old
  peers.
* **Typed failure** — malformed bytes, oversize or truncated frames,
  non-JSON payloads, unknown kinds: every way a frame can be wrong
  raises :class:`ProtocolError` with a machine-readable ``code`` (never
  a bare ``KeyError``/``ValueError``, never a hang), which is what the
  fuzz suite in ``tests/test_wire_protocol.py`` enforces.
"""

from __future__ import annotations

import json
import struct
from typing import Callable, Mapping

from repro.service.requests import (
    AceRequest,
    EffectRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    RepairRequest,
    SatisfactionRequest,
)

#: Version stamped on (and demanded of) every envelope this peer speaks.
PROTOCOL_VERSION = 1

#: Length-prefix layout: one unsigned 32-bit big-endian integer.
HEADER = struct.Struct(">I")

#: Ceiling on a single frame's payload size.  A length prefix above this
#: is rejected *before* any allocation — a hostile or corrupt prefix
#: (e.g. 4 GiB) must not make the server try to buffer it.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ErrorCode:
    """Machine-readable reasons a frame or request was rejected.

    Carried by :class:`ProtocolError` and by the ``error.code`` field of
    error envelopes, so clients can react per cause (back off on
    ``ADMISSION``, re-authenticate on ``UNAUTHORIZED``, fail over on
    ``DRAINING``) instead of parsing prose.
    """

    #: framing: prefix declares more than :data:`MAX_FRAME_BYTES`.
    OVERSIZE_FRAME = "oversize_frame"
    #: framing: stream ended mid-frame (truncated prefix or payload).
    TRUNCATED_FRAME = "truncated_frame"
    #: payload is not valid UTF-8 JSON.
    BAD_JSON = "bad_json"
    #: payload parsed but is not a well-formed envelope/body.
    BAD_ENVELOPE = "bad_envelope"
    #: envelope names a protocol version this peer does not speak.
    UNSUPPORTED_VERSION = "unsupported_version"
    #: envelope names an operation this peer does not serve.
    UNKNOWN_OP = "unknown_op"
    #: request body failed to decode into a typed request.
    BAD_REQUEST = "bad_request"
    #: missing or unrecognised API key.
    UNAUTHORIZED = "unauthorized"
    #: the tenant's request quota is exhausted.
    QUOTA_EXCEEDED = "quota_exceeded"
    #: the service's bounded in-flight queue rejected the submission.
    ADMISSION = "admission"
    #: the request names a subject no registry holds.
    UNKNOWN_SUBJECT = "unknown_subject"
    #: the gateway is draining: in-flight work settles, new work is
    #: refused with this code.
    DRAINING = "draining"
    #: unexpected server-side failure (the envelope was well-formed).
    INTERNAL = "internal"


class ProtocolError(RuntimeError):
    """A wire-level violation, carrying a typed :class:`ErrorCode`.

    Parameters
    ----------
    code:
        One of the :class:`ErrorCode` constants.
    message:
        Human-readable detail.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = str(code)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtocolError({self.code!r}, {self.args[0]!r})"


# ------------------------------------------------------------------ framing
def encode_frame(payload: bytes,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Prefix a payload with its 4-byte big-endian length.

    Raises
    ------
    ProtocolError
        With :data:`ErrorCode.OVERSIZE_FRAME` if the payload exceeds
        ``max_frame_bytes`` (refusing to *send* an oversize frame keeps
        a compliant peer from tripping the receiver's guard).
    """
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            ErrorCode.OVERSIZE_FRAME,
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame ceiling")
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrarily chopped stream.

    Sockets deliver bytes in whatever chunks the kernel felt like; feed
    every chunk in with :meth:`feed` and take complete frames out with
    :meth:`next_frame`.  The decoder validates the length prefix as soon
    as its four bytes arrive, so an oversize declaration is rejected
    before any payload is buffered, and :meth:`close` turns a stream
    that ended mid-frame into a typed truncation error instead of a
    silent partial message.

    Parameters
    ----------
    max_frame_bytes:
        Per-frame payload ceiling (see :data:`MAX_FRAME_BYTES`).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes to the reassembly buffer."""
        self._buffer.extend(data)

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a complete frame."""
        return len(self._buffer)

    def next_frame(self) -> bytes | None:
        """Pop one complete frame payload, or ``None`` if more bytes are
        needed.

        Raises
        ------
        ProtocolError
            With :data:`ErrorCode.OVERSIZE_FRAME` when the length prefix
            declares more than ``max_frame_bytes``.
        """
        if len(self._buffer) < HEADER.size:
            return None
        (length,) = HEADER.unpack_from(self._buffer)
        if length > self.max_frame_bytes:
            raise ProtocolError(
                ErrorCode.OVERSIZE_FRAME,
                f"peer declared a {length}-byte frame; ceiling is "
                f"{self.max_frame_bytes} bytes")
        if len(self._buffer) < HEADER.size + length:
            return None
        payload = bytes(self._buffer[HEADER.size:HEADER.size + length])
        del self._buffer[:HEADER.size + length]
        return payload

    def close(self) -> None:
        """Declare end-of-stream; a partial frame left in the buffer is a
        truncation.

        Raises
        ------
        ProtocolError
            With :data:`ErrorCode.TRUNCATED_FRAME` if buffered bytes
            remain.
        """
        if self._buffer:
            raise ProtocolError(
                ErrorCode.TRUNCATED_FRAME,
                f"stream ended with {len(self._buffer)} bytes of an "
                "incomplete frame")


def read_frame(recv: Callable[[int], bytes],
               max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes | None:
    """Read exactly one frame through a ``recv(n) -> bytes`` callable.

    Returns the frame payload, or ``None`` on a clean end-of-stream
    (EOF landing exactly on a frame boundary — how a peer hangs up
    politely).

    Raises
    ------
    ProtocolError
        :data:`ErrorCode.TRUNCATED_FRAME` if the stream ends mid-prefix
        or mid-payload; :data:`ErrorCode.OVERSIZE_FRAME` if the prefix
        declares more than ``max_frame_bytes``.
    """
    header = _read_exact(recv, HEADER.size, allow_clean_eof=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(
            ErrorCode.OVERSIZE_FRAME,
            f"peer declared a {length}-byte frame; ceiling is "
            f"{max_frame_bytes} bytes")
    payload = _read_exact(recv, length, allow_clean_eof=False)
    return b"" if payload is None else payload


def _read_exact(recv: Callable[[int], bytes], n: int,
                allow_clean_eof: bool) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at offset zero."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = recv(remaining)
        if not chunk:
            if not chunks and allow_clean_eof:
                return None
            got = n - remaining
            raise ProtocolError(
                ErrorCode.TRUNCATED_FRAME,
                f"stream ended after {got} of {n} expected bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------- envelopes
def encode_envelope(envelope: Mapping,
                    max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize an envelope dict into one complete frame (prefix + JSON).

    The version stamp is added here if the caller did not set one, so
    every frame on the wire is versioned by construction.
    """
    document = dict(envelope)
    document.setdefault("protocol_version", PROTOCOL_VERSION)
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return encode_frame(payload, max_frame_bytes=max_frame_bytes)


def decode_envelope(payload: bytes) -> dict:
    """Parse and validate one frame payload into an envelope dict.

    Raises
    ------
    ProtocolError
        :data:`ErrorCode.BAD_JSON` if the payload is not UTF-8 JSON;
        :data:`ErrorCode.BAD_ENVELOPE` if it is JSON but not a dict;
        :data:`ErrorCode.UNSUPPORTED_VERSION` if ``protocol_version`` is
        missing, non-integral, or not a version this peer speaks.
    """
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ErrorCode.BAD_JSON,
                            f"frame payload is not JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ProtocolError(
            ErrorCode.BAD_ENVELOPE,
            f"envelope must be an object, got {type(document).__name__}")
    version = document.get("protocol_version")
    if not isinstance(version, int) or isinstance(version, bool) \
            or version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.UNSUPPORTED_VERSION,
            f"peer speaks protocol version {version!r}; this peer "
            f"speaks {PROTOCOL_VERSION}")
    return document


def error_envelope(code: str, message: str) -> dict:
    """Build the typed error reply envelope of a failed operation."""
    return {"protocol_version": PROTOCOL_VERSION, "ok": False,
            "error": {"code": str(code), "message": str(message)}}


# ----------------------------------------------------------- request codecs
#: wire-kind tag -> request class, the decode dispatch table.
REQUEST_TYPES: dict[str, type[QueryRequest]] = {
    "ace": AceRequest,
    "predict": PredictRequest,
    "effect": EffectRequest,
    "satisfaction": SatisfactionRequest,
    "repair": RepairRequest,
}


def _pairs_to_wire(pairs) -> list[list]:
    """Tuple-of-pairs field in JSON-safe list-of-[key, value] form."""
    return [[k, v] for k, v in pairs]


def _pairs_from_wire(value, field: str, kind: str,
                     value_type: type = float) -> tuple:
    """Rebuild a tuple-of-pairs field, validating shape and types."""
    if not isinstance(value, list):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"{kind} request field {field!r} must be a list of pairs, "
            f"got {type(value).__name__}")
    pairs = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2 \
                or not isinstance(item[0], str):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"{kind} request field {field!r} holds a malformed pair: "
                f"{item!r}")
        try:
            pairs.append((item[0], value_type(item[1])))
        except (TypeError, ValueError):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"{kind} request field {field!r} pair value "
                f"{item[1]!r} is not a {value_type.__name__}") from None
    return tuple(pairs)


def _field(body: Mapping, field: str, kind: str, expected: type):
    """Fetch and type-check one required scalar field of a request body."""
    value = body.get(field)
    if not isinstance(value, expected) or (expected is not bool
                                           and isinstance(value, bool)):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"{kind} request field {field!r} must be "
            f"{expected.__name__}, got {type(value).__name__}")
    return value


def request_to_wire(request: QueryRequest) -> dict:
    """Render one typed request as its JSON-safe wire body.

    The body carries a ``kind`` tag plus the dataclass fields, with
    tuple-of-pairs fields as lists of ``[key, value]`` lists.  The codec
    is exact: :func:`request_from_wire` rebuilds an ``==``-equal
    dataclass, so item keys (and therefore canonical answers) survive
    the wire bitwise.
    """
    body: dict = {"kind": request.kind.value, "subject": request.subject}
    if isinstance(request, AceRequest):
        body.update(option=request.option, objective=request.objective)
    elif isinstance(request, PredictRequest):
        body.update(configuration=_pairs_to_wire(request.configuration),
                    objectives=list(request.objectives))
    elif isinstance(request, EffectRequest):
        body.update(objective=request.objective,
                    intervention=_pairs_to_wire(request.intervention))
    elif isinstance(request, SatisfactionRequest):
        body.update(objective=request.objective,
                    direction=request.direction,
                    threshold=request.threshold,
                    intervention=_pairs_to_wire(request.intervention))
    elif isinstance(request, RepairRequest):
        body.update(
            objectives=_pairs_to_wire(request.objectives),
            faulty_configuration=_pairs_to_wire(
                request.faulty_configuration),
            faulty_measurement=_pairs_to_wire(request.faulty_measurement),
            max_repairs=request.max_repairs)
    else:  # pragma: no cover - new request kinds must extend the codec
        raise ProtocolError(ErrorCode.BAD_REQUEST,
                            f"no wire codec for {type(request).__name__}")
    return body


def request_from_wire(body: Mapping) -> QueryRequest:
    """Rebuild a typed request from its wire body.

    Unknown fields are ignored (forward tolerance); missing or
    mis-typed known fields raise a typed :class:`ProtocolError` with
    :data:`ErrorCode.BAD_REQUEST` rather than leaking ``KeyError``.
    """
    if not isinstance(body, Mapping):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"request body must be an object, got {type(body).__name__}")
    kind = body.get("kind")
    cls = REQUEST_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ProtocolError(ErrorCode.BAD_REQUEST,
                            f"unknown request kind {kind!r}; known kinds: "
                            f"{sorted(REQUEST_TYPES)}")
    subject = _field(body, "subject", kind, str)
    if cls is AceRequest:
        return AceRequest(subject=subject,
                          option=_field(body, "option", kind, str),
                          objective=_field(body, "objective", kind, str))
    if cls is PredictRequest:
        objectives = _field(body, "objectives", kind, list)
        if not all(isinstance(o, str) for o in objectives):
            raise ProtocolError(ErrorCode.BAD_REQUEST,
                                f"{kind} request objectives must all be "
                                f"strings: {objectives!r}")
        return PredictRequest(
            subject=subject,
            configuration=_pairs_from_wire(body.get("configuration"),
                                           "configuration", kind),
            objectives=tuple(objectives))
    if cls is EffectRequest:
        return EffectRequest(
            subject=subject,
            objective=_field(body, "objective", kind, str),
            intervention=_pairs_from_wire(body.get("intervention"),
                                          "intervention", kind))
    if cls is SatisfactionRequest:
        threshold = body.get("threshold")
        if threshold is not None and (isinstance(threshold, bool)
                                      or not isinstance(threshold,
                                                        (int, float))):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"{kind} request threshold must be a number or null, "
                f"got {type(threshold).__name__}")
        return SatisfactionRequest(
            subject=subject,
            objective=_field(body, "objective", kind, str),
            direction=_field(body, "direction", kind, str),
            threshold=None if threshold is None else float(threshold),
            intervention=_pairs_from_wire(body.get("intervention"),
                                          "intervention", kind))
    max_repairs = body.get("max_repairs")
    if isinstance(max_repairs, bool) or not isinstance(max_repairs, int):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"{kind} request max_repairs must be an integer, got "
            f"{type(max_repairs).__name__}")
    return RepairRequest(
        subject=subject,
        objectives=_pairs_from_wire(body.get("objectives"), "objectives",
                                    kind, value_type=str),
        faulty_configuration=_pairs_from_wire(
            body.get("faulty_configuration"), "faulty_configuration", kind),
        faulty_measurement=_pairs_from_wire(
            body.get("faulty_measurement"), "faulty_measurement", kind),
        max_repairs=max_repairs)


# ---------------------------------------------------------- response codecs
def response_to_wire(response: QueryResponse) -> dict:
    """Render one :class:`QueryResponse` as its JSON-safe wire body.

    The answered request rides along (re-encoded through
    :func:`request_to_wire`) so the client-side response object can
    reproduce :meth:`~repro.service.requests.QueryResponse.
    canonical_value` — whose ``item`` component is derived from the
    request — byte-identically.
    """
    return {
        "request": request_to_wire(response.request),
        "subject": response.subject,
        "model_version": response.model_version,
        "value": response.value,
        "batched": response.batched,
        "batch_size": response.batch_size,
        "dispatch_index": response.dispatch_index,
        "latency_seconds": response.latency_seconds,
        "error": response.error,
    }


def response_from_wire(body: Mapping) -> QueryResponse:
    """Rebuild a :class:`QueryResponse` from its wire body.

    Unknown fields are ignored; malformed known fields raise
    :class:`ProtocolError` with :data:`ErrorCode.BAD_ENVELOPE`.
    """
    if not isinstance(body, Mapping):
        raise ProtocolError(
            ErrorCode.BAD_ENVELOPE,
            f"response body must be an object, got {type(body).__name__}")
    try:
        request = request_from_wire(body.get("request"))
    except ProtocolError as exc:
        raise ProtocolError(
            ErrorCode.BAD_ENVELOPE,
            f"response carries an undecodable request: {exc}") from None
    model_version = body.get("model_version")
    if isinstance(model_version, bool) \
            or not isinstance(model_version, int):
        raise ProtocolError(ErrorCode.BAD_ENVELOPE,
                            "response model_version must be an integer, "
                            f"got {model_version!r}")
    error = body.get("error")
    if error is not None and not isinstance(error, str):
        raise ProtocolError(ErrorCode.BAD_ENVELOPE,
                            "response error must be a string or null, "
                            f"got {type(error).__name__}")
    subject = body.get("subject")
    try:
        batch_size = int(body.get("batch_size", 1))
        dispatch_index = int(body.get("dispatch_index", 0))
        latency_seconds = float(body.get("latency_seconds", 0.0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(ErrorCode.BAD_ENVELOPE,
                            f"malformed response metadata: {exc}") from None
    return QueryResponse(
        request=request,
        subject=subject if isinstance(subject, str) else request.subject,
        model_version=model_version,
        value=body.get("value"),
        batched=bool(body.get("batched", False)),
        batch_size=batch_size,
        dispatch_index=dispatch_index,
        latency_seconds=latency_seconds,
        error=error)
