"""The concurrent query-serving layer.

Everything below :mod:`repro.core` answers one query at a time for one
caller; this package fronts the same engines for many concurrent clients:

* :mod:`repro.service.requests` — typed request/response dataclasses, one
  per public query kind (ACE, prediction, interventional effect,
  satisfaction probability, repair scan).
* :mod:`repro.service.registry` — :class:`ModelRegistry`: LRU-bounded,
  content-hash-keyed residency of fitted per-subject models, refreshed
  incrementally as new observations arrive.
* :mod:`repro.service.batcher` — :class:`RequestBatcher`: coalesces
  concurrently submitted queries of one kind against one model version
  into single batched engine calls, byte-identical to one-at-a-time
  dispatch.
* :mod:`repro.service.result_cache` — :class:`ResultCache`: per-entry
  cross-request memoization of answered queries keyed by
  ``(model_version, item_key)``, version-invalidated on refresh.
* :mod:`repro.service.service` — :class:`QueryService`: the thread-safe
  ``submit`` / ``submit_many`` facade with admission control and
  per-subject fairness.
* :mod:`repro.service.drift` — :class:`DriftDetector`: residual-shift
  detection over live observation streams, the trigger of drift-aware
  model refresh.
* :mod:`repro.service.store` — :class:`ModelStore`: persistent,
  content-addressed, versioned snapshots of fitted models (atomic
  publish, instant rollback, fail-closed loads); registries load on
  miss and publish at refresh boundaries, and the sharded tier uses
  the snapshots' op-id watermarks to compact its crash-replay journal
  down to a suffix.
* :mod:`repro.service.sharding` / :mod:`repro.service.worker` —
  :class:`ShardedQueryService`: subjects hash-partitioned across worker
  processes (each its own registry + batcher over a spawn-safe IPC
  loop), byte-identical to the single-process service for any shard
  count, with crash recovery and journal replay.
* :mod:`repro.service.workload` — deterministic mixed workloads (and
  long-horizon drifting observation streams) for tests, benchmarks and
  demos.
* :mod:`repro.service.tracing` / :mod:`repro.service.metrics` — the
  observability tier: a per-request :class:`TraceContext` threaded
  through every stage (zero-overhead when disabled, rendered as
  deterministic JSONL by :class:`TraceRecorder`), and the lock-cheap
  :class:`MetricsSnapshot` surface (queue depth, coalescing ratio,
  batch-size histogram, streaming latency percentiles) behind
  ``metrics_snapshot()`` and the gateway's ``metrics`` verb.
* :mod:`repro.service.protocol` / :mod:`repro.service.gateway` — the
  wire tier: a length-prefixed JSON protocol with versioned envelopes
  and typed :class:`ProtocolError` failures, plus
  :class:`GatewayServer` / :class:`GatewayClient` putting the services
  behind a real socket with per-tenant API keys, quotas, streaming
  ``observe()`` ingestion and graceful drain.

See ``docs/serving.md`` for the architecture narrative and
``docs/query-api.md`` for the per-query reference.
"""

from repro.service.batcher import RequestBatcher
from repro.service.drift import DriftDetector
from repro.service.gateway import (
    DrainingError,
    GatewayAuthError,
    GatewayClient,
    GatewayError,
    GatewayServer,
    GatewayStats,
    QuotaExceededError,
    Tenant,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameDecoder,
    ProtocolError,
    decode_envelope,
    encode_envelope,
    encode_frame,
    error_envelope,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from repro.service.metrics import (
    BatchSizeHistogram,
    LatencyReservoir,
    MetricsSnapshot,
    ServiceMetrics,
)
from repro.service.registry import (
    ModelEntry,
    ModelRegistry,
    UnknownSubjectError,
    unicorn_from_spec,
)
from repro.service.sharding import (
    RollingRefreshError,
    ShardedQueryService,
    ShardedServiceStats,
    registry_from_specs,
    shard_of,
)
from repro.service.result_cache import ResultCache, fresh_value
from repro.service.store import (
    ModelStore,
    canonical_spec,
    spec_key,
    subject_key,
)
from repro.service.requests import (
    AceRequest,
    EffectRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    RepairRequest,
    SatisfactionRequest,
    ServiceKind,
    repair_payload,
)
from repro.service.service import (
    AdmissionError,
    QueryService,
    ServiceClosedError,
    ServiceStats,
)
from repro.service.tracing import (
    TraceContext,
    TraceRecorder,
    Tracer,
    trace_summary,
)
from repro.service.workload import (
    canonical_answers,
    drifting_measurement_stream,
    latency_percentiles,
    long_horizon_workload,
    mixed_workload,
    serve_concurrently,
    serve_rounds,
    wire_workload,
)

__all__ = [
    "AceRequest",
    "AdmissionError",
    "BatchSizeHistogram",
    "DrainingError",
    "DriftDetector",
    "EffectRequest",
    "ErrorCode",
    "FrameDecoder",
    "GatewayAuthError",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "GatewayStats",
    "LatencyReservoir",
    "MAX_FRAME_BYTES",
    "MetricsSnapshot",
    "ModelEntry",
    "ModelRegistry",
    "ModelStore",
    "PROTOCOL_VERSION",
    "PredictRequest",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "QuotaExceededError",
    "RepairRequest",
    "RequestBatcher",
    "ResultCache",
    "RollingRefreshError",
    "SatisfactionRequest",
    "ServiceClosedError",
    "ServiceKind",
    "ServiceMetrics",
    "ServiceStats",
    "ShardedQueryService",
    "ShardedServiceStats",
    "Tenant",
    "TraceContext",
    "TraceRecorder",
    "Tracer",
    "UnknownSubjectError",
    "decode_envelope",
    "encode_envelope",
    "encode_frame",
    "error_envelope",
    "mixed_workload",
    "drifting_measurement_stream",
    "latency_percentiles",
    "long_horizon_workload",
    "read_frame",
    "registry_from_specs",
    "repair_payload",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "serve_concurrently",
    "serve_rounds",
    "shard_of",
    "spec_key",
    "subject_key",
    "trace_summary",
    "unicorn_from_spec",
    "wire_workload",
    "canonical_answers",
    "canonical_spec",
    "fresh_value",
]
