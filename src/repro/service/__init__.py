"""The concurrent query-serving layer.

Everything below :mod:`repro.core` answers one query at a time for one
caller; this package fronts the same engines for many concurrent clients:

* :mod:`repro.service.requests` — typed request/response dataclasses, one
  per public query kind (ACE, prediction, interventional effect,
  satisfaction probability, repair scan).
* :mod:`repro.service.registry` — :class:`ModelRegistry`: LRU-bounded,
  content-hash-keyed residency of fitted per-subject models, refreshed
  incrementally as new observations arrive.
* :mod:`repro.service.batcher` — :class:`RequestBatcher`: coalesces
  concurrently submitted queries of one kind against one model version
  into single batched engine calls, byte-identical to one-at-a-time
  dispatch.
* :mod:`repro.service.service` — :class:`QueryService`: the thread-safe
  ``submit`` / ``submit_many`` facade with admission control and
  per-subject fairness.
* :mod:`repro.service.workload` — deterministic mixed workloads for
  tests, benchmarks and demos.

See ``docs/serving.md`` for the architecture narrative and
``docs/query-api.md`` for the per-query reference.
"""

from repro.service.batcher import RequestBatcher
from repro.service.registry import ModelEntry, ModelRegistry, UnknownSubjectError
from repro.service.requests import (
    AceRequest,
    EffectRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    RepairRequest,
    SatisfactionRequest,
    ServiceKind,
    repair_payload,
)
from repro.service.service import (
    AdmissionError,
    QueryService,
    ServiceClosedError,
    ServiceStats,
)
from repro.service.workload import (
    canonical_answers,
    latency_percentiles,
    mixed_workload,
    serve_concurrently,
)

__all__ = [
    "AceRequest",
    "AdmissionError",
    "EffectRequest",
    "ModelEntry",
    "ModelRegistry",
    "PredictRequest",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RepairRequest",
    "RequestBatcher",
    "SatisfactionRequest",
    "ServiceClosedError",
    "ServiceKind",
    "ServiceStats",
    "UnknownSubjectError",
    "mixed_workload",
    "latency_percentiles",
    "repair_payload",
    "serve_concurrently",
    "canonical_answers",
]
