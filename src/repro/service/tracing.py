"""Per-request tracing for the serving tier.

A :class:`TraceContext` rides alongside each
:class:`~repro.service.requests.QueryRequest` from admission to
response: which tenant and subject it belongs to, which shard answered
it, how long it waited in the queue versus the batch window versus the
engine, whether the result came from cache, how many requests shared its
coalesced engine call, and how many protocol bytes carried it.  The
segments mirror the stages a request actually passes through
(``QueryService`` admission → drain → ``RequestBatcher`` dispatch →
optionally a shard worker → optionally the gateway's wire framing).

Design rules:

* **Zero overhead when disabled.**  :meth:`Tracer.begin` returns
  ``None`` when tracing is off — no allocation, no dict update, nothing
  on the hot path.  Every call site guards with ``if trace is not
  None``.  The :attr:`Tracer.contexts_created` counter exists precisely
  so tests can assert this: with tracing disabled it must stay zero
  through an entire workload.
* **Deterministic records.**  Request ids are derived from the workload
  seed tree (subject, kind, item key, occurrence index), not from
  wall-clock or object identity, so the same seeded workload replayed
  twice produces the same ids in the same order.
  :meth:`TraceRecorder.render` can strip wall-clock duration fields,
  leaving a byte-stable JSONL artifact keyed by the root seed.
* **No signature churn.**  The gateway attaches wire-level facts
  (tenant, frame bytes) via :meth:`Tracer.annotate` *before* submitting,
  keyed by request identity; ``begin()`` folds pending annotations into
  the new context.  ``QueryService.submit*`` signatures stay unchanged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.service.requests import QueryRequest

#: Trace fields holding wall-clock durations — stripped by
#: :meth:`TraceRecorder.render` when a byte-stable artifact is wanted.
WALL_CLOCK_FIELDS = (
    "queue_wait_seconds",
    "batch_wait_seconds",
    "engine_seconds",
    "cache_seconds",
    "total_seconds",
)


@dataclass
class TraceContext:
    """Everything observed about one request's trip through the service.

    Mutable on purpose: each tier fills in the fields it owns
    (``QueryService`` the queue wait, ``RequestBatcher`` the engine and
    cache segments, ``ShardedQueryService`` the shard index, the gateway
    the tenant and frame bytes).  :meth:`as_record` renders the finished
    context as a JSON-safe dict with stable key order.

    The request id is stored as its parts (``item_key`` tuple plus an
    occurrence index) and rendered on demand: formatting a nested tuple
    into a string costs microseconds, which belongs on the cold render
    path, not in :meth:`Tracer.begin` on the serving hot path.
    """

    __slots__ = (
        "tenant", "subject", "kind", "item_key", "occurrence", "shard",
        "queue_wait_seconds", "batch_wait_seconds", "engine_seconds",
        "cache_seconds", "total_seconds", "coalesce_group_size",
        "cache_hit", "batched", "frame_bytes", "error",
    )

    tenant: str
    subject: str
    kind: str
    item_key: tuple
    occurrence: int
    shard: int
    queue_wait_seconds: float
    batch_wait_seconds: float
    engine_seconds: float
    cache_seconds: float
    total_seconds: float
    coalesce_group_size: int
    cache_hit: bool
    batched: bool
    frame_bytes: int
    error: str

    @property
    def request_id(self) -> str:
        """Deterministic id: subject / kind / item key / occurrence."""
        return (f"{self.subject}/{self.kind}/{self.item_key}"
                f"#{self.occurrence}")

    def as_record(self) -> dict:
        """JSON-safe dict with deterministic key order."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "subject": self.subject,
            "kind": self.kind,
            "shard": self.shard,
            "queue_wait_seconds": self.queue_wait_seconds,
            "batch_wait_seconds": self.batch_wait_seconds,
            "engine_seconds": self.engine_seconds,
            "cache_seconds": self.cache_seconds,
            "total_seconds": self.total_seconds,
            "coalesce_group_size": self.coalesce_group_size,
            "cache_hit": self.cache_hit,
            "batched": self.batched,
            "frame_bytes": self.frame_bytes,
            "error": self.error,
        }


def _blank_context(subject: str, kind: str, item_key: tuple,
                   occurrence: int) -> TraceContext:
    """A fresh context with every segment zeroed.

    Positional construction, in ``__slots__`` order — keyword binding
    of 16 fields costs ~1 µs/context, which at serving rates is the
    difference between tracing being free and being measurable.
    """
    return TraceContext(
        "", subject, kind, item_key, occurrence, -1,  # tenant..shard
        0.0, 0.0, 0.0, 0.0, 0.0,  # queue/batch/engine/cache/total secs
        0, False, False, 0, "")  # group size, flags, frame bytes, error


class Tracer:
    """Creates, annotates and collects :class:`TraceContext` objects.

    One tracer is shared by every tier of one serving stack.  When
    ``enabled`` is False (the default), every method is a cheap no-op
    and :meth:`begin` returns ``None`` without allocating — call sites
    guard all trace work behind ``if trace is not None``, so a disabled
    tracer adds only that ``None`` check to the hot path.

    ``contexts_created`` counts every context ever built; the
    zero-overhead-when-disabled test drives a full workload with tracing
    off and asserts the counter stayed at zero.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.contexts_created = 0
        self._lock = threading.Lock()
        #: live contexts per request identity.  Workload generators may
        #: submit the *same* (frozen) request object more than once, so
        #: each identity holds a FIFO of contexts: ``begin`` appends,
        #: ``lookup`` reads the oldest unfinished, ``finish`` pops it.
        self._live: dict[int, list[TraceContext]] = {}
        self._annotations: dict[int, dict] = {}
        self._finished: list[TraceContext] = []
        self._occurrences: dict[tuple, int] = {}
        #: requests begun in bulk whose contexts have not been built yet
        #: (``id`` → ``[request, count]``).  ``begin_many`` only records
        #: the debt — the dispatcher materialises it on first touch — so
        #: 64 client threads pay one dict write per request instead of
        #: contending over context construction.
        self._deferred: dict[int, list] = {}

    # -- hot-path API -------------------------------------------------

    def _materialize_locked(self, rid: int) -> None:
        """Build the deferred contexts of one request (lock held).

        Occurrence indices are assigned here, in materialisation order;
        per identity that matches begin order because equal requests ride
        the same FIFO subject queue.  Pending pre-begin annotations fold
        into the first context, exactly as eager sequential begins would
        have folded them.
        """
        slot = self._deferred.pop(rid, None)
        if slot is None:
            return
        request, count = slot
        item_key = request.item_key_cached()
        # Every request kind leads its item key with ``kind.value``, so
        # the key alone identifies the answer; reading kind out of it
        # skips a property + enum hop per materialisation.
        kind = item_key[0]
        identity = (request.subject, item_key)
        occurrence = self._occurrences.get(identity, 0)
        self._occurrences[identity] = occurrence + count
        pending = self._annotations.pop(rid, None)
        stack = self._live.get(rid)
        if stack is None:
            stack = self._live[rid] = []
        for k in range(count):
            trace = _blank_context(request.subject, kind, item_key,
                                   occurrence + k)
            if pending is not None:
                trace.tenant = pending.get("tenant", trace.tenant)
                trace.frame_bytes = pending.get("frame_bytes",
                                                trace.frame_bytes)
                pending = None
            stack.append(trace)

    def begin(self, request: QueryRequest) -> TraceContext | None:
        """Open a context for ``request`` (``None`` when disabled).

        The request id is derived deterministically from the request's
        identity — ``(subject, kind, item_key)`` plus an occurrence
        index for repeats — never from wall-clock or memory addresses,
        so seeded replays yield identical ids.
        """
        if not self.enabled:
            return None
        item_key = request.item_key_cached()
        kind = item_key[0]  # every item key leads with ``kind.value``
        identity = (request.subject, item_key)
        trace = _blank_context(request.subject, kind, item_key, 0)
        with self._lock:
            self._materialize_locked(id(request))
            occurrence = self._occurrences.get(identity, 0)
            self._occurrences[identity] = occurrence + 1
            trace.occurrence = occurrence
            self.contexts_created += 1
            pending = self._annotations.pop(id(request), None)
            self._live.setdefault(id(request), []).append(trace)
        if pending:
            trace.tenant = pending.get("tenant", trace.tenant)
            trace.frame_bytes = pending.get("frame_bytes",
                                            trace.frame_bytes)
        return trace

    def begin_many(self, requests: Sequence[QueryRequest]) -> None:
        """Begin a slice of requests for the price of a dict write each.

        ``submit_many`` admits a client's whole slice at once; rather
        than building every context on the submitting thread (64 clients
        contending over one lock), this records how many contexts each
        request owes and lets the dispatcher materialise them on first
        touch (:meth:`claim_round`, :meth:`lookup`, …) — off the
        clients' critical path, under a single lock acquisition.
        """
        if not self.enabled:
            return
        with self._lock:
            deferred = self._deferred
            for request in requests:
                slot = deferred.get(id(request))
                if slot is None:
                    deferred[id(request)] = [request, 1]
                else:
                    slot[1] += 1
            self.contexts_created += len(requests)

    def lookup(self, request: QueryRequest) -> TraceContext | None:
        """The oldest live context for ``request``, if tracing it."""
        if not self.enabled:
            return None
        with self._lock:
            self._materialize_locked(id(request))
            stack = self._live.get(id(request))
            return stack[0] if stack else None

    def lookup_all(self, request: QueryRequest) -> tuple[TraceContext, ...]:
        """All live contexts for ``request``, oldest first.

        Workloads reuse hot request objects, so one identity can have
        several contexts in flight at once (one per occurrence); dispatch
        stages that annotate by occurrence index use this to address the
        right one.
        """
        if not self.enabled:
            return ()
        with self._lock:
            self._materialize_locked(id(request))
            return tuple(self._live.get(id(request), ()))

    def claim_round(self, requests: Sequence[QueryRequest],
                    ) -> "list[TraceContext | None]":
        """Claim the context each position of a dispatch round settles.

        One lock acquisition serves the whole round.  Each request's
        oldest outstanding context — popped from the eager live stack,
        or built here straight from its deferred :meth:`begin_many`
        debt — is retired to the finished log and returned aligned with
        ``requests``; the *k*-th appearance of a hot request object
        claims its *k*-th occurrence.  The dispatcher keeps stamping the
        returned contexts through the engine round, so a concurrent
        :meth:`drain` may briefly observe a claimed context whose
        segments are still being filled.  All ``None`` when disabled.
        """
        if not self.enabled:
            return [None] * len(requests)
        out: list[TraceContext | None] = []
        with self._lock:
            live = self._live
            deferred = self._deferred
            annotations = self._annotations
            occurrences = self._occurrences
            finished = self._finished
            for request in requests:
                rid = id(request)
                stack = live.get(rid)
                if stack:
                    # Eager ``begin`` contexts are always older than any
                    # deferred debt (``begin`` materialises first), so
                    # popping live-first keeps oldest-first order.
                    trace = stack.pop(0)
                    if not stack:
                        del live[rid]
                        annotations.pop(rid, None)
                    finished.append(trace)
                    out.append(trace)
                    continue
                slot = deferred.get(rid)
                if slot is None:
                    out.append(None)
                    continue
                item_key = request.item_key_cached()
                identity = (request.subject, item_key)
                occurrence = occurrences.get(identity, 0)
                occurrences[identity] = occurrence + 1
                trace = _blank_context(request.subject, item_key[0],
                                       item_key, occurrence)
                if slot[1] <= 1:
                    del deferred[rid]
                else:
                    slot[1] -= 1
                pending = annotations.pop(rid, None)
                if pending is not None:
                    trace.tenant = pending.get("tenant", trace.tenant)
                    trace.frame_bytes = pending.get("frame_bytes",
                                                    trace.frame_bytes)
                finished.append(trace)
                out.append(trace)
        return out

    def annotate(self, request: QueryRequest, *, tenant: str | None = None,
                 frame_bytes: int | None = None) -> None:
        """Attach wire-level facts before (or after) ``begin``.

        Lets the gateway record tenant and frame size without changing
        any ``submit`` signature: annotations posted before ``begin``
        are folded into the new context; posted after, they update the
        live context directly.  No-op when disabled.
        """
        if not self.enabled:
            return
        with self._lock:
            self._materialize_locked(id(request))
            stack = self._live.get(id(request))
            trace = stack[0] if stack else None
            if trace is None:
                slot = self._annotations.setdefault(id(request), {})
                if tenant is not None:
                    slot["tenant"] = tenant
                if frame_bytes is not None:
                    slot["frame_bytes"] = slot.get("frame_bytes",
                                                   0) + frame_bytes
                return
        if tenant is not None:
            trace.tenant = tenant
        if frame_bytes is not None:
            trace.frame_bytes += frame_bytes

    def finish(self, request: QueryRequest,
               trace: TraceContext | None = None) -> TraceContext | None:
        """Close ``request``'s context and move it to the finished log.

        Pops the oldest live context by default — the occurrence the
        caller is settling.  Error paths that still hold the exact
        context they began pass it as ``trace`` to close that one
        specifically (matched by identity).
        """
        if not self.enabled:
            return None
        with self._lock:
            self._materialize_locked(id(request))
            stack = self._live.get(id(request))
            if not stack:
                return None
            if trace is None:
                trace = stack.pop(0)
            else:
                for i, live in enumerate(stack):
                    if live is trace:
                        del stack[i]
                        break
                else:
                    return None
            if not stack:
                self._live.pop(id(request), None)
                self._annotations.pop(id(request), None)
            self._finished.append(trace)
        return trace

    # -- cold-path API ------------------------------------------------

    def finished(self) -> list[TraceContext]:
        """Finished contexts in completion order (a copy)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[TraceContext]:
        """Remove and return all finished contexts."""
        with self._lock:
            out = self._finished
            self._finished = []
            return out

    def reset(self) -> None:
        """Forget all live and finished contexts and occurrence counts."""
        with self._lock:
            self._live.clear()
            self._annotations.clear()
            self._finished.clear()
            self._occurrences.clear()
            self._deferred.clear()


class TraceRecorder:
    """Renders finished traces as deterministic JSONL artifacts.

    A trace file is keyed by the workload's root seed: the header line
    records the seed and record count, then one JSON object per request
    with sorted keys.  With ``include_wall_clock=False`` (the default
    for committed artifacts) the duration fields in
    :data:`WALL_CLOCK_FIELDS` are dropped, so two replays of the same
    seeded workload through the deterministic dispatch path produce
    byte-identical files.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def render(self, traces: Iterable[TraceContext | Mapping], *,
               include_wall_clock: bool = False) -> str:
        """The JSONL text for ``traces`` (header line + one per trace)."""
        records = []
        for trace in traces:
            record = (dict(trace) if isinstance(trace, Mapping)
                      else trace.as_record())
            if not include_wall_clock:
                for clock_field in WALL_CLOCK_FIELDS:
                    record.pop(clock_field, None)
            records.append(record)
        lines = [json.dumps({"root_seed": self.root_seed,
                             "records": len(records)}, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in records)
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path,
              traces: Iterable[TraceContext | Mapping], *,
              include_wall_clock: bool = False) -> Path:
        """Write :meth:`render` output to ``path`` and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            self.render(traces, include_wall_clock=include_wall_clock),
            encoding="utf-8")
        return target

    @staticmethod
    def load(path: str | Path) -> tuple[dict, list[dict]]:
        """Read a trace file back as ``(header, records)``."""
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(lines[0])
        return header, [json.loads(line) for line in lines[1:] if line]


def trace_summary(traces: Sequence[TraceContext]) -> dict:
    """Aggregate a batch of finished traces into headline numbers.

    Returns request count, cache-hit rate, mean coalesce group size and
    the share of requests that rode a batched engine call — the quick
    glance the observability docs walk through.
    """
    if not traces:
        return {"requests": 0, "cache_hit_rate": 0.0,
                "mean_coalesce_group": 0.0, "batched_share": 0.0}
    n = len(traces)
    hits = sum(1 for t in traces if t.cache_hit)
    grouped = [t.coalesce_group_size for t in traces
               if t.coalesce_group_size > 0]
    batched = sum(1 for t in traces if t.batched)
    return {
        "requests": n,
        "cache_hit_rate": hits / n,
        "mean_coalesce_group": (sum(grouped) / len(grouped)
                                if grouped else 0.0),
        "batched_share": batched / n,
    }
