"""The model registry: per-subject fitted models behind the query service.

A production deployment serves queries for many *subjects* — systems (or
system × environment combinations) each with their own fitted causal
performance model.  :class:`ModelRegistry` keeps those models:

* **LRU-bounded** — at most ``capacity`` fitted models stay resident; the
  least-recently-used entry is evicted when a new subject is fitted (an
  eviction drops the model, not the subject: a later query re-fits it).
* **Content-hash keyed** — a subject fitted from a spec is keyed by the
  SHA-256 hash of the spec's canonical JSON (the same
  :func:`~repro.evaluation.store.content_hash` the campaign artifact store
  uses), so equal specs resolve to the same entry and never fit twice.
* **Incrementally refreshed** — :meth:`ModelRegistry.observe` appends new
  measurements and routes through :meth:`repro.core.unicorn.Unicorn.learn`,
  whose incremental path (PR 1) updates the learner's structure in place
  and refreshes the existing engine instead of rebuilding it; every refresh
  bumps the entry's ``version`` so in-flight batches never mix model states.

Entries carry a reentrant lock; the query service serializes engine calls
and refreshes per entry through it (the engine's internal caches are not
thread-safe), while distinct subjects proceed independently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.evaluation.store import content_hash
from repro.inference.engine import CausalInferenceEngine
from repro.systems.base import Measurement
from repro.systems.registry import get_system


class UnknownSubjectError(KeyError):
    """Raised when a request names a subject the registry does not hold."""


class ModelEntry:
    """One resident fitted model: the engine plus its maintenance handles.

    Parameters
    ----------
    key:
        Registry key (subject name or spec content hash).
    unicorn:
        The :class:`Unicorn` loop that owns the model; ``None`` for adopted
        engines that cannot be refreshed.
    state:
        The loop state holding measurements, learned model and engine.
    engine:
        The query engine; defaults to ``state.engine``.
    """

    def __init__(self, key: str, unicorn: Unicorn | None,
                 state: LoopState | None,
                 engine: CausalInferenceEngine | None = None) -> None:
        self.key = key
        self.unicorn = unicorn
        self.state = state
        self._engine = engine
        self._version = 0
        #: serializes engine queries and refreshes for this entry.
        self.lock = threading.RLock()
        self.hits = 0

    @property
    def version(self) -> int:
        """Model version stamped on responses served from this entry.

        Registered entries count their own :meth:`ModelRegistry.observe`
        refreshes; adopted entries mirror the engine's
        :attr:`~repro.inference.engine.CausalInferenceEngine.model_version`
        so a refresh of a shared engine is still visible in response
        metadata.
        """
        if self.unicorn is None and self._engine is not None:
            return self._engine.model_version
        return self._version

    def bump_version(self) -> int:
        """Advance and return the entry's own refresh counter."""
        self._version += 1
        return self._version

    @property
    def engine(self) -> CausalInferenceEngine:
        """The current query engine (tracks ``state.engine`` across
        refreshes, which may replace the engine object on a cold relearn).

        Raises
        ------
        UnknownSubjectError
            If the entry holds no fitted engine (never fitted).
        """
        engine = self._engine
        if self.state is not None and self.state.engine is not None:
            engine = self.state.engine
        if engine is None:
            raise UnknownSubjectError(
                f"registry entry {self.key!r} holds no fitted engine")
        return engine

    @property
    def n_measurements(self) -> int:
        """Number of measurements backing the current model (0 if adopted)."""
        return self.state.samples_used if self.state is not None else 0


class ModelRegistry:
    """LRU-bounded, content-hash-keyed store of fitted subject models.

    Parameters
    ----------
    capacity:
        Maximum number of resident fitted models; the least-recently-used
        entry is evicted beyond it.
    use_batched:
        Whether models fitted by :meth:`get_or_fit` route queries through
        the batched evaluator; ``False`` pins every fitted engine to the
        scalar reference oracle (the differential-testing fallback).
    """

    def __init__(self, capacity: int = 8, use_batched: bool = True) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = int(capacity)
        self.use_batched = bool(use_batched)
        self._entries: OrderedDict[str, ModelEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    # ---------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subject: str) -> bool:
        return subject in self._entries

    def subjects(self) -> list[str]:
        """Keys of every resident entry, least-recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, subject: str) -> ModelEntry:
        """Resident entry for ``subject``, marking it most-recently used.

        Parameters
        ----------
        subject:
            A name passed to :meth:`register` / :meth:`adopt`, or the spec
            hash returned by :meth:`get_or_fit`.

        Returns
        -------
        ModelEntry

        Raises
        ------
        UnknownSubjectError
            If no entry with that key is resident.
        """
        with self._lock:
            entry = self._entries.get(subject)
            if entry is None:
                raise UnknownSubjectError(
                    f"unknown subject {subject!r}; resident subjects: "
                    f"{list(self._entries)}")
            self._entries.move_to_end(subject)
            entry.hits += 1
            return entry

    # ------------------------------------------------------------ population
    def _insert(self, key: str, entry: ModelEntry,
                keep_existing: bool = False) -> ModelEntry:
        """Install ``entry`` under ``key``, evicting past ``capacity``.

        With ``keep_existing`` the first resident entry wins and is
        returned instead — the atomic resolution of a fit race, so every
        caller of one key shares one (version-isolated) model.
        """
        with self._lock:
            if keep_existing:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    existing.hits += 1
                    return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def register(self, subject: str, unicorn: Unicorn,
                 state: LoopState | None = None) -> ModelEntry:
        """Fit (if needed) and install a model under an explicit name.

        Parameters
        ----------
        subject:
            Registry key the entry will be addressed by.
        unicorn:
            The loop machinery owning the model.
        state:
            A fitted loop state; when ``None`` (or not yet fitted),
            :meth:`Unicorn.fit` runs first.

        Returns
        -------
        ModelEntry
            The resident entry (possibly evicting the LRU entry).
        """
        if state is None or state.engine is None:
            state = unicorn.fit(state.measurements if state else ())
        return self._insert(subject, ModelEntry(subject, unicorn, state))

    def adopt(self, subject: str, engine: CausalInferenceEngine
              ) -> ModelEntry:
        """Install a pre-built engine that the registry will not refresh.

        Useful for serving a model fitted elsewhere (e.g. a ground-truth
        structure in benchmarks); :meth:`observe` raises for such entries.

        The adopting entry serializes *its own* queries through its lock,
        but cannot see locks of other owners: if the engine is still
        reachable elsewhere (another registry entry, an active loop), the
        caller must guarantee it is not refreshed concurrently with
        adopted-entry traffic.  The adopted entry's ``version`` mirrors
        ``engine.model_version`` so refreshes done elsewhere at least
        remain visible in response metadata.
        """
        return self._insert(subject, ModelEntry(subject, None, None,
                                                engine=engine))

    def get_or_fit(self, spec: Mapping[str, object]) -> ModelEntry:
        """Resolve a subject *spec* to a resident entry, fitting on a miss.

        Parameters
        ----------
        spec:
            JSON-serializable description of the subject:
            ``system`` (required, a :func:`repro.systems.registry.get_system`
            name), and optionally ``hardware``, ``n_samples`` (default 60),
            ``seed`` (default 0), ``max_condition_size`` (default 1) and
            ``relevant_options``.  The canonical JSON of this mapping is
            hashed into the registry key, so equal specs share one entry.

        Returns
        -------
        ModelEntry
            The (possibly freshly fitted) entry; its ``key`` is the spec's
            content hash.

        Raises
        ------
        KeyError
            If ``spec`` lacks ``"system"`` or names an unknown system.
        """
        spec = dict(spec)
        if "system" not in spec:
            raise KeyError("subject spec needs a 'system' name")
        key = content_hash(spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                return entry
        system = get_system(str(spec["system"]),
                            hardware=spec.get("hardware"))
        n_samples = int(spec.get("n_samples", 60))
        config = UnicornConfig(
            initial_samples=n_samples, budget=n_samples,
            seed=int(spec.get("seed", 0)),
            max_condition_size=int(spec.get("max_condition_size", 1)),
            relevant_options=spec.get("relevant_options"),
            batched_queries=self.use_batched)
        unicorn = Unicorn(system, config)
        state = unicorn.fit()
        # The fit ran outside the lock; a concurrent get_or_fit of the same
        # spec may have won the race.  keep_existing resolves it atomically:
        # the first resident entry wins and the redundant fit is discarded.
        return self._insert(key, ModelEntry(key, unicorn, state),
                            keep_existing=True)

    # --------------------------------------------------------------- refresh
    def observe(self, subject: str,
                measurements: Sequence[Measurement]) -> int:
        """Fold new measurements into a subject's model incrementally.

        Appends the measurements to the entry's loop state and re-learns
        through :meth:`Unicorn.learn`, which routes repeat calls through the
        PR 1 incremental path: the dataset grows in place (a new data
        epoch), discovery warm-starts from the previous structure and the
        existing engine is refreshed rather than rebuilt.  The entry's
        ``version`` is bumped under its lock, so concurrent query batches
        either complete against the old model or start against the new one
        — never a mix.

        Parameters
        ----------
        subject:
            Registry key of the entry to refresh.
        measurements:
            New :class:`~repro.systems.base.Measurement` objects.

        Returns
        -------
        int
            The entry's new version.

        Raises
        ------
        UnknownSubjectError
            If the subject is not resident, or was adopted without
            maintenance handles and therefore cannot be refreshed.
        """
        entry = self.get(subject)
        if entry.unicorn is None or entry.state is None:
            raise UnknownSubjectError(
                f"subject {subject!r} was adopted without a Unicorn loop "
                "and cannot be refreshed")
        with entry.lock:
            entry.state.measurements.extend(measurements)
            entry.unicorn.learn(entry.state)
            return entry.bump_version()
