"""The model registry: per-subject fitted models behind the query service.

A production deployment serves queries for many *subjects* — systems (or
system × environment combinations) each with their own fitted causal
performance model.  :class:`ModelRegistry` keeps those models:

* **LRU-bounded** — at most ``capacity`` fitted models stay resident; the
  least-recently-used entry is evicted when a new subject is fitted (an
  eviction drops the model, not the subject: a later query re-fits it).
* **Content-hash keyed** — a subject fitted from a spec is keyed by the
  SHA-256 hash of the spec's canonical JSON (the same
  :func:`~repro.evaluation.store.content_hash` the campaign artifact store
  uses), so equal specs resolve to the same entry and never fit twice.
* **Incrementally refreshed** — :meth:`ModelRegistry.observe` appends new
  measurements and routes through :meth:`repro.core.unicorn.Unicorn.learn`,
  whose incremental path (PR 1) updates the learner's structure in place
  and refreshes the existing engine instead of rebuilding it; every refresh
  bumps the entry's ``version`` so in-flight batches never mix model states.
* **Drift-aware** — with a ``drift_threshold`` set, :meth:`observe` no
  longer relearns on every batch: observations buffer per entry while a
  :class:`~repro.service.drift.DriftDetector` watches the prediction
  residuals of the stream, and the (incremental) relearn runs only when
  the stream has actually shifted — optionally on a background thread
  (``refresh_async=True``) so the observing caller never waits out a
  relearn.  Refresh decisions are a deterministic function of the
  observation stream, which is what lets sharded replicas stay
  byte-identical.

Entries carry a reentrant lock; the query service serializes engine calls
and refreshes per entry through it (the engine's internal caches are not
thread-safe), while distinct subjects proceed independently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.discovery.pipeline import LearnedModel
from repro.inference.engine import CausalInferenceEngine
from repro.scm.fitting import FittedPerformanceModel
from repro.service.drift import DriftDetector
from repro.service.result_cache import ResultCache
from repro.service.store import (
    ModelStore,
    canonical_spec,
    measurements_from_document,
    snapshot_document,
    spec_key,
    subject_key,
)
from repro.systems.base import Measurement
from repro.systems.registry import get_system


def unicorn_from_spec(spec: Mapping[str, object],
                      use_batched: bool = True) -> Unicorn:
    """Build the :class:`Unicorn` loop a subject *spec* describes.

    The one spec-to-model recipe shared by :meth:`ModelRegistry.get_or_fit`,
    :meth:`ModelRegistry.register_spec` and the sharded tier's worker
    processes — equal specs always produce equal (seeded) models, no matter
    which process fits them.

    Parameters
    ----------
    spec:
        JSON-serializable subject description; see
        :meth:`ModelRegistry.get_or_fit` for the recognised keys.
    use_batched:
        Whether the fitted engine routes queries through the batched
        evaluator (``False`` pins the scalar reference oracle).

    Raises
    ------
    KeyError
        If ``spec`` lacks ``"system"`` or names an unknown system.
    """
    spec = dict(spec)
    if "system" not in spec:
        raise KeyError("subject spec needs a 'system' name")
    system = get_system(str(spec["system"]), hardware=spec.get("hardware"))
    n_samples = int(spec.get("n_samples", 60))
    config = UnicornConfig(
        initial_samples=n_samples, budget=n_samples,
        seed=int(spec.get("seed", 0)),
        max_condition_size=int(spec.get("max_condition_size", 1)),
        relevant_options=spec.get("relevant_options"),
        batched_queries=use_batched)
    return Unicorn(system, config)


class UnknownSubjectError(KeyError):
    """Raised when a request names a subject the registry does not hold."""


class ModelEntry:
    """One resident fitted model: the engine plus its maintenance handles.

    Parameters
    ----------
    key:
        Registry key (subject name or spec content hash).
    unicorn:
        The :class:`Unicorn` loop that owns the model; ``None`` for adopted
        engines that cannot be refreshed.
    state:
        The loop state holding measurements, learned model and engine.
    engine:
        The query engine; defaults to ``state.engine``.
    """

    def __init__(self, key: str, unicorn: Unicorn | None,
                 state: LoopState | None,
                 engine: CausalInferenceEngine | None = None) -> None:
        self.key = key
        self.unicorn = unicorn
        self.state = state
        self._engine = engine
        self._version = 0
        #: serializes engine queries and refreshes for this entry.
        self.lock = threading.RLock()
        self.hits = 0
        #: observations buffered since the last refresh (drift-aware mode).
        self.pending: list[Measurement] = []
        #: lazily created residual-drift detector (drift-aware mode only).
        self.drift: DriftDetector | None = None
        #: completion event of the most recently triggered asynchronous
        #: refresh; the next observe waits on it, which pins the refresh
        #: deterministically between two observation batches.
        self.refresh_event: threading.Event | None = None
        #: serializes whole observe calls (wait-for-refresh handshake +
        #: scoring + trigger) so concurrent observers of one subject see
        #: a well-ordered stream; never held by the refresh thread, so
        #: waiting on ``refresh_event`` under it cannot deadlock.
        self.observe_lock = threading.Lock()
        #: cross-request answer memo, installed by the owning registry
        #: (``None`` when result caching is disabled).
        self.result_cache: ResultCache | None = None
        #: canonical spec the entry was fitted from, and the store key its
        #: snapshots publish under; ``None`` for entries that are not
        #: store-backed (explicit :meth:`ModelRegistry.register` /
        #: :meth:`ModelRegistry.adopt`, or no store configured).
        self.spec: dict | None = None
        self.store_key: str | None = None
        #: highest journal op id whose measurements this entry has absorbed
        #: (folded into the model or buffered in ``pending``); replayed ops
        #: at or below it are skipped, which makes journal replay after a
        #: crash idempotent.
        self.applied_op_id = 0
        #: op-id watermark of the last durable snapshot: every observation
        #: at or below it is *folded* into the persisted model, so the
        #: sharded tier may compact its journal up to this point.
        self.snapshot_op_id = 0
        #: observe folds since the last published snapshot (eager mode's
        #: ``snapshot_every`` throttle counter).
        self.folds_since_snapshot = 0

    @property
    def version(self) -> int:
        """Model version stamped on responses served from this entry.

        Registered entries count their own :meth:`ModelRegistry.observe`
        refreshes; adopted entries mirror the engine's
        :attr:`~repro.inference.engine.CausalInferenceEngine.model_version`
        so a refresh of a shared engine is still visible in response
        metadata.
        """
        if self.unicorn is None and self._engine is not None:
            return self._engine.model_version
        return self._version

    def bump_version(self) -> int:
        """Advance and return the entry's own refresh counter."""
        self._version += 1
        return self._version

    @property
    def engine(self) -> CausalInferenceEngine:
        """The current query engine (tracks ``state.engine`` across
        refreshes, which may replace the engine object on a cold relearn).

        Raises
        ------
        UnknownSubjectError
            If the entry holds no fitted engine (never fitted).
        """
        engine = self._engine
        if self.state is not None and self.state.engine is not None:
            engine = self.state.engine
        if engine is None:
            raise UnknownSubjectError(
                f"registry entry {self.key!r} holds no fitted engine")
        return engine

    @property
    def n_measurements(self) -> int:
        """Number of measurements backing the current model (0 if adopted)."""
        return self.state.samples_used if self.state is not None else 0


class ModelRegistry:
    """LRU-bounded, content-hash-keyed store of fitted subject models.

    Parameters
    ----------
    capacity:
        Maximum number of resident fitted models; the least-recently-used
        entry is evicted beyond it.
    use_batched:
        Whether models fitted by :meth:`get_or_fit` route queries through
        the batched evaluator; ``False`` pins every fitted engine to the
        scalar reference oracle (the differential-testing fallback).
    drift_threshold:
        ``None`` (the default) keeps the eager PR 4 semantics: every
        :meth:`observe` relearns immediately.  A positive float switches
        to drift-aware refresh: observations buffer per entry and the
        relearn runs only when the entry's
        :class:`~repro.service.drift.DriftDetector` scores the stream at
        or above this threshold.
    drift_min_window:
        Minimum buffered observations before a drift refresh may trigger.
    refresh_async:
        Run drift-triggered relearns on a background thread instead of the
        observing caller's thread.  Queries against the refreshing subject
        serialize behind the entry lock (version isolation); other
        subjects are unaffected.  Call :meth:`quiesce` to wait for
        outstanding refreshes at a deterministic point.
    result_cache_size:
        Capacity of the per-entry cross-request
        :class:`~repro.service.result_cache.ResultCache` (answers keyed by
        ``(model_version, item_key)``).  ``0`` or ``None`` disables result
        caching — the mode throughput benchmarks use so repeated identical
        scans measure engine work rather than cache lookups.
    store:
        A :class:`~repro.service.store.ModelStore` (or a path to create one
        at) backing spec-fitted entries with durable snapshots: fits check
        the store before running (*load-on-miss* — a hit restores the
        fitted model byte-identically with no CI tests and no
        least-squares), and refreshes publish a fresh snapshot at each
        refresh boundary.  ``None`` (the default) keeps the registry
        purely in-memory.
    snapshot_every:
        In eager mode (``drift_threshold=None``) every :meth:`observe`
        relearns, and publishing a full snapshot per fold would make
        durability cost quadratic over a long stream; this throttle
        publishes every ``snapshot_every``-th fold instead (default 1 =
        every fold).  Drift-aware refreshes always publish — they already
        amortise over the buffered window.
    """

    def __init__(self, capacity: int = 8, use_batched: bool = True,
                 drift_threshold: float | None = None,
                 drift_min_window: int = 4,
                 refresh_async: bool = False,
                 result_cache_size: int | None = 256,
                 store: "ModelStore | str | None" = None,
                 snapshot_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = int(capacity)
        self.use_batched = bool(use_batched)
        self.drift_threshold = (None if drift_threshold is None
                                else float(drift_threshold))
        self.drift_min_window = int(drift_min_window)
        self.refresh_async = bool(refresh_async)
        self.result_cache_size = int(result_cache_size or 0)
        if store is None or isinstance(store, ModelStore):
            self.store = store
        else:
            self.store = ModelStore(store)
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = int(snapshot_every)
        self._entries: OrderedDict[str, ModelEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._refresh_threads: list[threading.Thread] = []
        self.evictions = 0
        #: relearns actually performed through :meth:`observe`.
        self.refreshes = 0
        #: observe batches absorbed without a relearn (drift below threshold).
        self.refreshes_skipped = 0
        #: entries that still held unfolded ``pending`` observations at
        #: eviction time; each one is flushed (folded + snapshotted) before
        #: the entry is dropped, so the counter counts saves, not losses.
        self.evicted_with_pending = 0
        #: fits avoided by restoring a store snapshot (load-on-miss hits).
        self.store_loads = 0
        #: durable snapshots published (base fits + refresh boundaries).
        self.store_publishes = 0

    # ---------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subject: str) -> bool:
        return subject in self._entries

    def subjects(self) -> list[str]:
        """Keys of every resident entry, least-recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, subject: str) -> ModelEntry:
        """Resident entry for ``subject``, marking it most-recently used.

        Parameters
        ----------
        subject:
            A name passed to :meth:`register` / :meth:`adopt`, or the spec
            hash returned by :meth:`get_or_fit`.

        Returns
        -------
        ModelEntry

        Raises
        ------
        UnknownSubjectError
            If no entry with that key is resident.
        """
        with self._lock:
            entry = self._entries.get(subject)
            if entry is None:
                raise UnknownSubjectError(
                    f"unknown subject {subject!r}; resident subjects: "
                    f"{list(self._entries)}")
            self._entries.move_to_end(subject)
            entry.hits += 1
            return entry

    # ------------------------------------------------------------ population
    def _insert(self, key: str, entry: ModelEntry,
                keep_existing: bool = False) -> ModelEntry:
        """Install ``entry`` under ``key``, evicting past ``capacity``.

        With ``keep_existing`` the first resident entry wins and is
        returned instead — the atomic resolution of a fit race, so every
        caller of one key shares one (version-isolated) model.

        Evicted entries are flushed *after* the registry lock is released:
        an entry with buffered ``pending`` observations folds and persists
        them first (see :meth:`_flush_evicted`), so eviction never discards
        observations the model has acknowledged.  Flushing outside
        ``self._lock`` matters — the flush takes the victim's entry lock,
        and the asynchronous refresh path acquires ``self._lock`` *while
        holding* an entry lock, so flushing under ``self._lock`` could
        deadlock on lock-order inversion.
        """
        if self.result_cache_size and entry.result_cache is None:
            entry.result_cache = ResultCache(self.result_cache_size)
        evicted: list[ModelEntry] = []
        with self._lock:
            if keep_existing:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    existing.hits += 1
                    return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                _, victim = self._entries.popitem(last=False)
                self.evictions += 1
                evicted.append(victim)
        for victim in evicted:
            self._flush_evicted(victim)
        return entry

    def _flush_evicted(self, entry: ModelEntry) -> None:
        """Fold (and persist) an evicted entry's buffered observations.

        The old eviction path dropped the whole entry object, taking any
        un-relearned ``pending`` drift buffer with it — observations the
        service had already acknowledged to clients simply vanished.  Now
        the buffer is folded through a final refresh (which also publishes
        a durable snapshot when the entry is store-backed) before the
        entry is garbage.  Waits out any in-flight asynchronous refresh
        first so the fold sees a settled model.
        """
        event = entry.refresh_event
        if event is not None:
            event.wait()
        with entry.observe_lock, entry.lock:
            if not entry.pending:
                return
            self.evicted_with_pending += 1
            if entry.unicorn is None or entry.state is None:
                return  # pragma: no cover - adopted entries never buffer
            folded = list(entry.pending)
            entry.pending.clear()
            self._refresh_entry(entry, folded,
                                covered_op_id=entry.applied_op_id)

    def register(self, subject: str, unicorn: Unicorn,
                 state: LoopState | None = None) -> ModelEntry:
        """Fit (if needed) and install a model under an explicit name.

        Parameters
        ----------
        subject:
            Registry key the entry will be addressed by.
        unicorn:
            The loop machinery owning the model.
        state:
            A fitted loop state; when ``None`` (or not yet fitted),
            :meth:`Unicorn.fit` runs first.

        Returns
        -------
        ModelEntry
            The resident entry (possibly evicting the LRU entry).
        """
        if state is None or state.engine is None:
            state = unicorn.fit(state.measurements if state else ())
        return self._insert(subject, ModelEntry(subject, unicorn, state))

    def adopt(self, subject: str, engine: CausalInferenceEngine
              ) -> ModelEntry:
        """Install a pre-built engine that the registry will not refresh.

        Useful for serving a model fitted elsewhere (e.g. a ground-truth
        structure in benchmarks); :meth:`observe` raises for such entries.

        The adopting entry serializes *its own* queries through its lock,
        but cannot see locks of other owners: if the engine is still
        reachable elsewhere (another registry entry, an active loop), the
        caller must guarantee it is not refreshed concurrently with
        adopted-entry traffic.  The adopted entry's ``version`` mirrors
        ``engine.model_version`` so refreshes done elsewhere at least
        remain visible in response metadata.
        """
        return self._insert(subject, ModelEntry(subject, None, None,
                                                engine=engine))

    def get_or_fit(self, spec: Mapping[str, object]) -> ModelEntry:
        """Resolve a subject *spec* to a resident entry, fitting on a miss.

        Parameters
        ----------
        spec:
            JSON-serializable description of the subject:
            ``system`` (required, a :func:`repro.systems.registry.get_system`
            name), and optionally ``hardware``, ``n_samples`` (default 60),
            ``seed`` (default 0), ``max_condition_size`` (default 1) and
            ``relevant_options``.  The spec is canonicalised first —
            key order, tuple-versus-list spelling and explicitly spelled
            defaults (``seed=0``, ``n_samples=60``, ...) are all erased —
            and the canonical form is hashed into the registry key, so
            *equal-meaning* specs share one entry and never fit twice.

        Returns
        -------
        ModelEntry
            The (possibly freshly fitted) entry; its ``key`` is the
            canonical spec's content hash.  With a ``store`` configured, a
            miss first tries to restore the latest durable snapshot
            (skipping the fit entirely) and a fresh fit publishes its base
            snapshot.

        Raises
        ------
        KeyError
            If ``spec`` lacks ``"system"`` or names an unknown system.
        """
        spec = dict(spec)
        if "system" not in spec:
            raise KeyError("subject spec needs a 'system' name")
        key = spec_key(spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                return entry
        entry = self._restore_from_store(key, spec, store_key=key)
        if entry is None:
            unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
            state = unicorn.fit()
            entry = ModelEntry(key, unicorn, state)
            self._bind_store(entry, spec, store_key=key)
            self._publish_entry(entry, covered_op_id=0)
        # The fit ran outside the lock; a concurrent get_or_fit of the same
        # spec may have won the race.  keep_existing resolves it atomically:
        # the first resident entry wins and the redundant fit is discarded.
        return self._insert(key, entry, keep_existing=True)

    def register_spec(self, subject: str,
                      spec: Mapping[str, object]) -> ModelEntry:
        """Fit a subject from a spec and install it under an explicit name.

        The spec-addressed sibling of :meth:`register`, and the one entry
        point the sharded tier's workers use: because the fit is a pure
        function of the spec (see :func:`unicorn_from_spec`), every worker
        that registers the same ``(subject, spec)`` pair holds a
        byte-identical model — the foundation of the sharding
        determinism contract.

        Parameters
        ----------
        subject:
            Registry key the entry will be addressed by.
        spec:
            Subject description; see :meth:`get_or_fit`.

        Returns
        -------
        ModelEntry
            The resident entry — restored from the store's latest snapshot
            when one exists for this ``(subject, spec)`` pair (the worker
            cold-start fast path: no CI tests, no least-squares), freshly
            fitted otherwise (publishing the base snapshot).
        """
        key = subject_key(subject, spec)
        entry = self._restore_from_store(subject, spec, store_key=key)
        if entry is None:
            unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
            entry = ModelEntry(subject, unicorn, unicorn.fit())
            self._bind_store(entry, spec, store_key=key)
            self._publish_entry(entry, covered_op_id=0)
        return self._insert(subject, entry)

    def upgrade_spec(self, subject: str,
                     spec: Mapping[str, object]) -> ModelEntry:
        """Fit a subject from a spec *fresh*, never restoring from the store.

        The rolling-refresh sibling of :meth:`register_spec`: a model
        upgrade must produce exactly the entry a cold fleet fitted
        directly on the new spec would hold — version 0, no inherited
        observation history — so the store is only *written* (the base
        snapshot publishes under the new ``(subject, spec)`` key), never
        read.  Restoring here would resurrect whatever an earlier
        generation (or a previously rolled-back upgrade attempt) left
        under the same key and break the byte-identity contract.

        Parameters
        ----------
        subject:
            Registry key the upgraded entry will be addressed by; an
            existing resident entry under this name is replaced.
        spec:
            The new subject description; see :meth:`get_or_fit`.
        """
        key = subject_key(subject, spec)
        unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
        entry = ModelEntry(subject, unicorn, unicorn.fit())
        self._bind_store(entry, spec, store_key=key)
        self._publish_entry(entry, covered_op_id=0)
        return self._insert(subject, entry)

    # ----------------------------------------------------------- persistence
    def _bind_store(self, entry: ModelEntry, spec: Mapping[str, object],
                    store_key: str) -> None:
        """Attach snapshot addressing to a freshly fitted entry."""
        entry.spec = canonical_spec(spec)
        if self.store is not None:
            entry.store_key = store_key

    def _publish_entry(self, entry: ModelEntry, covered_op_id: int) -> None:
        """Publish a durable snapshot of ``entry`` if it is store-backed.

        Caller holds the entry lock (or exclusively owns the entry, as at
        fit time) and guarantees the refresh-boundary invariant: every
        observation up to ``covered_op_id`` is folded into the model and
        ``entry.pending`` is empty.
        """
        if self.store is None or entry.store_key is None:
            return
        doc = snapshot_document(entry, entry.spec, subject=entry.key,
                                applied_op_id=covered_op_id)
        self.store.publish(entry.store_key, doc)
        entry.snapshot_op_id = int(covered_op_id)
        entry.folds_since_snapshot = 0
        self.store_publishes += 1

    def _restore_from_store(self, key: str, spec: Mapping[str, object],
                            store_key: str) -> ModelEntry | None:
        """Rebuild a resident entry from the store's latest snapshot.

        Returns ``None`` — and the caller falls back to a clean fit — when
        no store is configured, no snapshot exists, the snapshot fails to
        parse, or its recorded ``spec_hash`` disagrees with the requested
        spec (a content-hash collision guard and a schema-drift guard in
        one).
        """
        if self.store is None:
            return None
        doc = self.store.load(store_key)
        if doc is None or doc.get("spec_hash") != spec_key(spec):
            return None
        try:
            entry = self._entry_from_snapshot(key, spec, doc)
        except (KeyError, TypeError, ValueError):
            # Fail closed on any malformed-document shape the store's own
            # format check could not catch; the caller refits from the spec.
            return None
        self._bind_store(entry, spec, store_key=store_key)
        self.store_loads += 1
        return entry

    def _entry_from_snapshot(self, key: str, spec: Mapping[str, object],
                             doc: dict) -> ModelEntry:
        """Materialise a fitted entry from a snapshot document.

        The expensive pipeline is skipped entirely: the learned structure,
        dataset and decision trace come back through
        :meth:`~repro.discovery.pipeline.LearnedModel.from_dict`, the
        fitted equations through
        :meth:`~repro.scm.fitting.FittedPerformanceModel.from_dict`
        (bitwise, via the array codec), and the engine adopts them as
        ``prefitted`` — so the reload performs no CI test and no
        least-squares solve, yet answers queries byte-identically to the
        process that published the snapshot.  Later refreshes behave
        exactly as on a continuously running entry: the restored decision
        trace drives the learner's warm-start path and the restored drift
        baseline reproduces the refresh schedule.
        """
        unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
        learned = LearnedModel.from_dict(doc["learned"], unicorn.constraints)
        fitted = FittedPerformanceModel.from_dict(doc["fitted"], learned.data)
        engine = CausalInferenceEngine(
            learned, unicorn.domains,
            top_k_paths=unicorn.config.top_k_paths,
            max_contexts=unicorn.config.max_contexts,
            batched=unicorn.config.batched_queries,
            prefitted=fitted)
        state = LoopState(measurements=measurements_from_document(doc),
                          learned=learned, engine=engine)
        entry = ModelEntry(key, unicorn, state)
        entry._version = int(doc["version"])
        if doc.get("drift") is not None:
            entry.drift = DriftDetector.from_dict(doc["drift"])
        entry.applied_op_id = int(doc.get("applied_op_id", 0))
        entry.snapshot_op_id = entry.applied_op_id
        return entry

    def flush(self) -> int:
        """Make every store-backed entry durable; returns snapshots written.

        The graceful-shutdown counterpart of crash recovery: folds any
        buffered ``pending`` observations (waiting out in-flight
        asynchronous refreshes first) and publishes a snapshot for every
        entry whose model state has advanced past its last one.  After a
        flush, a *new service generation* can cold-start from the store
        alone — no journal exists across generations to cover the gap the
        eager-mode ``snapshot_every`` throttle (or a drift buffer) leaves
        behind.
        """
        with self._lock:
            entries = list(self._entries.values())
        published = 0
        for entry in entries:
            if self.store is None or entry.store_key is None:
                continue
            event = entry.refresh_event
            if event is not None:
                event.wait()
            with entry.observe_lock, entry.lock:
                if entry.pending:
                    folded = list(entry.pending)
                    entry.pending.clear()
                    self._refresh_entry(entry, folded,
                                        covered_op_id=entry.applied_op_id)
                    published += 1
                elif entry.folds_since_snapshot > 0 \
                        or entry.snapshot_op_id < entry.applied_op_id:
                    self._publish_entry(entry,
                                        covered_op_id=entry.applied_op_id)
                    published += 1
        return published

    def snapshot_watermark(self, subject: str) -> int:
        """Op-id watermark of ``subject``'s last durable snapshot (0 when
        the subject is absent or has never snapshotted) — the bound up to
        which the sharded tier may compact its observation journal."""
        with self._lock:
            entry = self._entries.get(subject)
        return 0 if entry is None else int(entry.snapshot_op_id)

    def snapshot_watermarks(self) -> dict[str, int]:
        """Every resident subject's positive snapshot watermark.

        The payload quiesce/flush acknowledgements carry back to the
        sharded parent: one compaction bound per subject, so journals of
        subjects that went *quiet* (no further live observes to piggyback
        a watermark on) still shrink at the next barrier instead of
        retaining their stale suffix forever.
        """
        with self._lock:
            return {subject: int(entry.snapshot_op_id)
                    for subject, entry in self._entries.items()
                    if entry.snapshot_op_id > 0}

    # --------------------------------------------------------------- refresh
    def observe(self, subject: str,
                measurements: Sequence[Measurement],
                op_id: int | None = None) -> int:
        """Fold new measurements into a subject's model.

        With the default ``drift_threshold=None`` this is the eager PR 4
        path: the measurements append to the entry's loop state and the
        model re-learns immediately through :meth:`Unicorn.learn`'s
        incremental route (the dataset grows in place as a new data epoch,
        discovery warm-starts from the previous structure, and the
        existing engine is refreshed rather than rebuilt).

        With a ``drift_threshold`` set, the measurements instead buffer in
        ``entry.pending`` while their prediction residuals feed the
        entry's :class:`~repro.service.drift.DriftDetector`; the relearn
        runs — folding the whole buffer — only once the stream has
        drifted past the threshold, synchronously or on a background
        thread (``refresh_async``).  Either way the entry's ``version``
        is bumped under its lock, so concurrent query batches either
        complete against the old model or start against the new one —
        never a mix.

        Parameters
        ----------
        subject:
            Registry key of the entry to refresh.
        measurements:
            New :class:`~repro.systems.base.Measurement` objects.
        op_id:
            Journal op id of this batch (the sharded tier's replay
            plumbing).  Batches at or below the entry's ``applied_op_id``
            watermark are silently skipped — that is what makes journal
            replay after a crash idempotent even when an op is delivered
            both by suffix replay and by in-flight requeue.  ``None``
            (direct callers) applies unconditionally.

        Returns
        -------
        int
            The entry's version as of this call: bumped after a
            synchronous refresh, unchanged when the batch was buffered
            (or while an asynchronous refresh is still in flight).

        Raises
        ------
        UnknownSubjectError
            If the subject is not resident, or was adopted without
            maintenance handles and therefore cannot be refreshed.
        """
        entry = self.get(subject)
        if entry.unicorn is None or entry.state is None:
            raise UnknownSubjectError(
                f"subject {subject!r} was adopted without a Unicorn loop "
                "and cannot be refreshed")
        if self.drift_threshold is None:
            with entry.lock:
                if op_id is not None:
                    if op_id <= entry.applied_op_id:
                        return entry.version
                    entry.applied_op_id = int(op_id)
                entry.state.measurements.extend(measurements)
                entry.unicorn.learn(entry.state)
                self.refreshes += 1
                version = entry.bump_version()
                if entry.result_cache is not None:
                    entry.result_cache.invalidate_older_than(version)
                entry.folds_since_snapshot += 1
                if entry.folds_since_snapshot >= self.snapshot_every:
                    self._publish_entry(
                        entry, covered_op_id=entry.applied_op_id)
                return version
        # A previously triggered asynchronous refresh must land before the
        # next batch is scored: every replica then interleaves refreshes
        # and observations identically, whatever the thread scheduling —
        # the determinism the sharded byte-identity contract needs.
        # ``observe_lock`` serializes whole observe calls (two concurrent
        # observers cannot both slip past the handshake), while the wait
        # itself happens outside ``entry.lock``, which the refresh thread
        # requires to make progress.
        with entry.observe_lock:
            event = entry.refresh_event
            if event is not None:
                event.wait()
            return self._observe_drift_locked(entry, measurements, op_id)

    def _observe_drift_locked(self, entry: ModelEntry,
                              measurements: Sequence[Measurement],
                              op_id: int | None = None) -> int:
        """Drift-path body of :meth:`observe`; caller holds the entry's
        ``observe_lock`` and any prior async refresh has completed."""
        subject = entry.key
        with entry.lock:
            entry.refresh_event = None
            if op_id is not None:
                if op_id <= entry.applied_op_id:
                    return entry.version
                entry.applied_op_id = int(op_id)
            if entry.drift is None:
                entry.drift = DriftDetector(
                    entry.unicorn.objective_names,
                    threshold=self.drift_threshold,
                    min_window=self.drift_min_window)
                entry.drift.rebaseline(entry.engine,
                                       entry.state.measurements)
            entry.pending.extend(measurements)
            entry.drift.extend(entry.engine, measurements)
            if not entry.drift.should_refresh():
                self.refreshes_skipped += 1
                return entry.version
            folded = list(entry.pending)
            entry.pending.clear()
            # Captured here, under the entry lock, at trigger time: by the
            # time an asynchronous refresh thread publishes its snapshot
            # the main thread may already be absorbing the next op, so the
            # watermark the snapshot covers must be pinned now.
            covered = entry.applied_op_id
            if not self.refresh_async:
                return self._refresh_entry(entry, folded, covered)
            done = threading.Event()
            entry.refresh_event = done

            def refresh_then_signal() -> None:
                try:
                    self._refresh_entry(entry, folded, covered)
                finally:
                    done.set()

            thread = threading.Thread(
                target=refresh_then_signal,
                name=f"model-refresh-{subject}", daemon=True)
            with self._lock:
                self._refresh_threads = [
                    t for t in self._refresh_threads if t.is_alive()]
                self._refresh_threads.append(thread)
            thread.start()
            return entry.version

    def _refresh_entry(self, entry: ModelEntry,
                       folded: Sequence[Measurement],
                       covered_op_id: int | None = None) -> int:
        """Fold buffered measurements, relearn, bump version, rebaseline.

        Runs under the entry lock — queries against this subject wait for
        the refresh (version isolation) while other subjects proceed.
        This is the refresh boundary the durable snapshot is published at:
        the fold emptied the pending buffer and the detector just
        rebaselined, so the snapshot's ``covered_op_id`` watermark (pinned
        by the caller at trigger time) covers exactly the folded stream.
        """
        with entry.lock:
            entry.state.measurements.extend(folded)
            entry.unicorn.learn(entry.state)
            version = entry.bump_version()
            if entry.result_cache is not None:
                entry.result_cache.invalidate_older_than(version)
            if entry.drift is not None:
                entry.drift.rebaseline(entry.engine,
                                       entry.state.measurements)
            self.refreshes += 1
            self._publish_entry(
                entry,
                covered_op_id=(entry.applied_op_id if covered_op_id is None
                               else covered_op_id))
            return version

    def quiesce(self, timeout: float | None = 30.0) -> None:
        """Wait for every outstanding background refresh to complete.

        The synchronisation point that makes asynchronous drift refreshes
        deterministic: callers that quiesce between an observation phase
        and the next query phase are guaranteed the refreshed model (and
        version) for that phase, regardless of scheduling.
        """
        with self._lock:
            threads = list(self._refresh_threads)
            self._refresh_threads = []
        for thread in threads:
            thread.join(timeout=timeout)
