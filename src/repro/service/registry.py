"""The model registry: per-subject fitted models behind the query service.

A production deployment serves queries for many *subjects* — systems (or
system × environment combinations) each with their own fitted causal
performance model.  :class:`ModelRegistry` keeps those models:

* **LRU-bounded** — at most ``capacity`` fitted models stay resident; the
  least-recently-used entry is evicted when a new subject is fitted (an
  eviction drops the model, not the subject: a later query re-fits it).
* **Content-hash keyed** — a subject fitted from a spec is keyed by the
  SHA-256 hash of the spec's canonical JSON (the same
  :func:`~repro.evaluation.store.content_hash` the campaign artifact store
  uses), so equal specs resolve to the same entry and never fit twice.
* **Incrementally refreshed** — :meth:`ModelRegistry.observe` appends new
  measurements and routes through :meth:`repro.core.unicorn.Unicorn.learn`,
  whose incremental path (PR 1) updates the learner's structure in place
  and refreshes the existing engine instead of rebuilding it; every refresh
  bumps the entry's ``version`` so in-flight batches never mix model states.
* **Drift-aware** — with a ``drift_threshold`` set, :meth:`observe` no
  longer relearns on every batch: observations buffer per entry while a
  :class:`~repro.service.drift.DriftDetector` watches the prediction
  residuals of the stream, and the (incremental) relearn runs only when
  the stream has actually shifted — optionally on a background thread
  (``refresh_async=True``) so the observing caller never waits out a
  relearn.  Refresh decisions are a deterministic function of the
  observation stream, which is what lets sharded replicas stay
  byte-identical.

Entries carry a reentrant lock; the query service serializes engine calls
and refreshes per entry through it (the engine's internal caches are not
thread-safe), while distinct subjects proceed independently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Mapping, Sequence

from repro.core.unicorn import LoopState, Unicorn, UnicornConfig
from repro.evaluation.store import content_hash
from repro.inference.engine import CausalInferenceEngine
from repro.service.drift import DriftDetector
from repro.service.result_cache import ResultCache
from repro.systems.base import Measurement
from repro.systems.registry import get_system


def unicorn_from_spec(spec: Mapping[str, object],
                      use_batched: bool = True) -> Unicorn:
    """Build the :class:`Unicorn` loop a subject *spec* describes.

    The one spec-to-model recipe shared by :meth:`ModelRegistry.get_or_fit`,
    :meth:`ModelRegistry.register_spec` and the sharded tier's worker
    processes — equal specs always produce equal (seeded) models, no matter
    which process fits them.

    Parameters
    ----------
    spec:
        JSON-serializable subject description; see
        :meth:`ModelRegistry.get_or_fit` for the recognised keys.
    use_batched:
        Whether the fitted engine routes queries through the batched
        evaluator (``False`` pins the scalar reference oracle).

    Raises
    ------
    KeyError
        If ``spec`` lacks ``"system"`` or names an unknown system.
    """
    spec = dict(spec)
    if "system" not in spec:
        raise KeyError("subject spec needs a 'system' name")
    system = get_system(str(spec["system"]), hardware=spec.get("hardware"))
    n_samples = int(spec.get("n_samples", 60))
    config = UnicornConfig(
        initial_samples=n_samples, budget=n_samples,
        seed=int(spec.get("seed", 0)),
        max_condition_size=int(spec.get("max_condition_size", 1)),
        relevant_options=spec.get("relevant_options"),
        batched_queries=use_batched)
    return Unicorn(system, config)


class UnknownSubjectError(KeyError):
    """Raised when a request names a subject the registry does not hold."""


class ModelEntry:
    """One resident fitted model: the engine plus its maintenance handles.

    Parameters
    ----------
    key:
        Registry key (subject name or spec content hash).
    unicorn:
        The :class:`Unicorn` loop that owns the model; ``None`` for adopted
        engines that cannot be refreshed.
    state:
        The loop state holding measurements, learned model and engine.
    engine:
        The query engine; defaults to ``state.engine``.
    """

    def __init__(self, key: str, unicorn: Unicorn | None,
                 state: LoopState | None,
                 engine: CausalInferenceEngine | None = None) -> None:
        self.key = key
        self.unicorn = unicorn
        self.state = state
        self._engine = engine
        self._version = 0
        #: serializes engine queries and refreshes for this entry.
        self.lock = threading.RLock()
        self.hits = 0
        #: observations buffered since the last refresh (drift-aware mode).
        self.pending: list[Measurement] = []
        #: lazily created residual-drift detector (drift-aware mode only).
        self.drift: DriftDetector | None = None
        #: completion event of the most recently triggered asynchronous
        #: refresh; the next observe waits on it, which pins the refresh
        #: deterministically between two observation batches.
        self.refresh_event: threading.Event | None = None
        #: serializes whole observe calls (wait-for-refresh handshake +
        #: scoring + trigger) so concurrent observers of one subject see
        #: a well-ordered stream; never held by the refresh thread, so
        #: waiting on ``refresh_event`` under it cannot deadlock.
        self.observe_lock = threading.Lock()
        #: cross-request answer memo, installed by the owning registry
        #: (``None`` when result caching is disabled).
        self.result_cache: ResultCache | None = None

    @property
    def version(self) -> int:
        """Model version stamped on responses served from this entry.

        Registered entries count their own :meth:`ModelRegistry.observe`
        refreshes; adopted entries mirror the engine's
        :attr:`~repro.inference.engine.CausalInferenceEngine.model_version`
        so a refresh of a shared engine is still visible in response
        metadata.
        """
        if self.unicorn is None and self._engine is not None:
            return self._engine.model_version
        return self._version

    def bump_version(self) -> int:
        """Advance and return the entry's own refresh counter."""
        self._version += 1
        return self._version

    @property
    def engine(self) -> CausalInferenceEngine:
        """The current query engine (tracks ``state.engine`` across
        refreshes, which may replace the engine object on a cold relearn).

        Raises
        ------
        UnknownSubjectError
            If the entry holds no fitted engine (never fitted).
        """
        engine = self._engine
        if self.state is not None and self.state.engine is not None:
            engine = self.state.engine
        if engine is None:
            raise UnknownSubjectError(
                f"registry entry {self.key!r} holds no fitted engine")
        return engine

    @property
    def n_measurements(self) -> int:
        """Number of measurements backing the current model (0 if adopted)."""
        return self.state.samples_used if self.state is not None else 0


class ModelRegistry:
    """LRU-bounded, content-hash-keyed store of fitted subject models.

    Parameters
    ----------
    capacity:
        Maximum number of resident fitted models; the least-recently-used
        entry is evicted beyond it.
    use_batched:
        Whether models fitted by :meth:`get_or_fit` route queries through
        the batched evaluator; ``False`` pins every fitted engine to the
        scalar reference oracle (the differential-testing fallback).
    drift_threshold:
        ``None`` (the default) keeps the eager PR 4 semantics: every
        :meth:`observe` relearns immediately.  A positive float switches
        to drift-aware refresh: observations buffer per entry and the
        relearn runs only when the entry's
        :class:`~repro.service.drift.DriftDetector` scores the stream at
        or above this threshold.
    drift_min_window:
        Minimum buffered observations before a drift refresh may trigger.
    refresh_async:
        Run drift-triggered relearns on a background thread instead of the
        observing caller's thread.  Queries against the refreshing subject
        serialize behind the entry lock (version isolation); other
        subjects are unaffected.  Call :meth:`quiesce` to wait for
        outstanding refreshes at a deterministic point.
    result_cache_size:
        Capacity of the per-entry cross-request
        :class:`~repro.service.result_cache.ResultCache` (answers keyed by
        ``(model_version, item_key)``).  ``0`` or ``None`` disables result
        caching — the mode throughput benchmarks use so repeated identical
        scans measure engine work rather than cache lookups.
    """

    def __init__(self, capacity: int = 8, use_batched: bool = True,
                 drift_threshold: float | None = None,
                 drift_min_window: int = 4,
                 refresh_async: bool = False,
                 result_cache_size: int | None = 256) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self.capacity = int(capacity)
        self.use_batched = bool(use_batched)
        self.drift_threshold = (None if drift_threshold is None
                                else float(drift_threshold))
        self.drift_min_window = int(drift_min_window)
        self.refresh_async = bool(refresh_async)
        self.result_cache_size = int(result_cache_size or 0)
        self._entries: OrderedDict[str, ModelEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._refresh_threads: list[threading.Thread] = []
        self.evictions = 0
        #: relearns actually performed through :meth:`observe`.
        self.refreshes = 0
        #: observe batches absorbed without a relearn (drift below threshold).
        self.refreshes_skipped = 0

    # ---------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subject: str) -> bool:
        return subject in self._entries

    def subjects(self) -> list[str]:
        """Keys of every resident entry, least-recently used first."""
        with self._lock:
            return list(self._entries)

    def get(self, subject: str) -> ModelEntry:
        """Resident entry for ``subject``, marking it most-recently used.

        Parameters
        ----------
        subject:
            A name passed to :meth:`register` / :meth:`adopt`, or the spec
            hash returned by :meth:`get_or_fit`.

        Returns
        -------
        ModelEntry

        Raises
        ------
        UnknownSubjectError
            If no entry with that key is resident.
        """
        with self._lock:
            entry = self._entries.get(subject)
            if entry is None:
                raise UnknownSubjectError(
                    f"unknown subject {subject!r}; resident subjects: "
                    f"{list(self._entries)}")
            self._entries.move_to_end(subject)
            entry.hits += 1
            return entry

    # ------------------------------------------------------------ population
    def _insert(self, key: str, entry: ModelEntry,
                keep_existing: bool = False) -> ModelEntry:
        """Install ``entry`` under ``key``, evicting past ``capacity``.

        With ``keep_existing`` the first resident entry wins and is
        returned instead — the atomic resolution of a fit race, so every
        caller of one key shares one (version-isolated) model.
        """
        if self.result_cache_size and entry.result_cache is None:
            entry.result_cache = ResultCache(self.result_cache_size)
        with self._lock:
            if keep_existing:
                existing = self._entries.get(key)
                if existing is not None:
                    self._entries.move_to_end(key)
                    existing.hits += 1
                    return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def register(self, subject: str, unicorn: Unicorn,
                 state: LoopState | None = None) -> ModelEntry:
        """Fit (if needed) and install a model under an explicit name.

        Parameters
        ----------
        subject:
            Registry key the entry will be addressed by.
        unicorn:
            The loop machinery owning the model.
        state:
            A fitted loop state; when ``None`` (or not yet fitted),
            :meth:`Unicorn.fit` runs first.

        Returns
        -------
        ModelEntry
            The resident entry (possibly evicting the LRU entry).
        """
        if state is None or state.engine is None:
            state = unicorn.fit(state.measurements if state else ())
        return self._insert(subject, ModelEntry(subject, unicorn, state))

    def adopt(self, subject: str, engine: CausalInferenceEngine
              ) -> ModelEntry:
        """Install a pre-built engine that the registry will not refresh.

        Useful for serving a model fitted elsewhere (e.g. a ground-truth
        structure in benchmarks); :meth:`observe` raises for such entries.

        The adopting entry serializes *its own* queries through its lock,
        but cannot see locks of other owners: if the engine is still
        reachable elsewhere (another registry entry, an active loop), the
        caller must guarantee it is not refreshed concurrently with
        adopted-entry traffic.  The adopted entry's ``version`` mirrors
        ``engine.model_version`` so refreshes done elsewhere at least
        remain visible in response metadata.
        """
        return self._insert(subject, ModelEntry(subject, None, None,
                                                engine=engine))

    def get_or_fit(self, spec: Mapping[str, object]) -> ModelEntry:
        """Resolve a subject *spec* to a resident entry, fitting on a miss.

        Parameters
        ----------
        spec:
            JSON-serializable description of the subject:
            ``system`` (required, a :func:`repro.systems.registry.get_system`
            name), and optionally ``hardware``, ``n_samples`` (default 60),
            ``seed`` (default 0), ``max_condition_size`` (default 1) and
            ``relevant_options``.  The canonical JSON of this mapping is
            hashed into the registry key, so equal specs share one entry.

        Returns
        -------
        ModelEntry
            The (possibly freshly fitted) entry; its ``key`` is the spec's
            content hash.

        Raises
        ------
        KeyError
            If ``spec`` lacks ``"system"`` or names an unknown system.
        """
        spec = dict(spec)
        if "system" not in spec:
            raise KeyError("subject spec needs a 'system' name")
        key = content_hash(spec)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                return entry
        unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
        state = unicorn.fit()
        # The fit ran outside the lock; a concurrent get_or_fit of the same
        # spec may have won the race.  keep_existing resolves it atomically:
        # the first resident entry wins and the redundant fit is discarded.
        return self._insert(key, ModelEntry(key, unicorn, state),
                            keep_existing=True)

    def register_spec(self, subject: str,
                      spec: Mapping[str, object]) -> ModelEntry:
        """Fit a subject from a spec and install it under an explicit name.

        The spec-addressed sibling of :meth:`register`, and the one entry
        point the sharded tier's workers use: because the fit is a pure
        function of the spec (see :func:`unicorn_from_spec`), every worker
        that registers the same ``(subject, spec)`` pair holds a
        byte-identical model — the foundation of the sharding
        determinism contract.

        Parameters
        ----------
        subject:
            Registry key the entry will be addressed by.
        spec:
            Subject description; see :meth:`get_or_fit`.

        Returns
        -------
        ModelEntry
            The freshly fitted resident entry.
        """
        unicorn = unicorn_from_spec(spec, use_batched=self.use_batched)
        return self._insert(subject,
                            ModelEntry(subject, unicorn, unicorn.fit()))

    # --------------------------------------------------------------- refresh
    def observe(self, subject: str,
                measurements: Sequence[Measurement]) -> int:
        """Fold new measurements into a subject's model.

        With the default ``drift_threshold=None`` this is the eager PR 4
        path: the measurements append to the entry's loop state and the
        model re-learns immediately through :meth:`Unicorn.learn`'s
        incremental route (the dataset grows in place as a new data epoch,
        discovery warm-starts from the previous structure, and the
        existing engine is refreshed rather than rebuilt).

        With a ``drift_threshold`` set, the measurements instead buffer in
        ``entry.pending`` while their prediction residuals feed the
        entry's :class:`~repro.service.drift.DriftDetector`; the relearn
        runs — folding the whole buffer — only once the stream has
        drifted past the threshold, synchronously or on a background
        thread (``refresh_async``).  Either way the entry's ``version``
        is bumped under its lock, so concurrent query batches either
        complete against the old model or start against the new one —
        never a mix.

        Parameters
        ----------
        subject:
            Registry key of the entry to refresh.
        measurements:
            New :class:`~repro.systems.base.Measurement` objects.

        Returns
        -------
        int
            The entry's version as of this call: bumped after a
            synchronous refresh, unchanged when the batch was buffered
            (or while an asynchronous refresh is still in flight).

        Raises
        ------
        UnknownSubjectError
            If the subject is not resident, or was adopted without
            maintenance handles and therefore cannot be refreshed.
        """
        entry = self.get(subject)
        if entry.unicorn is None or entry.state is None:
            raise UnknownSubjectError(
                f"subject {subject!r} was adopted without a Unicorn loop "
                "and cannot be refreshed")
        if self.drift_threshold is None:
            with entry.lock:
                entry.state.measurements.extend(measurements)
                entry.unicorn.learn(entry.state)
                self.refreshes += 1
                version = entry.bump_version()
                if entry.result_cache is not None:
                    entry.result_cache.invalidate_older_than(version)
                return version
        # A previously triggered asynchronous refresh must land before the
        # next batch is scored: every replica then interleaves refreshes
        # and observations identically, whatever the thread scheduling —
        # the determinism the sharded byte-identity contract needs.
        # ``observe_lock`` serializes whole observe calls (two concurrent
        # observers cannot both slip past the handshake), while the wait
        # itself happens outside ``entry.lock``, which the refresh thread
        # requires to make progress.
        with entry.observe_lock:
            event = entry.refresh_event
            if event is not None:
                event.wait()
            return self._observe_drift_locked(entry, measurements)

    def _observe_drift_locked(self, entry: ModelEntry,
                              measurements: Sequence[Measurement]) -> int:
        """Drift-path body of :meth:`observe`; caller holds the entry's
        ``observe_lock`` and any prior async refresh has completed."""
        subject = entry.key
        with entry.lock:
            entry.refresh_event = None
            if entry.drift is None:
                entry.drift = DriftDetector(
                    entry.unicorn.objective_names,
                    threshold=self.drift_threshold,
                    min_window=self.drift_min_window)
                entry.drift.rebaseline(entry.engine,
                                       entry.state.measurements)
            entry.pending.extend(measurements)
            entry.drift.extend(entry.engine, measurements)
            if not entry.drift.should_refresh():
                self.refreshes_skipped += 1
                return entry.version
            folded = list(entry.pending)
            entry.pending.clear()
            if not self.refresh_async:
                return self._refresh_entry(entry, folded)
            done = threading.Event()
            entry.refresh_event = done

            def refresh_then_signal() -> None:
                try:
                    self._refresh_entry(entry, folded)
                finally:
                    done.set()

            thread = threading.Thread(
                target=refresh_then_signal,
                name=f"model-refresh-{subject}", daemon=True)
            with self._lock:
                self._refresh_threads = [
                    t for t in self._refresh_threads if t.is_alive()]
                self._refresh_threads.append(thread)
            thread.start()
            return entry.version

    def _refresh_entry(self, entry: ModelEntry,
                       folded: Sequence[Measurement]) -> int:
        """Fold buffered measurements, relearn, bump version, rebaseline.

        Runs under the entry lock — queries against this subject wait for
        the refresh (version isolation) while other subjects proceed.
        """
        with entry.lock:
            entry.state.measurements.extend(folded)
            entry.unicorn.learn(entry.state)
            version = entry.bump_version()
            if entry.result_cache is not None:
                entry.result_cache.invalidate_older_than(version)
            if entry.drift is not None:
                entry.drift.rebaseline(entry.engine,
                                       entry.state.measurements)
            self.refreshes += 1
            return version

    def quiesce(self, timeout: float | None = 30.0) -> None:
        """Wait for every outstanding background refresh to complete.

        The synchronisation point that makes asynchronous drift refreshes
        deterministic: callers that quiesce between an observation phase
        and the next query phase are guaranteed the refreshed model (and
        version) for that phase, regardless of scheduling.
        """
        with self._lock:
            threads = list(self._refresh_threads)
            self._refresh_threads = []
        for thread in threads:
            thread.join(timeout=timeout)
