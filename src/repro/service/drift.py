"""Residual-drift detection for long-running serving workloads.

A resident model goes stale when the *relationship* between configurations
and performance shifts — a kernel upgrade, a workload regime change, a
thermal throttle.  It does **not** go stale merely because clients start
measuring different configurations: the fitted mechanisms already explain
that.  :class:`DriftDetector` therefore watches the **prediction
residuals** of the live observation stream rather than the raw objective
values: for every incoming :class:`~repro.systems.base.Measurement` it
computes ``observed - predicted`` per objective against the *current*
engine, folds the residual row into an incrementally maintained
:class:`~repro.stats.sufficient.SufficientStats` window (the PR 1
machinery: the window is a growable :class:`~repro.stats.dataset.Dataset`
and the stats resynchronise per data epoch), and compares the window's
residual distribution against the residuals of the model's own training
data.

Two standardized shift statistics are tracked per objective and the
detector's :meth:`score` is their maximum over objectives:

* **mean shift** — ``|mean_w - mean_b| / (std_b / sqrt(n_w))``, the z
  statistic of the window's mean residual under the training residual
  distribution (a well-fitted model keeps this near 0: residuals stay
  centred);
* **variance shift** — ``sqrt(n_w / 2) * |log(var_w / var_b)|``, the
  large-sample z statistic of a log-variance ratio (catches noise-regime
  changes that leave the mean untouched).

Both are unit-free z-like quantities, so one ``drift_threshold`` (default
6.0 — far in the tail, refreshes only on unambiguous shifts) works across
subjects and objectives.  Scoring is pure floating-point arithmetic over a
deterministic stream, so every replica that sees the same observations
makes the same refresh decisions — the property the sharded tier's
byte-identity contract rests on.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.stats.dataset import Dataset
from repro.stats.sufficient import SufficientStats
from repro.systems.base import Measurement

#: Variances below this are treated as degenerate (constant residuals).
_VAR_EPS = 1e-18

#: Default trigger: a window must shift by more than six baseline standard
#: errors before a refresh is worth its relearn cost.
DEFAULT_DRIFT_THRESHOLD = 6.0


class DriftDetector:
    """Per-subject residual-shift detector over a live observation stream.

    Parameters
    ----------
    objectives:
        Objective columns to track (usually the subject's objective names).
    threshold:
        Drift score at or above which :meth:`should_refresh` fires.
    min_window:
        Observations the window must hold before a refresh can trigger —
        guards against deciding on one or two noisy points.
    max_window:
        Window capacity: once this many observations accumulate without a
        refresh, the window restarts (tumbles) at the next batch.  Bounds
        both the memory of a long stationary stream and the dilution of a
        fresh shift by old stationary residuals.

    Notes
    -----
    The detector is driven by its owner (the
    :class:`~repro.service.registry.ModelRegistry`) under the registry
    entry's lock, in three moves: :meth:`rebaseline` against the engine and
    training measurements whenever the model (re)fits, :meth:`extend` for
    every incoming observation batch, and :meth:`score` /
    :meth:`should_refresh` to decide.  It holds no locks of its own.
    """

    def __init__(self, objectives: Sequence[str],
                 threshold: float = DEFAULT_DRIFT_THRESHOLD,
                 min_window: int = 4, max_window: int = 256) -> None:
        if threshold <= 0:
            raise ValueError("drift threshold must be positive")
        self.objectives = [str(o) for o in objectives]
        if not self.objectives:
            raise ValueError("drift detection needs at least one objective")
        self.threshold = float(threshold)
        self.min_window = max(int(min_window), 1)
        self.max_window = max(int(max_window), self.min_window)
        self._baseline_mean: np.ndarray | None = None
        self._baseline_var: np.ndarray | None = None
        self._baseline_n = 0
        self._window_data: Dataset | None = None
        self._window: SufficientStats | None = None
        #: score of the last :meth:`extend` call (observability handle).
        self.last_score = 0.0
        #: scores in :meth:`extend` call order, for tests and tracing.
        self.score_history: list[float] = []

    # ------------------------------------------------------------- residuals
    def _residual_rows(self, engine,
                       measurements: Sequence[Measurement]) -> list[dict]:
        """Per-measurement ``observed - predicted`` rows for the tracked
        objectives, predicted by the current engine in one batched call."""
        configurations = [m.configuration for m in measurements]
        predicted = engine.predict_batch(configurations, self.objectives)
        return [{objective: float(measurement.objectives[objective])
                 - float(prediction[objective])
                 for objective in self.objectives}
                for measurement, prediction in zip(measurements, predicted)]

    # ------------------------------------------------------------- lifecycle
    def rebaseline(self, engine,
                   measurements: Sequence[Measurement]) -> None:
        """Re-anchor the baseline to the current model and its training data.

        Called whenever the model is (re)fitted: the training residuals of
        the fresh model define what "no drift" looks like, and the live
        window restarts empty.

        Parameters
        ----------
        engine:
            The subject's current
            :class:`~repro.inference.engine.CausalInferenceEngine`.
        measurements:
            The measurements the current model was fitted on.
        """
        rows = self._residual_rows(engine, measurements)
        data = Dataset.from_rows(rows, columns=self.objectives)
        stats = SufficientStats(data)
        covariance = stats.covariance()
        self._baseline_mean = stats.means()
        self._baseline_var = np.maximum(np.diag(covariance).copy(), _VAR_EPS)
        self._baseline_n = stats.n_rows
        self._window_data = None
        self._window = None
        self.last_score = 0.0

    def extend(self, engine, measurements: Sequence[Measurement]) -> float:
        """Fold a new observation batch into the window and return the score.

        Residuals are computed against the *current* engine at fold time,
        appended in place to the window dataset (bumping its data epoch so
        the window's :class:`SufficientStats` folds exactly the new rows),
        and the updated drift score is returned.

        Parameters
        ----------
        engine:
            The subject's current engine.
        measurements:
            Newly observed measurements, in stream order.

        Returns
        -------
        float
            The drift score after folding (also stored in
            :attr:`last_score` and appended to :attr:`score_history`).
        """
        if self._baseline_mean is None:
            raise RuntimeError("rebaseline() must run before extend()")
        if self.window_size >= self.max_window:
            # Tumble: restart the window rather than let a long stationary
            # prefix dilute (and outgrow) whatever shift comes next.
            self._window_data = None
            self._window = None
        rows = self._residual_rows(engine, measurements)
        if rows:
            if self._window_data is None:
                self._window_data = Dataset.from_rows(
                    rows, columns=self.objectives)
                self._window = SufficientStats(self._window_data)
            else:
                self._window_data.append_rows_inplace(rows)
        self.last_score = self.score()
        self.score_history.append(self.last_score)
        return self.last_score

    # --------------------------------------------------------------- scoring
    @property
    def window_size(self) -> int:
        """Observations currently held in the live window."""
        return self._window.n_rows if self._window is not None else 0

    def score(self) -> float:
        """Current drift score: the max standardized shift over objectives.

        Returns 0.0 while the window is smaller than ``min_window`` (not
        enough evidence to act on either way).
        """
        if self._window is None or self._baseline_mean is None:
            return 0.0
        n = self._window.n_rows
        if n < self.min_window:
            return 0.0
        window_mean = self._window.means()
        window_var = np.maximum(
            np.diag(self._window.covariance()), _VAR_EPS)
        score = 0.0
        for i in range(len(self.objectives)):
            std_error = math.sqrt(self._baseline_var[i] / n)
            mean_shift = abs(window_mean[i] - self._baseline_mean[i]) \
                / max(std_error, math.sqrt(_VAR_EPS))
            variance_shift = math.sqrt(n / 2.0) * abs(
                math.log(window_var[i] / self._baseline_var[i]))
            score = max(score, mean_shift, variance_shift)
        return float(score)

    def should_refresh(self) -> bool:
        """Whether the window has drifted past the refresh threshold."""
        return self.score() >= self.threshold

    def state(self) -> dict:
        """JSON-friendly snapshot for stats endpoints and logs."""
        return {"threshold": self.threshold,
                "window_size": self.window_size,
                "baseline_n": self._baseline_n,
                "last_score": float(self.last_score)}

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Durable snapshot of the detector's decision state (bitwise).

        The baseline moments are what future drift scores are computed
        against, so they are captured via the lossless array codec.  The
        model store snapshots entries at refresh boundaries — right after
        :meth:`rebaseline`, when the live window is empty — so the window
        normally serializes as ``None``; a non-empty window is captured as
        its residual rows and rebuilt on load.
        """
        from repro.stats.codec import array_to_doc

        window = None
        if self._window_data is not None and self._window_data.n_rows:
            window = array_to_doc(self._window_data.values)
        return {
            "objectives": list(self.objectives),
            "threshold": self.threshold,
            "min_window": self.min_window,
            "max_window": self.max_window,
            "baseline_mean": (None if self._baseline_mean is None
                              else array_to_doc(self._baseline_mean)),
            "baseline_var": (None if self._baseline_var is None
                             else array_to_doc(self._baseline_var)),
            "baseline_n": int(self._baseline_n),
            "window": window,
            "last_score": float(self.last_score),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftDetector":
        """Rebuild the detector snapshotted by :meth:`to_dict`.

        The refresh schedule downstream of the reload is byte-identical to
        the schedule a continuously running detector would have produced,
        because scoring is pure floating-point arithmetic over the
        restored baseline and the (normally empty) restored window.
        """
        from repro.stats.codec import array_from_doc

        detector = cls(payload["objectives"],
                       threshold=float(payload["threshold"]),
                       min_window=int(payload["min_window"]),
                       max_window=int(payload["max_window"]))
        if payload.get("baseline_mean") is not None:
            detector._baseline_mean = array_from_doc(payload["baseline_mean"])
            detector._baseline_var = array_from_doc(payload["baseline_var"])
            detector._baseline_n = int(payload["baseline_n"])
        if payload.get("window") is not None:
            detector._window_data = Dataset(detector.objectives,
                                            array_from_doc(payload["window"]))
            detector._window = SufficientStats(detector._window_data)
        detector.last_score = float(payload.get("last_score", 0.0))
        return detector
