"""Coalescing dispatch of concurrent queries into batched engine calls.

The batched evaluator (PR 3) makes one engine call over N inputs far cheaper
than N calls over one input — but only offline harnesses exploited it.  The
:class:`RequestBatcher` brings that to the serving path: requests drained
from the service queue are grouped by ``(subject, model_version,
group_key)``, deduplicated by item key within each group, and dispatched as
single ``*_batch`` calls:

===============  ====================================================
kind             coalesced engine call
===============  ====================================================
``EFFECT``       one ``interventional_expectations_batch`` per
                 objective (distinct interventions become batch rows)
``PREDICT``      one ``predict_batch`` per objectives-tuple
``ACE``          one ``causal_effects_batch`` sweep per objective
                 (distinct options share one interventional call)
``SATISFACTION`` one ``satisfaction_probability`` per distinct
                 (constraint, intervention) — already vectorized over
                 the observed contexts internally
``REPAIR``       one ``repair_set`` scan per distinct fault — already
                 one batched counterfactual scan internally
===============  ====================================================

**Determinism contract.**  Coalescing never changes an answer: the batched
equations accumulate feature terms elementwise per row
(:meth:`repro.scm.fitting.FittedEquation.predict_batch`), so row ``i`` of an
N-row batch is bitwise equal to the same query dispatched alone, and
deduplicated requests receive the exact value their duplicate computed.
``serial_dispatch`` is the one-at-a-time reference the tests and the
throughput benchmark hold the coalesced path byte-identical to.  The scalar
oracle remains available underneath both paths: a registry entry fitted
with ``use_batched=False`` pins its engine to the scalar reference
semantics, and the batcher works unchanged on top of it.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.service.registry import ModelEntry
from repro.service.requests import (
    QueryRequest,
    QueryResponse,
    ServiceKind,
    repair_payload,
)
from repro.service.result_cache import MISS, fresh_value as _fresh_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tracing is
    # a leaf module, but keeping the runtime import lazy keeps the
    # batcher importable standalone)
    from repro.service.tracing import TraceContext


class RequestBatcher:
    """Groups, deduplicates and dispatches serving-layer requests.

    When the registry entry carries a
    :class:`~repro.service.result_cache.ResultCache`, both dispatch paths
    consult it per distinct item key at the entry's current model version
    before touching the engine: a hit serves the memoized answer (and
    issues no engine call), a miss evaluates and stores the answer for the
    next batch.  Errors are never cached.  Because cached values were
    computed by an identical engine call against the same model version,
    answers are byte-identical with the cache on or off.

    Parameters
    ----------
    coalesce:
        When ``False``, every request is dispatched as its own singleton
        engine call in submission order — the one-at-a-time reference mode
        (also available per call via :meth:`serial_dispatch`).
    """

    def __init__(self, coalesce: bool = True) -> None:
        self.coalesce = bool(coalesce)
        #: total engine calls issued / requests answered, for stats.
        self.calls = 0
        self.answered = 0
        #: cross-request result-cache traffic (see the class docstring).
        self.cache_hits = 0
        self.cache_misses = 0

    # -------------------------------------------------------------- dispatch
    def dispatch(self, entry: ModelEntry,
                 requests: Sequence[QueryRequest],
                 dispatch_index: int = 0,
                 traces: "list[TraceContext | None] | None" = None,
                 ) -> list[QueryResponse]:
        """Answer ``requests`` against one registry entry.

        The entry's lock is held for the duration (engine caches are not
        thread-safe); the answers come back aligned with ``requests``.

        Parameters
        ----------
        entry:
            Registry entry whose engine answers the batch; all requests
            must name this entry's subject.
        requests:
            The drained requests (one group key per call is *not* required
            — grouping happens here).
        dispatch_index:
            Sequence number stamped on the responses (drain-order handle).
        traces:
            Optional list of :class:`~repro.service.tracing.TraceContext`
            aligned with ``requests`` — position ``i`` holds the context
            request ``i``'s answer settles (see
            :meth:`~repro.service.tracing.Tracer.claim_round`), or
            ``None`` where a request is untraced.  When present the
            batcher fills each context's engine / cache segments,
            cache-hit flag and coalesce group size by list index — no
            per-request lookups.  ``None`` (the default) keeps the hot
            path free of any trace work.

        Returns
        -------
        list of QueryResponse
            One response per request, in request order; failures are
            reported per-response via ``error`` rather than raised.
        """
        requests = list(requests)
        with entry.lock:
            if not self.coalesce:
                responses = self._serial(entry, requests, dispatch_index,
                                         traces=traces)
            else:
                responses = self._coalesced(entry, requests, dispatch_index,
                                            traces=traces)
        return responses

    def serial_dispatch(self, entry: ModelEntry,
                        requests: Sequence[QueryRequest]
                        ) -> list[QueryResponse]:
        """One-at-a-time dispatch: the byte-identical reference path."""
        with entry.lock:
            return self._serial(entry, list(requests), 0)

    # -------------------------------------------------------------- internals
    def _serial(self, entry: ModelEntry, requests: list[QueryRequest],
                dispatch_index: int,
                traces: "list[TraceContext | None] | None" = None,
                ) -> list[QueryResponse]:
        cache = entry.result_cache
        responses = []
        for idx, request in enumerate(requests):
            version = entry.version
            trace = traces[idx] if traces is not None else None
            if trace is not None:
                trace.coalesce_group_size = 1  # singleton engine calls
            if cache is not None:
                lookup_start = (time.perf_counter()
                                if trace is not None else 0.0)
                cached = cache.lookup(version, request.item_key_cached())
                if trace is not None:
                    trace.cache_seconds += \
                        time.perf_counter() - lookup_start
                if cached is not MISS:
                    self.cache_hits += 1
                    if trace is not None:
                        trace.cache_hit = True
                    responses.append(QueryResponse(
                        request=request, subject=entry.key,
                        model_version=version, value=cached,
                        batched=False, batch_size=1,
                        dispatch_index=dispatch_index))
                    self.answered += 1
                    continue
                self.cache_misses += 1
            engine_start = time.perf_counter() if trace is not None else 0.0
            try:
                value = self._evaluate_one(entry, request)
                if cache is not None:
                    cache.store(version, request.item_key_cached(), value)
                responses.append(QueryResponse(
                    request=request, subject=entry.key,
                    model_version=entry.version, value=value,
                    batched=False, batch_size=1,
                    dispatch_index=dispatch_index))
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                responses.append(QueryResponse(
                    request=request, subject=entry.key,
                    model_version=entry.version, value=None,
                    batched=False, batch_size=1,
                    dispatch_index=dispatch_index, error=str(exc)))
            if trace is not None:
                trace.engine_seconds += time.perf_counter() - engine_start
            self.calls += 1
            self.answered += 1
        return responses

    def _coalesced(self, entry: ModelEntry, requests: list[QueryRequest],
                   dispatch_index: int,
                   traces: "list[TraceContext | None] | None" = None,
                   ) -> list[QueryResponse]:
        # Group by group_key, preserving request order within each group.
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append(i)

        cache = entry.result_cache
        responses: list[QueryResponse | None] = [None] * len(requests)
        tracing = traces is not None
        for indices in groups.values():
            # Deduplicate by item key in first-appearance order.
            distinct: dict[tuple, list[int]] = {}
            for i in indices:
                distinct.setdefault(requests[i].item_key_cached(),
                                    []).append(i)
            # Answer what the cache already knows; only the missing item
            # keys go to the engine as one (smaller) batched call.
            version = entry.version
            answers: dict[tuple, tuple[object, str | None, int]] = {}
            misses: list[tuple] = []
            hit_keys: set[tuple] = set()
            cache_elapsed = 0.0
            if cache is not None:
                cache_start = (time.perf_counter()
                               if tracing else 0.0)
                for key in distinct:
                    hit = cache.lookup(version, key)
                    if hit is not MISS:
                        self.cache_hits += 1
                        answers[key] = (hit, None, 1)
                        hit_keys.add(key)
                    else:
                        self.cache_misses += 1
                        misses.append(key)
                if tracing:
                    cache_elapsed = time.perf_counter() - cache_start
            else:
                misses = list(distinct)
            engine_elapsed = 0.0
            if misses:
                leaders = [distinct[key][0] for key in misses]
                batch_size = len(leaders)
                engine_start = (time.perf_counter()
                                if tracing else 0.0)
                try:
                    values = self._evaluate_group(
                        entry, [requests[i] for i in leaders])
                    errors: list[str | None] = [None] * batch_size
                    self.calls += 1
                except Exception:  # noqa: BLE001 - fall back to isolate the
                    # offending request: re-evaluate the group one item at
                    # a time so only the request that actually fails
                    # reports an error.
                    self.calls += 1  # the failed group call was a real call
                    batch_size = 1  # answers now come from singleton calls
                    values, errors = [], []
                    for i in leaders:
                        try:
                            values.append(
                                self._evaluate_one(entry, requests[i]))
                            errors.append(None)
                        except Exception as exc:  # noqa: BLE001
                            values.append(None)
                            errors.append(str(exc))
                        self.calls += 1
                if tracing:
                    engine_elapsed = time.perf_counter() - engine_start
                for key, value, error in zip(misses, values, errors):
                    if cache is not None and error is None:
                        cache.store(version, key, value)
                    answers[key] = (value, error, batch_size)
            for key, fanout in distinct.items():
                value, error, batch_size = answers[key]
                if tracing:
                    for i in fanout:
                        trace = traces[i]
                        if trace is None:
                            continue
                        trace.batched = True
                        trace.coalesce_group_size = batch_size
                        trace.cache_hit = key in hit_keys
                        trace.cache_seconds += cache_elapsed
                        if key not in hit_keys:
                            trace.engine_seconds += engine_elapsed
                for j, i in enumerate(fanout):
                    # Duplicates get their own copy of the (mutable)
                    # answer, matching the serial path where every request
                    # builds an independent object — a client mutating its
                    # response must never change another client's.
                    fanned = value if j == 0 else _fresh_value(value)
                    responses[i] = QueryResponse(
                        request=requests[i], subject=entry.key,
                        model_version=entry.version, value=fanned,
                        batched=True, batch_size=batch_size,
                        dispatch_index=dispatch_index, error=error)
                    self.answered += 1
        # Every request index belongs to exactly one group.
        return [r for r in responses if r is not None]

    def _evaluate_group(self, entry: ModelEntry,
                        leaders: list[QueryRequest]) -> list[object]:
        """One engine call for a deduplicated group (aligned answers)."""
        engine = entry.engine
        kind = leaders[0].kind
        if kind is ServiceKind.EFFECT:
            objective = leaders[0].objective
            values = engine.interventional_expectations_batch(
                objective, [r.intervention_dict() for r in leaders])
            return [float(v) for v in values]
        if kind is ServiceKind.PREDICT:
            objectives = list(leaders[0].objectives)
            return engine.predict_batch(
                [r.configuration_dict() for r in leaders], objectives)
        if kind is ServiceKind.ACE:
            objective = leaders[0].objective
            return engine.causal_effects_batch(
                [r.option for r in leaders], objective)
        # SATISFACTION / REPAIR evaluate per distinct item: the engine call
        # is already internally vectorized (satisfaction scans every
        # observed context, a repair scan scores its whole candidate grid in
        # one counterfactual call); coalescing still collapses duplicate
        # requests to one call.
        return [self._evaluate_one(entry, request) for request in leaders]

    @staticmethod
    def _evaluate_one(entry: ModelEntry, request: QueryRequest) -> object:
        """The singleton engine call for one request (reference semantics)."""
        engine = entry.engine
        kind = request.kind
        if kind is ServiceKind.ACE:
            return float(engine.causal_effect(request.option,
                                              request.objective))
        if kind is ServiceKind.PREDICT:
            return engine.predict_batch([request.configuration_dict()],
                                        list(request.objectives))[0]
        if kind is ServiceKind.EFFECT:
            return float(engine.interventional_expectation(
                request.objective, request.intervention_dict()))
        if kind is ServiceKind.SATISFACTION:
            return float(engine.satisfaction_probability(
                request.constraint(), request.intervention_dict()))
        if kind is ServiceKind.REPAIR:
            repair_set = engine.repair_set(
                dict(request.faulty_configuration),
                dict(request.faulty_measurement),
                request.objectives_dict(),
                max_repairs=request.max_repairs)
            return repair_payload(repair_set)
        raise ValueError(f"unsupported request kind {kind!r}")
