"""Conditional-independence tests used by the skeleton pruning phase.

The paper states that Unicorn prunes the fully connected constraint-respecting
skeleton "using standard statistical tests of independence.  In particular, we
use mutual info for discrete variables and Fisher z-test for continuous
variables".  ``FisherZTest`` and ``GSquareTest`` implement those two tests and
``MixedCITest`` dispatches between them (discretizing when a conditioning set
mixes types), which is what the Unicorn discovery pipeline instantiates by
default.

All tests expose the same interface: ``test(x, y, conditioning)`` returns a
:class:`CIResult` with the p-value and the decision at the configured
significance level.  Tests additionally expose ``test_batch`` for scoring
many pairs that share one conditioning set in a single sufficient-statistics
pass, and :class:`CIDecisionCache` / :class:`CachedCITest` let the
incremental model-maintenance layer reuse decisions across data epochs: a
decision whose p-value sits far from the significance threshold survives an
epoch bump untested, while borderline decisions are retested on fresh data.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.stats.dataset import Dataset
from repro.stats.entropy import mutual_information
from repro.stats.sufficient import SufficientStats


@dataclass(frozen=True)
class CIResult:
    """Outcome of one conditional-independence test."""

    independent: bool
    p_value: float
    statistic: float

    def __bool__(self) -> bool:
        return bool(self.independent)


class CITest(Protocol):
    """Protocol implemented by every conditional-independence test."""

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        """Test ``x`` independent of ``y`` given ``conditioning``."""
        ...  # pragma: no cover


# --------------------------------------------------------------------------
# Fisher z test on partial correlations (continuous data)
# --------------------------------------------------------------------------
def _partial_correlation(data: np.ndarray, i: int, j: int,
                         conditioning: Sequence[int]) -> float:
    """Partial correlation of columns ``i`` and ``j`` given ``conditioning``.

    Computed by regressing both columns on the conditioning columns (via
    least squares) and correlating the residuals, which is numerically more
    stable than inverting the full correlation matrix when conditioning sets
    are small.
    """
    x = data[:, i]
    y = data[:, j]
    if conditioning:
        z = data[:, list(conditioning)]
        z = np.column_stack([z, np.ones(len(z))])
        beta_x, *_ = np.linalg.lstsq(z, x, rcond=None)
        beta_y, *_ = np.linalg.lstsq(z, y, rcond=None)
        x = x - z @ beta_x
        y = y - z @ beta_y
    sx = np.std(x)
    sy = np.std(y)
    if sx < 1e-12 or sy < 1e-12:
        return 0.0
    corr = float(np.corrcoef(x, y)[0, 1])
    if math.isnan(corr):
        return 0.0
    return max(-0.9999999, min(0.9999999, corr))


def _fisher_z_from_correlation(corr: float, n: int, k: int,
                               alpha: float) -> CIResult:
    """Map a partial correlation to a Fisher z :class:`CIResult`."""
    dof = n - k - 3
    if dof <= 0:
        # Not enough samples to decide; conservatively keep the edge.
        return CIResult(independent=False, p_value=0.0, statistic=float("inf"))
    z = 0.5 * math.log((1 + corr) / (1 - corr))
    statistic = math.sqrt(dof) * abs(z)
    # 2 * norm.sf(t) == erfc(t / sqrt(2)); both keep resolution in the far
    # tail where 1 - cdf underflows to exactly 0, which the CI-decision
    # cache's margin policy needs to tell a confident decision from a
    # borderline one.  math.erfc avoids scipy's per-call distribution
    # machinery on what is the hottest line of the skeleton search.
    p_value = math.erfc(statistic / math.sqrt(2))
    return CIResult(independent=bool(p_value > alpha), p_value=p_value,
                    statistic=float(statistic))


def fisher_z(data: np.ndarray, i: int, j: int,
             conditioning: Sequence[int] = (), alpha: float = 0.05) -> CIResult:
    """Fisher z conditional-independence test on raw column indices."""
    corr = _partial_correlation(data, i, j, conditioning)
    return _fisher_z_from_correlation(corr, data.shape[0], len(conditioning),
                                      alpha)


class FisherZTest:
    """Fisher z test of zero partial correlation on a :class:`Dataset`.

    Partial correlations come from incrementally maintained sufficient
    statistics (one Schur complement per conditioning set) instead of
    least-squares fits over the raw rows; a shared :class:`SufficientStats`
    can be injected so several tests reuse one set of running sums.
    """

    def __init__(self, data: Dataset, alpha: float = 0.05,
                 stats: SufficientStats | None = None) -> None:
        self._data = data
        self._alpha = alpha
        self._stats = stats if stats is not None else SufficientStats(data)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def sufficient_stats(self) -> SufficientStats:
        return self._stats

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        idx = self._data.column_index
        corr = self._stats.partial_correlation(
            idx(x), idx(y), [idx(c) for c in conditioning])
        return _fisher_z_from_correlation(corr, self._data.n_rows,
                                          len(conditioning), self._alpha)

    def test_batch(self, pairs: Sequence[tuple[str, str]],
                   conditioning: Sequence[str] = ()) -> list[CIResult]:
        """Test many pairs given one shared conditioning set.

        All pairwise partial correlations fall out of a single Schur
        complement over the union of the involved columns, so a whole
        skeleton level-0 sweep costs one covariance pass.
        """
        idx = self._data.column_index
        involved = sorted({idx(v) for x, y in pairs for v in (x, y)})
        position = {column: k for k, column in enumerate(involved)}
        matrix = self._stats.partial_correlations(
            involved, [idx(c) for c in conditioning])
        n, k = self._data.n_rows, len(conditioning)
        return [
            _fisher_z_from_correlation(
                float(matrix[position[idx(x)], position[idx(y)]]), n, k,
                self._alpha)
            for x, y in pairs
        ]


# --------------------------------------------------------------------------
# G-square / mutual information test (discrete data)
# --------------------------------------------------------------------------
def g_square(x: np.ndarray, y: np.ndarray,
             conditioning: np.ndarray | None = None,
             alpha: float = 0.05) -> CIResult:
    """G-test of conditional independence for discrete (coded) variables.

    The G statistic equals ``2 * N * ln(2) * I(x; y | z)`` where ``I`` is the
    empirical conditional mutual information in bits; it is compared with a
    chi-square distribution whose degrees of freedom are
    ``(|X|-1)(|Y|-1)*|Z|``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    n = len(x)
    mi_bits = mutual_information(x, y, conditioning)
    statistic = 2.0 * n * math.log(2) * max(mi_bits, 0.0)

    x_levels = len(np.unique(x))
    y_levels = len(np.unique(y))
    if conditioning is None or conditioning.size == 0:
        z_cells = 1
    else:
        conditioning = np.asarray(conditioning)
        if conditioning.ndim == 1:
            conditioning = conditioning[:, None]
        z_cells = len(np.unique(
            [tuple(row) for row in conditioning.astype(np.int64)], axis=0))
    dof = max((x_levels - 1) * (y_levels - 1) * z_cells, 1)
    p_value = float(scipy_stats.chi2.sf(statistic, dof))
    return CIResult(independent=bool(p_value > alpha), p_value=p_value,
                    statistic=float(statistic))


class GSquareTest:
    """G-test on a :class:`Dataset`, discretizing continuous columns.

    Discretization codes live in the shared :class:`SufficientStats`, so they
    are computed once per column per data epoch no matter how many tests (or
    how many cooperating test objects) touch the column.
    """

    def __init__(self, data: Dataset, alpha: float = 0.05,
                 bins: int = 8, stats: SufficientStats | None = None) -> None:
        self._data = data
        self._alpha = alpha
        self._bins = bins
        self._stats = stats if stats is not None else SufficientStats(data)

    @property
    def alpha(self) -> float:
        return self._alpha

    def _coded(self, column: str) -> np.ndarray:
        return self._stats.codes(column, bins=self._bins)

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        cond = None
        if conditioning:
            cond = np.column_stack([self._coded(c) for c in conditioning])
        return g_square(self._coded(x), self._coded(y), cond,
                        alpha=self._alpha)


# --------------------------------------------------------------------------
# Mixed dispatcher
# --------------------------------------------------------------------------
class MixedCITest:
    """Dispatch between Fisher z and the G-test based on column types.

    The G-test (mutual information) is used when both tested variables are
    discrete, the conditioning set is fully discrete, and the contingency
    table is small enough to be well populated at the available sample size;
    in every other case the Fisher z test on partial correlations is used
    (discrete codes are treated as numeric covariates, which is appropriate
    for the ordinal options that dominate systems configuration spaces and
    avoids the data fragmentation a fully stratified test would suffer at the
    low sample sizes Unicorn operates with).

    One :class:`SufficientStats` instance backs both member tests, so the
    dispatcher can stay alive across active-loop iterations: appended rows
    are folded into the running sums and the per-epoch caches refresh
    themselves.
    """

    def __init__(self, data: Dataset, alpha: float = 0.05,
                 bins: int = 8, max_cells_fraction: float = 0.2,
                 stats: SufficientStats | None = None) -> None:
        self._data = data
        self._alpha = alpha
        self._stats = stats if stats is not None else SufficientStats(data)
        self._fisher = FisherZTest(data, alpha=alpha, stats=self._stats)
        self._gsq = GSquareTest(data, alpha=alpha, bins=bins,
                                stats=self._stats)
        self._max_cells_fraction = max_cells_fraction

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def sufficient_stats(self) -> SufficientStats:
        return self._stats

    def _use_gsquare(self, x: str, y: str,
                     conditioning: Sequence[str]) -> bool:
        involved = [x, y, *conditioning]
        if not all(self._data.is_discrete(c) for c in involved):
            return False
        cells = 1
        for column in involved:
            cells *= self._stats.cardinality(column)
        return cells <= max(self._max_cells_fraction * self._data.n_rows, 8)

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        if self._use_gsquare(x, y, conditioning):
            return self._gsq.test(x, y, conditioning)
        return self._fisher.test(x, y, conditioning)

    def test_batch(self, pairs: Sequence[tuple[str, str]],
                   conditioning: Sequence[str] = ()) -> list[CIResult]:
        """Batch variant of :meth:`test` for one shared conditioning set."""
        fisher_pairs = [(i, pair) for i, pair in enumerate(pairs)
                        if not self._use_gsquare(*pair, conditioning)]
        results: list[CIResult | None] = [None] * len(pairs)
        if fisher_pairs:
            batch = self._fisher.test_batch([p for _, p in fisher_pairs],
                                            conditioning)
            for (i, _), result in zip(fisher_pairs, batch):
                results[i] = result
        for i, (x, y) in enumerate(pairs):
            if results[i] is None:
                results[i] = self._gsq.test(x, y, conditioning)
        return results  # type: ignore[return-value]


# --------------------------------------------------------------------------
# CI-decision caching across data epochs
# --------------------------------------------------------------------------
@dataclass
class CICacheCounters:
    """Observability counters for one :class:`CIDecisionCache`."""

    hits: int = 0
    misses: int = 0
    stale_reused: int = 0
    retests: int = 0

    @property
    def total_lookups(self) -> int:
        return self.hits + self.misses + self.stale_reused + self.retests

    def hit_rate(self) -> float:
        total = self.total_lookups
        if total == 0:
            return 0.0
        return (self.hits + self.stale_reused) / total


@dataclass(frozen=True)
class CIDecision:
    """One CI decision in a recorded discovery trace."""

    x: str
    y: str
    conditioning: tuple[str, ...]
    independent: bool


@dataclass
class _CacheEntry:
    epoch: int
    result: CIResult


class CIDecisionCache:
    """Cache of CI decisions keyed by ``(x, y, frozenset(Z))`` and data epoch.

    A lookup at the entry's own epoch is always a hit.  After an epoch bump
    (new rows appended) the *margin policy* decides: a decision whose p-value
    lies outside ``[alpha / margin_factor, alpha * margin_factor]`` is far
    from the significance threshold, is overwhelmingly unlikely to flip from
    a handful of extra samples, and is served stale; a borderline decision is
    evicted so the caller retests it on the fresh data.  This is what makes
    the warm-started skeleton search incremental — per iteration only the
    borderline fringe of the previous model is re-examined.

    Even a confident decision is only served for ``max_stale_epochs``
    consecutive bumps before it is retested: p-values drift as samples
    accumulate, and an unbounded reuse window would let early-epoch decisions
    diverge arbitrarily from what the data now says.  The forced retests are
    spread across epochs (entries age at different times), so the
    per-iteration cost stays a fraction ``1 / max_stale_epochs`` of a full
    re-learn.
    """

    def __init__(self, alpha: float = 0.05, margin_factor: float = 8.0,
                 max_stale_epochs: int = 3,
                 max_entries: int = 500_000) -> None:
        if margin_factor < 1.0:
            raise ValueError("margin_factor must be >= 1")
        if max_stale_epochs < 1:
            raise ValueError("max_stale_epochs must be >= 1")
        self._alpha = alpha
        self._margin_factor = margin_factor
        self._max_stale_epochs = max_stale_epochs
        self._max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, frozenset[str]],
                                   _CacheEntry] = OrderedDict()
        self.counters = CICacheCounters()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def alpha(self) -> float:
        return self._alpha

    @staticmethod
    def _key(x: str, y: str,
             conditioning: Sequence[str]) -> tuple[str, str, frozenset[str]]:
        a, b = (x, y) if x <= y else (y, x)
        return (a, b, frozenset(conditioning))

    def is_confident(self, result: CIResult) -> bool:
        """True when the decision is far enough from alpha to survive epochs."""
        if not math.isfinite(result.statistic):
            # The "not enough samples to decide" sentinel (p=0, statistic
            # inf): never confident — a few more rows may make the test
            # decidable, so it must be re-run every epoch.
            return False
        return (result.p_value >= self._alpha * self._margin_factor
                or result.p_value <= self._alpha / self._margin_factor)

    def lookup(self, x: str, y: str, conditioning: Sequence[str],
               epoch: int) -> CIResult | None:
        key = self._key(x, y, conditioning)
        entry = self._entries.get(key)
        if entry is None:
            self.counters.misses += 1
            return None
        if entry.epoch == epoch:
            self.counters.hits += 1
            return entry.result
        if (self.is_confident(entry.result)
                and 0 < epoch - entry.epoch <= self._max_stale_epochs):
            # Survives the epoch bump; deliberately NOT re-stamped, so the
            # decision is recomputed once its reuse window closes.
            self.counters.stale_reused += 1
            return entry.result
        del self._entries[key]
        self.counters.retests += 1
        return None

    def store(self, x: str, y: str, conditioning: Sequence[str],
              epoch: int, result: CIResult) -> None:
        key = self._key(x, y, conditioning)
        self._entries[key] = _CacheEntry(epoch=epoch, result=result)
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class CachedCITest:
    """Wrap any :class:`CITest` with a :class:`CIDecisionCache`.

    ``epoch_fn`` supplies the current data epoch (normally the backing
    dataset's ``data_epoch``); every decision the inner test produces is
    recorded and replayed according to the cache's margin policy.

    The wrapper can also *trace* the sequence of decisions it serves
    (:meth:`start_trace` / :meth:`take_trace`).  A constraint-based search is
    a deterministic function of its CI-decision sequence, so replaying a
    recorded trace against fresh data and finding every decision unchanged
    shows the search would reproduce the same graph — the basis of the
    incremental fast path.  The check is exact up to the cache's margin
    policy: decisions it serves stale are compared as-cached, not freshly
    recomputed, until their reuse window closes.
    """

    def __init__(self, inner, cache: CIDecisionCache,
                 epoch_fn: Callable[[], int]) -> None:
        self._inner = inner
        self._cache = cache
        self._epoch_fn = epoch_fn
        self._trace: list[CIDecision] | None = None

    @property
    def alpha(self) -> float:
        return self._inner.alpha

    @property
    def cache(self) -> CIDecisionCache:
        return self._cache

    @property
    def inner(self):
        return self._inner

    # ---------------------------------------------------------------- tracing
    def start_trace(self) -> None:
        """Begin recording every decision served through this wrapper."""
        self._trace = []

    def take_trace(self) -> list["CIDecision"]:
        """Stop recording and return the recorded decision sequence."""
        trace = self._trace if self._trace is not None else []
        self._trace = None
        return trace

    # ---------------------------------------------------------------- testing
    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        epoch = self._epoch_fn()
        result = self._cache.lookup(x, y, conditioning, epoch)
        if result is None:
            result = self._inner.test(x, y, conditioning)
            self._cache.store(x, y, conditioning, epoch, result)
        if self._trace is not None:
            self._trace.append(
                CIDecision(x, y, tuple(conditioning), result.independent))
        return result

    def test_batch(self, pairs: Sequence[tuple[str, str]],
                   conditioning: Sequence[str] = ()) -> list[CIResult]:
        epoch = self._epoch_fn()
        results: list[CIResult | None] = []
        missing: list[tuple[int, tuple[str, str]]] = []
        for i, (x, y) in enumerate(pairs):
            cached = self._cache.lookup(x, y, conditioning, epoch)
            results.append(cached)
            if cached is None:
                missing.append((i, (x, y)))
        if missing:
            inner_batch = getattr(self._inner, "test_batch", None)
            if inner_batch is not None:
                fresh = inner_batch([p for _, p in missing], conditioning)
            else:
                fresh = [self._inner.test(x, y, conditioning)
                         for _, (x, y) in missing]
            for (i, (x, y)), result in zip(missing, fresh):
                self._cache.store(x, y, conditioning, epoch, result)
                results[i] = result
        if self._trace is not None:
            for (x, y), result in zip(pairs, results):
                self._trace.append(
                    CIDecision(x, y, tuple(conditioning), result.independent))
        return results  # type: ignore[return-value]
