"""Conditional-independence tests used by the skeleton pruning phase.

The paper states that Unicorn prunes the fully connected constraint-respecting
skeleton "using standard statistical tests of independence.  In particular, we
use mutual info for discrete variables and Fisher z-test for continuous
variables".  ``FisherZTest`` and ``GSquareTest`` implement those two tests and
``MixedCITest`` dispatches between them (discretizing when a conditioning set
mixes types), which is what the Unicorn discovery pipeline instantiates by
default.

All tests expose the same interface: ``test(x, y, conditioning)`` returns a
:class:`CIResult` with the p-value and the decision at the configured
significance level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.stats.dataset import Dataset
from repro.stats.discretize import discretize_column
from repro.stats.entropy import mutual_information


@dataclass(frozen=True)
class CIResult:
    """Outcome of one conditional-independence test."""

    independent: bool
    p_value: float
    statistic: float

    def __bool__(self) -> bool:
        return bool(self.independent)


class CITest(Protocol):
    """Protocol implemented by every conditional-independence test."""

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        """Test ``x`` independent of ``y`` given ``conditioning``."""
        ...  # pragma: no cover


# --------------------------------------------------------------------------
# Fisher z test on partial correlations (continuous data)
# --------------------------------------------------------------------------
def _partial_correlation(data: np.ndarray, i: int, j: int,
                         conditioning: Sequence[int]) -> float:
    """Partial correlation of columns ``i`` and ``j`` given ``conditioning``.

    Computed by regressing both columns on the conditioning columns (via
    least squares) and correlating the residuals, which is numerically more
    stable than inverting the full correlation matrix when conditioning sets
    are small.
    """
    x = data[:, i]
    y = data[:, j]
    if conditioning:
        z = data[:, list(conditioning)]
        z = np.column_stack([z, np.ones(len(z))])
        beta_x, *_ = np.linalg.lstsq(z, x, rcond=None)
        beta_y, *_ = np.linalg.lstsq(z, y, rcond=None)
        x = x - z @ beta_x
        y = y - z @ beta_y
    sx = np.std(x)
    sy = np.std(y)
    if sx < 1e-12 or sy < 1e-12:
        return 0.0
    corr = float(np.corrcoef(x, y)[0, 1])
    if math.isnan(corr):
        return 0.0
    return max(-0.9999999, min(0.9999999, corr))


def fisher_z(data: np.ndarray, i: int, j: int,
             conditioning: Sequence[int] = (), alpha: float = 0.05) -> CIResult:
    """Fisher z conditional-independence test on raw column indices."""
    n = data.shape[0]
    k = len(conditioning)
    corr = _partial_correlation(data, i, j, conditioning)
    dof = n - k - 3
    if dof <= 0:
        # Not enough samples to decide; conservatively keep the edge.
        return CIResult(independent=False, p_value=0.0, statistic=float("inf"))
    z = 0.5 * math.log((1 + corr) / (1 - corr))
    statistic = math.sqrt(dof) * abs(z)
    p_value = float(2 * (1 - scipy_stats.norm.cdf(statistic)))
    return CIResult(independent=bool(p_value > alpha), p_value=p_value,
                    statistic=float(statistic))


class FisherZTest:
    """Fisher z test of zero partial correlation on a :class:`Dataset`."""

    def __init__(self, data: Dataset, alpha: float = 0.05) -> None:
        self._data = data
        self._alpha = alpha

    @property
    def alpha(self) -> float:
        return self._alpha

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        idx = self._data.column_index
        return fisher_z(self._data.values, idx(x), idx(y),
                        [idx(c) for c in conditioning], alpha=self._alpha)


# --------------------------------------------------------------------------
# G-square / mutual information test (discrete data)
# --------------------------------------------------------------------------
def g_square(x: np.ndarray, y: np.ndarray,
             conditioning: np.ndarray | None = None,
             alpha: float = 0.05) -> CIResult:
    """G-test of conditional independence for discrete (coded) variables.

    The G statistic equals ``2 * N * ln(2) * I(x; y | z)`` where ``I`` is the
    empirical conditional mutual information in bits; it is compared with a
    chi-square distribution whose degrees of freedom are
    ``(|X|-1)(|Y|-1)*|Z|``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    n = len(x)
    mi_bits = mutual_information(x, y, conditioning)
    statistic = 2.0 * n * math.log(2) * max(mi_bits, 0.0)

    x_levels = len(np.unique(x))
    y_levels = len(np.unique(y))
    if conditioning is None or conditioning.size == 0:
        z_cells = 1
    else:
        conditioning = np.asarray(conditioning)
        if conditioning.ndim == 1:
            conditioning = conditioning[:, None]
        z_cells = len(np.unique(
            [tuple(row) for row in conditioning.astype(np.int64)], axis=0))
    dof = max((x_levels - 1) * (y_levels - 1) * z_cells, 1)
    p_value = float(scipy_stats.chi2.sf(statistic, dof))
    return CIResult(independent=bool(p_value > alpha), p_value=p_value,
                    statistic=float(statistic))


class GSquareTest:
    """G-test on a :class:`Dataset`, discretizing continuous columns."""

    def __init__(self, data: Dataset, alpha: float = 0.05,
                 bins: int = 8) -> None:
        self._data = data
        self._alpha = alpha
        self._bins = bins
        self._codes: dict[str, np.ndarray] = {}

    @property
    def alpha(self) -> float:
        return self._alpha

    def _coded(self, column: str) -> np.ndarray:
        if column not in self._codes:
            self._codes[column] = discretize_column(
                self._data.column(column), bins=self._bins,
                already_discrete=self._data.is_discrete(column))
        return self._codes[column]

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        cond = None
        if conditioning:
            cond = np.column_stack([self._coded(c) for c in conditioning])
        return g_square(self._coded(x), self._coded(y), cond,
                        alpha=self._alpha)


# --------------------------------------------------------------------------
# Mixed dispatcher
# --------------------------------------------------------------------------
class MixedCITest:
    """Dispatch between Fisher z and the G-test based on column types.

    The G-test (mutual information) is used when both tested variables are
    discrete, the conditioning set is fully discrete, and the contingency
    table is small enough to be well populated at the available sample size;
    in every other case the Fisher z test on partial correlations is used
    (discrete codes are treated as numeric covariates, which is appropriate
    for the ordinal options that dominate systems configuration spaces and
    avoids the data fragmentation a fully stratified test would suffer at the
    low sample sizes Unicorn operates with).
    """

    def __init__(self, data: Dataset, alpha: float = 0.05,
                 bins: int = 8, max_cells_fraction: float = 0.2) -> None:
        self._data = data
        self._alpha = alpha
        self._fisher = FisherZTest(data, alpha=alpha)
        self._gsq = GSquareTest(data, alpha=alpha, bins=bins)
        self._max_cells_fraction = max_cells_fraction

    @property
    def alpha(self) -> float:
        return self._alpha

    def _cardinality(self, column: str) -> int:
        return len(np.unique(self._data.column(column)))

    def test(self, x: str, y: str,
             conditioning: Sequence[str] = ()) -> CIResult:
        involved = [x, y, *conditioning]
        all_discrete = all(self._data.is_discrete(c) for c in involved)
        if all_discrete:
            cells = 1
            for column in involved:
                cells *= self._cardinality(column)
            if cells <= max(self._max_cells_fraction * self._data.n_rows, 8):
                return self._gsq.test(x, y, conditioning)
        return self._fisher.test(x, y, conditioning)
