"""Entropy and mutual-information estimators.

The entropic causal discovery step (Kocaoglu et al.) needs Shannon entropies
of discrete (or discretized) variables: marginal, joint and conditional
entropies, the entropy of the exogenous noise in a candidate functional model
``Y = f(X, E)``, and the mutual information used as a discrete CI statistic.
All estimators are plug-in (maximum likelihood) estimators over empirical
frequency tables, computed in bits.
"""

from __future__ import annotations

import numpy as np


def _frequencies(values: np.ndarray) -> np.ndarray:
    """Empirical probabilities of the distinct values of a 1-D array."""
    _, counts = np.unique(values, return_counts=True)
    return counts / counts.sum()


def discrete_entropy(values: np.ndarray) -> float:
    """Shannon entropy (bits) of an empirically observed discrete variable."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    probs = _frequencies(values)
    return float(-np.sum(probs * np.log2(probs)))


def entropy_of_distribution(probs: np.ndarray) -> float:
    """Shannon entropy (bits) of an explicit probability vector."""
    probs = np.asarray(probs, dtype=float)
    probs = probs[probs > 0]
    if probs.size == 0:
        return 0.0
    return float(-np.sum(probs * np.log2(probs)))


def _joint_codes(*columns: np.ndarray) -> np.ndarray:
    """Encode the joint outcome of several discrete columns as one integer."""
    if not columns:
        raise ValueError("at least one column required")
    codes = np.zeros(len(columns[0]), dtype=np.int64)
    for col in columns:
        _, inverse = np.unique(col, return_inverse=True)
        codes = codes * (inverse.max() + 1) + inverse
    return codes


def joint_entropy(*columns: np.ndarray) -> float:
    """Entropy (bits) of the joint distribution of several discrete columns."""
    return discrete_entropy(_joint_codes(*columns))


def conditional_entropy(target: np.ndarray, *given: np.ndarray) -> float:
    """H(target | given...) in bits."""
    if not given:
        return discrete_entropy(target)
    return joint_entropy(target, *given) - joint_entropy(*given)


def mutual_information(x: np.ndarray, y: np.ndarray,
                       conditioning: np.ndarray | None = None) -> float:
    """(Conditional) mutual information I(x; y | conditioning) in bits.

    ``conditioning`` may be ``None``, a 1-D array, or a 2-D array whose
    columns are the conditioning variables.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if conditioning is None or conditioning.size == 0:
        return (discrete_entropy(x) + discrete_entropy(y)
                - joint_entropy(x, y))
    conditioning = np.asarray(conditioning)
    if conditioning.ndim == 1:
        cond_cols = [conditioning]
    else:
        cond_cols = [conditioning[:, i] for i in range(conditioning.shape[1])]
    h_xz = joint_entropy(x, *cond_cols)
    h_yz = joint_entropy(y, *cond_cols)
    h_xyz = joint_entropy(x, y, *cond_cols)
    h_z = joint_entropy(*cond_cols)
    return h_xz + h_yz - h_xyz - h_z


def exogenous_noise_entropy(cause: np.ndarray, effect: np.ndarray) -> float:
    """Entropy of the exogenous noise for the model ``effect = f(cause, E)``.

    Following the entropic-causality construction, for each value of the
    cause the conditional distribution of the effect must be produced by the
    exogenous variable ``E``; a simple and standard lower-bound proxy for
    ``H(E)`` is the conditional entropy ``H(effect | cause)``, which is what
    Unicorn's orientation heuristic compares across the two candidate
    directions (the direction with the lower noise entropy is preferred).
    """
    return conditional_entropy(np.asarray(effect), np.asarray(cause))
