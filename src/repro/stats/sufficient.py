"""Sufficient statistics for incremental conditional-independence testing.

The active loop of Unicorn appends one measured configuration per iteration
and then re-estimates the causal model.  Re-running every CI test from the
raw data repeats the same O(n) reductions thousands of times per iteration;
:class:`SufficientStats` instead maintains the quantities the tests actually
need — per-column sums, the cross-product matrix ``X^T X``, discretization
codes and cardinalities — and updates them incrementally as rows arrive.

From the cross-product matrix every (partial) correlation follows by a Schur
complement, so a Fisher z test costs one small ``k x k`` solve instead of two
least-squares fits over the raw rows, and a *batch* of tests sharing one
conditioning set costs a single solve for all pairs at once
(:meth:`partial_correlations`).

Synchronisation is epoch-based: the backing :class:`~repro.stats.dataset.Dataset`
bumps ``data_epoch`` on every in-place append, and every accessor here calls
:meth:`refresh` first, which folds only the newly appended rows into the sums
and drops the per-epoch code caches.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.stats.dataset import Dataset
from repro.stats.discretize import discretize_column

#: Clamp for correlations so the Fisher transform stays finite.
_CORR_CLAMP = 0.9999999
#: Variances below this are treated as zero (constant column).
_VAR_EPS = 1e-24


class SufficientStats:
    """Incrementally maintained sufficient statistics over a dataset."""

    def __init__(self, data: Dataset) -> None:
        self._data = data
        p = data.n_columns
        self._n = 0
        self._sum = np.zeros(p)
        self._cross = np.zeros((p, p))
        # Per-column shift (the first observed row) applied before
        # accumulating: covariance is shift-invariant, and centering near the
        # data keeps ``cross/n - mean*mean`` from catastrophically cancelling
        # for columns with large magnitudes (timestamps, byte counts).
        self._shift: np.ndarray | None = None
        self._epoch = -1
        self._codes: dict[str, np.ndarray] = {}
        self._cardinality: dict[str, int] = {}
        self._cov: np.ndarray | None = None
        self.refresh()

    # --------------------------------------------------------------- syncing
    @property
    def data(self) -> Dataset:
        return self._data

    @property
    def n_rows(self) -> int:
        self.refresh()
        return self._n

    @property
    def epoch(self) -> int:
        """Data epoch these statistics are synchronised with."""
        self.refresh()
        return self._epoch

    def refresh(self) -> None:
        """Fold rows appended since the last sync into the running sums."""
        if self._epoch == self._data.data_epoch and self._n == self._data.n_rows:
            return
        values = self._data.values
        if self._data.n_rows < self._n:
            # Rows can only be appended in place; anything else means the
            # dataset was rebuilt underneath us — start over.
            self._n = 0
            self._sum[:] = 0.0
            self._cross[:] = 0.0
            self._shift = None
        new = values[self._n:]
        if len(new):
            if self._shift is None:
                self._shift = new[0].copy()
            shifted = new - self._shift
            self._sum += shifted.sum(axis=0)
            self._cross += shifted.T @ shifted
            self._n = self._data.n_rows
        self._epoch = self._data.data_epoch
        # Quantile bin edges move with the data, so codes cannot be updated
        # incrementally; they are recomputed lazily, once per epoch.  The
        # covariance matrix is likewise re-derived (cheaply, from the sums)
        # on first use after an epoch bump.
        self._codes.clear()
        self._cardinality.clear()
        self._cov = None

    # ------------------------------------------------------------- moments
    def means(self) -> np.ndarray:
        self.refresh()
        means = self._sum / max(self._n, 1)
        if self._shift is not None:
            means = means + self._shift
        return means

    def covariance(self) -> np.ndarray:
        """Population covariance matrix derived from the running sums.

        Cached per data epoch: within one discovery pass thousands of CI
        tests share the same matrix.
        """
        self.refresh()
        if self._cov is None:
            n = max(self._n, 1)
            mean = self._sum / n
            self._cov = self._cross / n - np.outer(mean, mean)
        return self._cov

    def correlation(self, i: int, j: int) -> float:
        cov = self.covariance()
        return self._normalise(cov[i, j], cov[i, i], cov[j, j])

    # ------------------------------------------- partial correlations (Schur)
    def partial_correlations(self, targets: Sequence[int],
                             conditioning: Sequence[int] = ()
                             ) -> np.ndarray:
        """Partial correlations of every ``targets`` pair given ``conditioning``.

        Computed from the covariance matrix by one Schur complement:
        ``S = C_TT - C_TZ C_ZZ^{-1} C_ZT`` is the conditional covariance of
        the target block, and normalising its off-diagonal entries yields the
        partial correlations — the same quantity as correlating the residuals
        of per-column least-squares regressions on the conditioning block,
        without touching the raw rows.
        """
        cov = self.covariance()
        t = list(targets)
        block = cov[np.ix_(t, t)]
        z = list(conditioning)
        if z:
            czz = cov[np.ix_(z, z)]
            ctz = cov[np.ix_(t, z)]
            try:
                solved = np.linalg.solve(czz, ctz.T)
            except np.linalg.LinAlgError:
                solved = np.linalg.pinv(czz) @ ctz.T
            block = block - ctz @ solved
        out = np.empty((len(t), len(t)))
        diag = np.diag(block)
        for a in range(len(t)):
            out[a, a] = 1.0
            for b in range(a + 1, len(t)):
                r = self._normalise(block[a, b], diag[a], diag[b])
                out[a, b] = out[b, a] = r
        return out

    def partial_correlation(self, i: int, j: int,
                            conditioning: Sequence[int] = ()) -> float:
        z = list(conditioning)
        if len(z) <= 1:
            # Scalar fast path for the dominant cases of the skeleton search
            # (empty and singleton conditioning sets): plain arithmetic on
            # cached covariance entries, no submatrix assembly or solve.
            cov = self.covariance()
            if not z:
                return self._normalise(cov[i, j], cov[i, i], cov[j, j])
            k = z[0]
            ckk = cov[k, k]
            if ckk < _VAR_EPS:
                return self._normalise(cov[i, j], cov[i, i], cov[j, j])
            s_ij = cov[i, j] - cov[i, k] * cov[j, k] / ckk
            s_ii = cov[i, i] - cov[i, k] ** 2 / ckk
            s_jj = cov[j, j] - cov[j, k] ** 2 / ckk
            return self._normalise(s_ij, s_ii, s_jj)
        return float(self.partial_correlations([i, j], z)[0, 1])

    @staticmethod
    def _normalise(cov_ij: float, var_i: float, var_j: float) -> float:
        if var_i < _VAR_EPS or var_j < _VAR_EPS:
            return 0.0
        r = cov_ij / math.sqrt(var_i * var_j)
        if math.isnan(r):
            return 0.0
        return max(-_CORR_CLAMP, min(_CORR_CLAMP, r))

    # ----------------------------------------------------- discrete summaries
    def codes(self, column: str, bins: int = 8) -> np.ndarray:
        """Discretization codes for one column, cached per data epoch."""
        self.refresh()
        key = f"{column}#{bins}"
        if key not in self._codes:
            self._codes[key] = discretize_column(
                self._data.column(column), bins=bins,
                already_discrete=self._data.is_discrete(column))
        return self._codes[key]

    def cardinality(self, column: str) -> int:
        """Number of distinct values in a column, cached per data epoch."""
        self.refresh()
        if column not in self._cardinality:
            self._cardinality[column] = int(
                np.unique(self._data.column(column)).size)
        return self._cardinality[column]
