"""Lossless JSON codec for numpy arrays.

The persistent model store serializes fitted models to JSON documents.
Coefficient vectors and data matrices must survive the round trip
*bitwise* — the serving tier's byte-identity contract compares answers
from a loaded model against a freshly fitted one — so arrays are not
written as decimal literals (which would be fine for Python floats but
wasteful) but as base64 of their raw little-endian bytes plus dtype and
shape.  ``array_from_doc(array_to_doc(a))`` reproduces ``a`` exactly for
any real dtype.
"""

from __future__ import annotations

import base64

import numpy as np


def array_to_doc(array: np.ndarray) -> dict:
    """JSON-safe document encoding ``array`` losslessly.

    The array is converted to C order and little-endian byte order before
    encoding, so the document is identical across producing platforms.
    """
    array = np.ascontiguousarray(array)
    dtype = array.dtype.newbyteorder("<")
    return {
        "dtype": dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(
            array.astype(dtype, copy=False).tobytes()).decode("ascii"),
    }


def array_from_doc(doc: dict) -> np.ndarray:
    """Rebuild the array encoded by :func:`array_to_doc`, bitwise.

    Raises
    ------
    KeyError, ValueError, TypeError
        If the document is malformed (the store's fail-closed loaders
        catch these and fall back to refitting).
    """
    dtype = np.dtype(doc["dtype"])
    shape = tuple(int(n) for n in doc["shape"])
    raw = base64.b64decode(doc["data"].encode("ascii"), validate=True)
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    # frombuffer yields a read-only view over the decoded bytes; consumers
    # (growable datasets, in-place refits) expect writable storage.
    return array.astype(dtype.newbyteorder("="), copy=True)
