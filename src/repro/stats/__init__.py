"""Statistical substrate for causal discovery.

Unicorn's structure-learning stage prunes a fully connected skeleton with
statistical tests of conditional independence: Fisher's z test on partial
correlations for continuous variables and a G-test (equivalently, a mutual
information test) for discrete variables, as stated in Stage II of the paper.
This package implements both, a mixed-data dispatcher that discretizes on
demand, and the entropy estimators required by the entropic orientation step.
"""

from repro.stats.dataset import Dataset
from repro.stats.independence import (
    CachedCITest,
    CIDecision,
    CIDecisionCache,
    CITest,
    FisherZTest,
    GSquareTest,
    MixedCITest,
    fisher_z,
    g_square,
)
from repro.stats.sufficient import SufficientStats
from repro.stats.entropy import (
    conditional_entropy,
    discrete_entropy,
    joint_entropy,
    mutual_information,
)
from repro.stats.discretize import discretize_column, discretize_matrix

__all__ = [
    "Dataset",
    "SufficientStats",
    "CachedCITest",
    "CIDecision",
    "CIDecisionCache",
    "CITest",
    "FisherZTest",
    "GSquareTest",
    "MixedCITest",
    "fisher_z",
    "g_square",
    "discrete_entropy",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "discretize_column",
    "discretize_matrix",
]
