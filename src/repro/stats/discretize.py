"""Discretization helpers.

Entropy-based orientation and the discrete CI test operate on categorical
codes; continuous measurements (for example latency in seconds or cache-miss
counts) are binned with equal-frequency (quantile) binning, which is robust to
the heavy-tailed performance distributions highlighted in the paper (Fig. 3).
"""

from __future__ import annotations

import numpy as np


def discretize_column(values: np.ndarray, bins: int = 8,
                      already_discrete: bool = False) -> np.ndarray:
    """Return integer codes for one column.

    Discrete columns are label-encoded as-is; continuous columns are binned
    into at most ``bins`` equal-frequency bins.
    """
    values = np.asarray(values, dtype=float)
    unique = np.unique(values)
    if already_discrete or unique.size <= bins:
        _, codes = np.unique(values, return_inverse=True)
        return codes.astype(np.int64)
    quantiles = np.quantile(values, np.linspace(0, 1, bins + 1)[1:-1])
    edges = np.unique(quantiles)
    return np.digitize(values, edges).astype(np.int64)


def discretize_matrix(values: np.ndarray, bins: int = 8,
                      discrete_mask: np.ndarray | None = None) -> np.ndarray:
    """Discretize every column of a matrix; see :func:`discretize_column`."""
    values = np.asarray(values, dtype=float)
    out = np.empty(values.shape, dtype=np.int64)
    for j in range(values.shape[1]):
        is_discrete = bool(discrete_mask[j]) if discrete_mask is not None else False
        out[:, j] = discretize_column(values[:, j], bins=bins,
                                      already_discrete=is_discrete)
    return out
