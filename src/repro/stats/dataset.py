"""A lightweight column-named dataset.

The offline environment provides numpy but not pandas, so measurement data is
carried in a small ``Dataset`` wrapper: a 2-D float array with named columns
and per-column metadata about whether a column is discrete.  All discovery,
inference and baseline code operates on ``Dataset`` instances.

The active-learning loop appends one measured configuration per iteration, so
the backing array is growable: :meth:`append_rows_inplace` writes into spare
capacity (doubling it when exhausted) instead of reallocating, and bumps a
``data_epoch`` counter that lets derived caches (sufficient statistics,
discretization codes, CI decisions) detect that the data changed.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


class Dataset:
    """A named-column matrix of measurements.

    Parameters
    ----------
    columns:
        Column names, in order.
    values:
        Array of shape ``(n_rows, n_columns)``.  Copied and cast to float.
    discrete:
        Optional set of column names whose values should be treated as
        discrete (categorical / integer-coded) by statistical tests.
    """

    def __init__(self, columns: Sequence[str], values: np.ndarray,
                 discrete: Iterable[str] = ()) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("values must be a 2-D array")
        if values.shape[1] != len(columns):
            raise ValueError(
                f"expected {len(columns)} columns, got {values.shape[1]}")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self._columns = list(columns)
        self._index = {name: i for i, name in enumerate(self._columns)}
        self._storage = values.copy()
        self._n_rows = values.shape[0]
        self._epoch = 0
        self._discrete = {c for c in discrete if c in self._index}

    # ------------------------------------------------------------ properties
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def values(self) -> np.ndarray:
        """The measurement matrix (a view into the growable storage).

        The view is only valid until the next :meth:`append_rows_inplace`
        that forces a reallocation; consumers that cache it should re-read
        when :attr:`data_epoch` changes.
        """
        return self._storage[:self._n_rows]

    @property
    def data_epoch(self) -> int:
        """Counter bumped by every in-place mutation of the data."""
        return self._epoch

    @property
    def discrete_columns(self) -> set[str]:
        return set(self._discrete)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return self._storage.shape[1]

    def __len__(self) -> int:
        return self.n_rows

    def is_discrete(self, column: str) -> bool:
        return column in self._discrete

    # --------------------------------------------------------------- access
    def column(self, name: str) -> np.ndarray:
        """Return a copy-free view of one column."""
        return self.values[:, self._index[name]]

    def column_index(self, name: str) -> int:
        return self._index[name]

    def subset(self, columns: Sequence[str]) -> "Dataset":
        """Dataset restricted to the given columns (in the given order)."""
        idx = [self._index[c] for c in columns]
        return Dataset(columns, self.values[:, idx],
                       discrete=[c for c in columns if c in self._discrete])

    def row(self, i: int) -> dict[str, float]:
        """Row ``i`` as a ``{column: value}`` mapping."""
        if not 0 <= i < self._n_rows:
            raise IndexError(i)
        return {c: float(self._storage[i, j])
                for j, c in enumerate(self._columns)}

    def rows(self) -> list[dict[str, float]]:
        return [self.row(i) for i in range(self.n_rows)]

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, float]],
                  columns: Sequence[str] | None = None,
                  discrete: Iterable[str] = ()) -> "Dataset":
        """Build a dataset from a list of dict rows."""
        if not rows:
            raise ValueError("cannot build a Dataset from zero rows")
        if columns is None:
            columns = list(rows[0].keys())
        values = np.array([[float(r[c]) for c in columns] for r in rows])
        return cls(columns, values, discrete=discrete)

    def append_rows(self, rows: Sequence[Mapping[str, float]]) -> "Dataset":
        """Return a new dataset with ``rows`` appended."""
        extra = np.array([[float(r[c]) for c in self._columns] for r in rows])
        values = np.vstack([self.values, extra]) if len(rows) else self.values
        return Dataset(self._columns, values, discrete=self._discrete)

    def append_rows_inplace(self, rows: Sequence[Mapping[str, float]]) -> None:
        """Append ``rows`` to this dataset, growing the backing storage.

        Spare capacity is doubled when exhausted, so a sequence of
        single-row appends (one per active-loop iteration) costs amortised
        O(row) instead of reallocating the full matrix each time.  Bumps
        :attr:`data_epoch` so epoch-keyed caches know to resynchronise.
        """
        if not rows:
            return
        extra = np.array([[float(r[c]) for c in self._columns] for r in rows],
                         dtype=float)
        needed = self._n_rows + len(rows)
        if needed > self._storage.shape[0]:
            capacity = max(needed, 2 * self._storage.shape[0], 16)
            storage = np.empty((capacity, self._storage.shape[1]), dtype=float)
            storage[:self._n_rows] = self._storage[:self._n_rows]
            self._storage = storage
        self._storage[self._n_rows:needed] = extra
        self._n_rows = needed
        self._epoch += 1

    def copy(self) -> "Dataset":
        """Independent copy of this dataset (rows, columns, discrete flags)."""
        return Dataset(self._columns, self.values, discrete=self._discrete)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe snapshot of the dataset (values bitwise, via base64).

        Only the live rows are captured — spare growth capacity and the
        ``data_epoch`` counter are reconstruction details, not data.
        """
        from repro.stats.codec import array_to_doc

        return {
            "columns": list(self._columns),
            "discrete": sorted(self._discrete),
            "values": array_to_doc(self.values),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Dataset":
        """Rebuild a dataset snapshotted by :meth:`to_dict`, bitwise."""
        from repro.stats.codec import array_from_doc

        return cls(payload["columns"], array_from_doc(payload["values"]),
                   discrete=payload.get("discrete", ()))

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets with identical columns."""
        if other.columns != self._columns:
            raise ValueError("column mismatch in Dataset.concat")
        values = np.vstack([self.values, other.values])
        return Dataset(self._columns, values,
                       discrete=self._discrete | other.discrete_columns)

    def with_columns_dropped(self, columns: Iterable[str]) -> "Dataset":
        drop = set(columns)
        keep = [c for c in self._columns if c not in drop]
        return self.subset(keep)

    # ------------------------------------------------------------- summaries
    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column min / max / mean / std summary."""
        out: dict[str, dict[str, float]] = {}
        for name in self._columns:
            col = self.column(name)
            out[name] = {
                "min": float(np.min(col)),
                "max": float(np.max(col)),
                "mean": float(np.mean(col)),
                "std": float(np.std(col)),
            }
        return out

    def __repr__(self) -> str:
        return f"Dataset(rows={self.n_rows}, columns={self.n_columns})"
