"""A lightweight column-named dataset.

The offline environment provides numpy but not pandas, so measurement data is
carried in a small ``Dataset`` wrapper: a 2-D float array with named columns
and per-column metadata about whether a column is discrete.  All discovery,
inference and baseline code operates on ``Dataset`` instances.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


class Dataset:
    """A named-column matrix of measurements.

    Parameters
    ----------
    columns:
        Column names, in order.
    values:
        Array of shape ``(n_rows, n_columns)``.  Copied and cast to float.
    discrete:
        Optional set of column names whose values should be treated as
        discrete (categorical / integer-coded) by statistical tests.
    """

    def __init__(self, columns: Sequence[str], values: np.ndarray,
                 discrete: Iterable[str] = ()) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError("values must be a 2-D array")
        if values.shape[1] != len(columns):
            raise ValueError(
                f"expected {len(columns)} columns, got {values.shape[1]}")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self._columns = list(columns)
        self._index = {name: i for i, name in enumerate(self._columns)}
        self._values = values.copy()
        self._discrete = {c for c in discrete if c in self._index}

    # ------------------------------------------------------------ properties
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def discrete_columns(self) -> set[str]:
        return set(self._discrete)

    @property
    def n_rows(self) -> int:
        return self._values.shape[0]

    @property
    def n_columns(self) -> int:
        return self._values.shape[1]

    def __len__(self) -> int:
        return self.n_rows

    def is_discrete(self, column: str) -> bool:
        return column in self._discrete

    # --------------------------------------------------------------- access
    def column(self, name: str) -> np.ndarray:
        """Return a copy-free view of one column."""
        return self._values[:, self._index[name]]

    def column_index(self, name: str) -> int:
        return self._index[name]

    def subset(self, columns: Sequence[str]) -> "Dataset":
        """Dataset restricted to the given columns (in the given order)."""
        idx = [self._index[c] for c in columns]
        return Dataset(columns, self._values[:, idx],
                       discrete=[c for c in columns if c in self._discrete])

    def row(self, i: int) -> dict[str, float]:
        """Row ``i`` as a ``{column: value}`` mapping."""
        return {c: float(self._values[i, j])
                for j, c in enumerate(self._columns)}

    def rows(self) -> list[dict[str, float]]:
        return [self.row(i) for i in range(self.n_rows)]

    # ------------------------------------------------------------ construction
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, float]],
                  columns: Sequence[str] | None = None,
                  discrete: Iterable[str] = ()) -> "Dataset":
        """Build a dataset from a list of dict rows."""
        if not rows:
            raise ValueError("cannot build a Dataset from zero rows")
        if columns is None:
            columns = list(rows[0].keys())
        values = np.array([[float(r[c]) for c in columns] for r in rows])
        return cls(columns, values, discrete=discrete)

    def append_rows(self, rows: Sequence[Mapping[str, float]]) -> "Dataset":
        """Return a new dataset with ``rows`` appended."""
        extra = np.array([[float(r[c]) for c in self._columns] for r in rows])
        values = np.vstack([self._values, extra]) if len(rows) else self._values
        return Dataset(self._columns, values, discrete=self._discrete)

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets with identical columns."""
        if other.columns != self._columns:
            raise ValueError("column mismatch in Dataset.concat")
        values = np.vstack([self._values, other.values])
        return Dataset(self._columns, values,
                       discrete=self._discrete | other.discrete_columns)

    def with_columns_dropped(self, columns: Iterable[str]) -> "Dataset":
        drop = set(columns)
        keep = [c for c in self._columns if c not in drop]
        return self.subset(keep)

    # ------------------------------------------------------------- summaries
    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column min / max / mean / std summary."""
        out: dict[str, dict[str, float]] = {}
        for name in self._columns:
            col = self.column(name)
            out[name] = {
                "min": float(np.min(col)),
                "max": float(np.max(col)),
                "mean": float(np.mean(col)),
                "std": float(np.std(col)),
            }
        return out

    def __repr__(self) -> str:
        return f"Dataset(rows={self.n_rows}, columns={self.n_columns})"
