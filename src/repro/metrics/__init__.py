"""Evaluation metrics.

Implements the metrics of Section 6: ACE-weighted Jaccard accuracy,
precision/recall of predicted root causes, performance gain of a repair,
hypervolume error for multi-objective optimization, MAPE and rank-stability
metrics for the transferability analyses, plus the graph distances re-exported
from :mod:`repro.graph.distances`.
"""

from repro.graph.distances import skeleton_f1, structural_hamming_distance
from repro.metrics.debugging import (
    ace_weighted_accuracy,
    gain,
    precision_recall,
)
from repro.metrics.optimization import (
    hypervolume,
    hypervolume_error,
    pareto_front,
)
from repro.metrics.regression import (
    mean_absolute_percentage_error,
    rank_correlation,
    term_stability,
)

__all__ = [
    "ace_weighted_accuracy",
    "precision_recall",
    "gain",
    "hypervolume",
    "hypervolume_error",
    "pareto_front",
    "mean_absolute_percentage_error",
    "rank_correlation",
    "term_stability",
    "structural_hamming_distance",
    "skeleton_f1",
]
