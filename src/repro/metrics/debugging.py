"""Debugging metrics: accuracy, precision, recall and gain.

Accuracy is the ACE-weighted Jaccard similarity between the predicted and
true root causes: with ``A`` the options recommended by an approach, ``B``
the options of the ground-truth fix, and ``w`` the ground-truth average
causal effects of options on the objective,

    accuracy = sum(w[o] for o in A ∩ B) / sum(w[o] for o in A ∪ B)

Precision and recall are the usual set metrics over predicted vs. true root
causes, and gain is the relative improvement of the suggested fix over the
observed fault.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def ace_weighted_accuracy(predicted: Iterable[str], true: Iterable[str],
                          weights: Mapping[str, float]) -> float:
    """ACE-weighted Jaccard similarity between predicted and true root causes."""
    predicted_set = set(predicted)
    true_set = set(true)
    union = predicted_set | true_set
    if not union:
        return 1.0
    intersection = predicted_set & true_set

    def weight(option: str) -> float:
        return max(float(weights.get(option, 0.0)), 0.0)

    union_weight = sum(weight(o) for o in union)
    if union_weight <= 0:
        # Degenerate weights: fall back to the unweighted Jaccard index.
        return len(intersection) / len(union)
    return sum(weight(o) for o in intersection) / union_weight


def precision_recall(predicted: Iterable[str],
                     true: Iterable[str]) -> dict[str, float]:
    """Precision and recall of the predicted root causes."""
    predicted_set = set(predicted)
    true_set = set(true)
    true_positive = len(predicted_set & true_set)
    precision = true_positive / len(predicted_set) if predicted_set else 0.0
    recall = true_positive / len(true_set) if true_set else 0.0
    return {"precision": precision, "recall": recall}


def gain(fault_value: float, fixed_value: float,
         direction: str = "minimize") -> float:
    """Percentage improvement of the fix over the fault.

    For minimised objectives this is ``(fault - fixed) / fault * 100``; for
    maximised objectives the sign is flipped so that positive gain always
    means improvement.
    """
    denominator = abs(fault_value) if fault_value != 0 else 1e-9
    if direction == "minimize":
        return (fault_value - fixed_value) / denominator * 100.0
    return (fixed_value - fault_value) / denominator * 100.0
