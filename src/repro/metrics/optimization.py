"""Multi-objective optimization metrics: Pareto fronts and hypervolume.

The multi-objective comparison against PESMO (Fig. 15c/d) uses the
*hypervolume error*: one minus the ratio of the hypervolume dominated by the
discovered Pareto front to the hypervolume dominated by a reference (ideal)
front, measured against a fixed reference point.  All objectives are treated
as minimised; callers negate maximised objectives first.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def pareto_front(points: Sequence[Sequence[float]]) -> list[tuple[float, ...]]:
    """Non-dominated subset of ``points`` (all objectives minimised)."""
    array = np.asarray(points, dtype=float)
    if array.size == 0:
        return []
    keep: list[int] = []
    for i, candidate in enumerate(array):
        dominated = False
        for j, other in enumerate(array):
            if i == j:
                continue
            if np.all(other <= candidate) and np.any(other < candidate):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    front = [tuple(float(v) for v in array[i]) for i in keep]
    return sorted(set(front))


def hypervolume(front: Sequence[Sequence[float]],
                reference: Sequence[float]) -> float:
    """Hypervolume dominated by a (minimisation) front w.r.t. a reference point.

    Exact for one or two objectives (the paper's case); for higher dimensions
    a Monte-Carlo estimate with a fixed seed is used.
    """
    points = [tuple(float(v) for v in p) for p in pareto_front(front)]
    reference = tuple(float(v) for v in reference)
    if not points:
        return 0.0
    dim = len(reference)
    points = [p for p in points if all(p[i] <= reference[i] for i in range(dim))]
    if not points:
        return 0.0
    if dim == 1:
        return max(reference[0] - min(p[0] for p in points), 0.0)
    if dim == 2:
        # Sweep over x ascending; each point contributes the rectangle between
        # its y and the best (lowest) y seen so far, out to the reference x.
        total = 0.0
        best_y = reference[1]
        for x, y in sorted(points):
            if y < best_y:
                total += (reference[0] - x) * (best_y - y)
                best_y = y
        return total
    rng = np.random.default_rng(0)
    lower = np.min(np.asarray(points), axis=0)
    samples = rng.uniform(lower, reference, size=(20_000, dim))
    dominated = np.zeros(len(samples), dtype=bool)
    for point in points:
        dominated |= np.all(samples >= np.asarray(point), axis=1)
    box_volume = float(np.prod(np.asarray(reference) - lower))
    return box_volume * float(np.mean(dominated))


def hypervolume_error(front: Sequence[Sequence[float]],
                      reference_front: Sequence[Sequence[float]],
                      reference_point: Sequence[float]) -> float:
    """1 - HV(front) / HV(reference_front), clipped to [0, 1]."""
    reference_volume = hypervolume(reference_front, reference_point)
    if reference_volume <= 0:
        return 0.0
    achieved = hypervolume(front, reference_point)
    return float(min(max(1.0 - achieved / reference_volume, 0.0), 1.0))
