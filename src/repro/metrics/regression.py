"""Prediction-quality and stability metrics for the transferability analyses.

Fig. 4 and Fig. 5 compare performance-influence models and causal models
learned in a *source* environment against the same models learned in a
*target* environment: the number of common terms, the prediction error (MAPE)
within and across environments, the Spearman rank correlation between the
term coefficients, and the coefficient differences of common terms.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats


def mean_absolute_percentage_error(actual: Sequence[float],
                                   predicted: Sequence[float]) -> float:
    """MAPE in percent, robust to zero actuals."""
    actual_arr = np.asarray(actual, dtype=float)
    predicted_arr = np.asarray(predicted, dtype=float)
    denominator = np.maximum(np.abs(actual_arr), 1e-9)
    return float(np.mean(np.abs(actual_arr - predicted_arr) / denominator)
                 * 100.0)


def rank_correlation(source_terms: Mapping[str, float],
                     target_terms: Mapping[str, float]) -> dict[str, float]:
    """Spearman rank correlation between coefficients of common terms."""
    common = sorted(set(source_terms) & set(target_terms))
    if len(common) < 3:
        return {"rho": 0.0, "p_value": 1.0, "common_terms": float(len(common))}
    source_values = [source_terms[t] for t in common]
    target_values = [target_terms[t] for t in common]
    rho, p_value = scipy_stats.spearmanr(source_values, target_values)
    if np.isnan(rho):
        rho, p_value = 0.0, 1.0
    return {"rho": float(rho), "p_value": float(p_value),
            "common_terms": float(len(common))}


def term_stability(source_terms: Mapping[str, float],
                   target_terms: Mapping[str, float]) -> dict[str, float]:
    """Term-stability summary used for the Fig. 4 bar groups.

    Reports the number of terms in each model, the number of common terms,
    and the mean absolute coefficient difference over common terms
    (the Fig. 5 quantity).
    """
    common = set(source_terms) & set(target_terms)
    if common:
        differences = [abs(source_terms[t] - target_terms[t]) for t in common]
        mean_diff = float(np.mean(differences))
    else:
        mean_diff = 0.0
    return {
        "source_terms": float(len(source_terms)),
        "target_terms": float(len(target_terms)),
        "common_terms": float(len(common)),
        "mean_coefficient_difference": mean_diff,
    }
