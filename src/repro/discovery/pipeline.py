"""The Unicorn causal-model-learning pipeline (Stage II / Stage IV).

``CausalModelLearner`` wires together the skeleton search, FCI orientation
and entropic resolution into the three-step procedure of Fig. 9, and exposes
``update`` for the incremental re-learning of Stage IV (Fig. 10).

``learn`` is the cold-start path: it rebuilds the statistical session
(sufficient statistics, CI tests, orienter) and runs FCI from the fully
connected constraint graph.  ``update`` is genuinely incremental: new samples
are appended *in place* to the model's dataset (bumping its data epoch), and
CI decisions far from the significance threshold are replayed from the
:class:`CIDecisionCache` instead of being recomputed.  Three nested fast
paths re-estimate the structure:

1. *Trace validation* — the previous discovery run's CI-decision sequence is
   revalidated against the grown data (mostly cache lookups); if every
   decision still holds, the previous skeleton, separating sets and PAG are
   what a cold traversal would reproduce and are reused verbatim.  The
   guarantee is exact up to the cache's margin policy: decisions far from
   the significance threshold may be served stale for a few epochs, so a
   confident decision that flips immediately after new rows arrive is
   caught one retest window later rather than instantly.
2. *Structural warm start* (models without a recorded trace) — the skeleton
   search starts from the previous graph, retests each removed edge against
   its recorded separating set and each survivor against its current
   neighbourhood, and carries the separating sets into FCI orientation.
3. *Cached replay* — when the structure moved, the cold traversal re-runs
   with the CI cache serving every non-borderline decision, which costs
   dictionary lookups plus the genuinely new tests.

Because the constraint structure and the CI decisions on the old data are
largely stable, the learned graph converges as the active loop acquires
samples (Fig. 11a tracks this via the structural Hamming distance) — and the
incremental path re-examines only the borderline fringe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.discovery.constraints import StructuralConstraints
from repro.discovery.entropic import EntropicOrienter
from repro.discovery.fci import FCIResult, fci
from repro.discovery.skeleton import SkeletonState
from repro.graph.mixed_graph import MixedGraph
from repro.stats.dataset import Dataset
from repro.stats.independence import (
    CachedCITest,
    CIDecision,
    CIDecisionCache,
    MixedCITest,
)
from repro.stats.sufficient import SufficientStats


@dataclass
class LearnedModel:
    """A learned causal performance model plus learning diagnostics."""

    graph: MixedGraph
    pag: MixedGraph
    constraints: StructuralConstraints
    data: Dataset
    ci_tests_performed: int = 0
    discovery_seconds: float = 0.0
    history: list[dict[str, float]] = field(default_factory=list)
    #: warm-start snapshot for the next incremental update.
    skeleton_state: SkeletonState | None = None
    #: the CI-decision sequence of the discovery run that produced this
    #: model; revalidating it verbatim proves the structure is still the one
    #: a cold traversal would find (see ``CausalModelLearner.update``).
    decision_trace: list[CIDecision] | None = field(default=None, repr=False)
    #: True when this model came out of the incremental path.
    incremental: bool = False

    @property
    def n_samples(self) -> int:
        return self.data.n_rows

    def average_degree(self) -> float:
        return self.graph.average_degree()

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe snapshot of the model and its warm-start machinery.

        Everything a deserialised model needs to keep taking the
        incremental :meth:`CausalModelLearner.update` fast path is
        captured: graph and PAG (via :meth:`MixedGraph.to_dict`), the
        dataset (bitwise, via its base64 codec), the skeleton warm-start
        state and the CI-decision trace.  Structural constraints are *not*
        embedded — they are a pure function of the subject spec and the
        loader passes them back to :meth:`from_dict`.
        """
        skeleton = None
        if self.skeleton_state is not None:
            skeleton = {
                "edges": sorted(sorted(pair)
                                for pair in self.skeleton_state.edges),
                "separating_sets": [
                    [sorted(pair), sorted(members)]
                    for pair, members in sorted(
                        self.skeleton_state.separating_sets.items(),
                        key=lambda item: sorted(item[0]))],
            }
        trace = None
        if self.decision_trace is not None:
            trace = [[d.x, d.y, list(d.conditioning), bool(d.independent)]
                     for d in self.decision_trace]
        return {
            "graph": self.graph.to_dict(),
            "pag": self.pag.to_dict(),
            "data": self.data.to_dict(),
            "ci_tests_performed": int(self.ci_tests_performed),
            "history": [dict(h) for h in self.history],
            "skeleton_state": skeleton,
            "decision_trace": trace,
            "incremental": bool(self.incremental),
        }

    @classmethod
    def from_dict(cls, payload: dict,
                  constraints: StructuralConstraints) -> "LearnedModel":
        """Rebuild the model snapshotted by :meth:`to_dict`.

        Parameters
        ----------
        payload:
            The :meth:`to_dict` document.
        constraints:
            The structural constraints of the owning subject (derived from
            its spec — see :class:`repro.core.unicorn.Unicorn`).
        """
        skeleton = None
        if payload.get("skeleton_state") is not None:
            doc = payload["skeleton_state"]
            skeleton = SkeletonState(
                edges={frozenset(pair) for pair in doc["edges"]},
                separating_sets={frozenset(pair): set(members)
                                 for pair, members
                                 in doc["separating_sets"]})
        trace = None
        if payload.get("decision_trace") is not None:
            trace = [CIDecision(x=x, y=y, conditioning=tuple(conditioning),
                                independent=bool(independent))
                     for x, y, conditioning, independent
                     in payload["decision_trace"]]
        return cls(
            graph=MixedGraph.from_dict(payload["graph"]),
            pag=MixedGraph.from_dict(payload["pag"]),
            constraints=constraints,
            data=Dataset.from_dict(payload["data"]),
            ci_tests_performed=int(payload.get("ci_tests_performed", 0)),
            history=[dict(h) for h in payload.get("history", [])],
            skeleton_state=skeleton,
            decision_trace=trace,
            incremental=bool(payload.get("incremental", False)))


@dataclass
class _LearnerSession:
    """Statistical machinery kept alive across incremental updates."""

    data: Dataset
    variables: list[str]
    stats: SufficientStats
    ci_test: CachedCITest
    orienter: EntropicOrienter


class CausalModelLearner:
    """Learn and incrementally update causal performance models.

    Parameters
    ----------
    constraints:
        Structural constraints describing variable roles (options, events,
        objectives) and the performance-modeling assumptions.
    alpha:
        Significance level of the conditional-independence tests.
    max_condition_size:
        Largest conditioning set used during skeleton search / pruning.
    bins:
        Number of bins used when discretizing continuous variables for the
        discrete CI test and the entropic orienter.
    entropy_threshold_factor:
        The ``theta_r`` factor of the LatentSearch confounder criterion
        (0.8 in the paper).
    seed:
        Seed for the stochastic parts of LatentSearch.
    ci_margin_factor:
        Margin policy of the CI-decision cache: decisions with p-value
        outside ``[alpha / factor, alpha * factor]`` survive a data-epoch
        bump, borderline decisions are retested (see
        :class:`~repro.stats.independence.CIDecisionCache`).
    ci_max_stale_epochs:
        How many data-epoch bumps a confident CI decision may be served
        stale before it is retested.
    """

    def __init__(self, constraints: StructuralConstraints,
                 alpha: float = 0.05, max_condition_size: int = 2,
                 bins: int = 6, entropy_threshold_factor: float = 0.8,
                 seed: int = 0, ci_margin_factor: float = 8.0,
                 ci_max_stale_epochs: int = 3) -> None:
        self._constraints = constraints
        self._alpha = alpha
        self._max_condition_size = max_condition_size
        self._bins = bins
        self._threshold_factor = entropy_threshold_factor
        self._seed = seed
        self._ci_cache = CIDecisionCache(alpha=alpha,
                                         margin_factor=ci_margin_factor,
                                         max_stale_epochs=ci_max_stale_epochs)
        self._session: _LearnerSession | None = None

    @property
    def constraints(self) -> StructuralConstraints:
        return self._constraints

    @property
    def ci_cache(self) -> CIDecisionCache:
        """The persistent CI-decision cache (for observability / tests)."""
        return self._ci_cache

    # --------------------------------------------------------------- session
    def _model_variables(self, data: Dataset) -> list[str]:
        return [v for v in data.columns if v in self._constraints.roles]

    def _bind_session(self, data: Dataset) -> _LearnerSession:
        """(Re)build the persistent statistical session over ``data``.

        One :class:`SufficientStats` feeds the CI tests and the entropic
        orienter, and one :class:`CachedCITest` threads every CI decision
        through the epoch-aware cache.
        """
        stats = SufficientStats(data)
        ci_test = CachedCITest(
            MixedCITest(data, alpha=self._alpha, bins=self._bins,
                        stats=stats),
            self._ci_cache, lambda: data.data_epoch)
        orienter = EntropicOrienter(
            data, bins=self._bins,
            entropy_threshold_factor=self._threshold_factor,
            seed=self._seed, stats=stats)
        self._session = _LearnerSession(
            data=data, variables=self._model_variables(data), stats=stats,
            ci_test=ci_test, orienter=orienter)
        return self._session

    # ------------------------------------------------------------------ learn
    def learn(self, data: Dataset) -> LearnedModel:
        """Learn a causal performance model from scratch.

        The model is bound to a private copy of ``data``: incremental
        updates grow the model's dataset in place, and that must never
        mutate an array the caller still owns.
        """
        started = time.perf_counter()
        self._ci_cache.clear()
        data = data.copy()
        session = self._bind_session(data)
        session.ci_test.start_trace()
        result = fci(session.variables, session.ci_test,
                     constraints=self._constraints,
                     max_condition_size=self._max_condition_size)
        trace = session.ci_test.take_trace()
        resolved = session.orienter.resolve(result.pag, self._constraints)
        elapsed = time.perf_counter() - started
        model = LearnedModel(
            graph=resolved, pag=result.pag, constraints=self._constraints,
            data=data, ci_tests_performed=result.tests_performed,
            discovery_seconds=elapsed, skeleton_state=result.skeleton_state,
            decision_trace=trace)
        model.history.append({
            "n_samples": float(data.n_rows),
            "n_edges": float(resolved.num_edges()),
            "seconds": elapsed,
            "incremental": 0.0,
        })
        return model

    # ----------------------------------------------------------------- update
    def update(self, model: LearnedModel,
               new_rows: Sequence[Mapping[str, float]]) -> LearnedModel:
        """Incrementally update a model with newly measured configurations.

        The new samples are appended **in place** to the model's dataset
        (``model.data`` is shared with the returned model, so earlier
        :class:`LearnedModel` handles observe the grown data as well), and
        only the borderline fringe of the causal structure is re-examined:
        skeleton and Possible-D-Sep pruning warm-start from the previous
        :class:`SkeletonState`, far-from-threshold CI decisions replay from
        the cache, and unchanged PAG edges keep their entropic orientation.
        The previous history is carried over so callers can plot convergence
        (Fig. 11).

        Models without a warm-start snapshot (or with a dataset that cannot
        be grown in place) fall back to a cold re-learn over the concatenated
        data, which is the behaviour of the original from-scratch path.
        """
        if not new_rows:
            return model
        if model.skeleton_state is None:
            updated = self.learn(model.data.append_rows(new_rows))
            updated.history = model.history + updated.history
            return updated

        started = time.perf_counter()
        session = self._session
        if session is None or session.data is not model.data:
            # Foreign model (e.g. learned by another learner instance):
            # adopt its dataset.  The cache is keyed by (x, y, Z) and epoch
            # only, so decisions computed on the previously bound dataset
            # must not leak into this one.
            self._ci_cache.clear()
            session = self._bind_session(model.data)
        model.data.append_rows_inplace(new_rows)

        result: FCIResult | None = None
        trace: list[CIDecision] | None = None
        validation_tests = 0
        if model.decision_trace:
            # Fast path — revalidate the previous run's decision sequence.
            # A constraint-based search is a deterministic function of its
            # CI decisions, so if every recorded decision still holds on the
            # grown data the cold traversal would reproduce the previous
            # structure verbatim; reuse it.  Most decisions replay from the
            # cache, so this costs the borderline retests plus lookups —
            # with the caveat that a confident decision served stale under
            # the margin policy is only rechecked when its reuse window
            # closes.
            valid, validation_tests = self._trace_still_valid(
                session, model.decision_trace)
            if valid:
                result = FCIResult(
                    pag=model.pag.copy(),
                    separating_sets=model.skeleton_state.separating_sets,
                    tests_performed=validation_tests,
                    skeleton_state=model.skeleton_state)
                trace = model.decision_trace
        else:
            # No trace (e.g. a deserialised model): fall back to the
            # structural warm start — FCI revalidates removed edges against
            # their recorded separating sets and survivors against their
            # current neighbourhoods and Possible-D-Sep sets.  The warm
            # result is only accepted if it reproduces the previous
            # structure exactly; any deviation escalates to the cold replay
            # below, which also records a decision trace so subsequent
            # updates take the sound fast path.
            warm = fci(session.variables, session.ci_test,
                       constraints=self._constraints,
                       max_condition_size=self._max_condition_size,
                       previous=model.skeleton_state)
            validation_tests = warm.tests_performed
            assert warm.skeleton_state is not None
            previous = model.skeleton_state
            if (warm.skeleton_state.edges == previous.edges
                    and warm.skeleton_state.separating_sets
                    == previous.separating_sets):
                result = warm
        if result is None:
            # The structure moved, so the order-dependent PC traversal could
            # settle elsewhere: re-run the cold traversal.  With the CI
            # cache serving every decision that is not borderline, this
            # replay costs dictionary lookups plus the genuinely new tests,
            # and by construction it produces exactly what `learn` would (up
            # to confident decisions the margin policy chose not to retest).
            session.ci_test.start_trace()
            result = fci(session.variables, session.ci_test,
                         constraints=self._constraints,
                         max_condition_size=self._max_condition_size)
            trace = session.ci_test.take_trace()
            result.tests_performed += validation_tests
        resolved = session.orienter.resolve(result.pag, self._constraints)
        elapsed = time.perf_counter() - started
        updated = LearnedModel(
            graph=resolved, pag=result.pag, constraints=self._constraints,
            data=model.data, ci_tests_performed=result.tests_performed,
            discovery_seconds=elapsed, skeleton_state=result.skeleton_state,
            decision_trace=trace, incremental=True)
        updated.history = model.history + [{
            "n_samples": float(model.data.n_rows),
            "n_edges": float(resolved.num_edges()),
            "seconds": elapsed,
            "incremental": 1.0,
        }]
        return updated

    @staticmethod
    def _trace_still_valid(session: _LearnerSession,
                           trace: Sequence[CIDecision]) -> tuple[bool, int]:
        """Check a recorded decision sequence against the current data.

        Decisions are grouped by conditioning set so shared-set groups run
        through the batch test (one sufficient-statistics pass); returns
        ``(all decisions unchanged, number of decisions checked)``.
        """
        groups: dict[tuple[str, ...], list[CIDecision]] = {}
        for decision in trace:
            groups.setdefault(decision.conditioning, []).append(decision)
        checked = 0
        for conditioning, decisions in groups.items():
            outcomes = session.ci_test.test_batch(
                [(d.x, d.y) for d in decisions], list(conditioning))
            checked += len(decisions)
            for decision, outcome in zip(decisions, outcomes):
                if outcome.independent != decision.independent:
                    return False, checked
        return True, checked
