"""The Unicorn causal-model-learning pipeline (Stage II / Stage IV).

``CausalModelLearner`` wires together the skeleton search, FCI orientation
and entropic resolution into the three-step procedure of Fig. 9, and exposes
``update`` for the incremental re-learning of Stage IV (Fig. 10): new samples
are appended to the observational data and the model is re-estimated; because
the constraint structure and the CI decisions on the old data are largely
stable, the learned graph converges as the active loop acquires samples
(Fig. 11a tracks this via the structural Hamming distance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.discovery.constraints import StructuralConstraints
from repro.discovery.entropic import EntropicOrienter
from repro.discovery.fci import fci
from repro.graph.mixed_graph import MixedGraph
from repro.stats.dataset import Dataset
from repro.stats.independence import MixedCITest


@dataclass
class LearnedModel:
    """A learned causal performance model plus learning diagnostics."""

    graph: MixedGraph
    pag: MixedGraph
    constraints: StructuralConstraints
    data: Dataset
    ci_tests_performed: int = 0
    discovery_seconds: float = 0.0
    history: list[dict[str, float]] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return self.data.n_rows

    def average_degree(self) -> float:
        return self.graph.average_degree()


class CausalModelLearner:
    """Learn and incrementally update causal performance models.

    Parameters
    ----------
    constraints:
        Structural constraints describing variable roles (options, events,
        objectives) and the performance-modeling assumptions.
    alpha:
        Significance level of the conditional-independence tests.
    max_condition_size:
        Largest conditioning set used during skeleton search / pruning.
    bins:
        Number of bins used when discretizing continuous variables for the
        discrete CI test and the entropic orienter.
    entropy_threshold_factor:
        The ``theta_r`` factor of the LatentSearch confounder criterion
        (0.8 in the paper).
    seed:
        Seed for the stochastic parts of LatentSearch.
    """

    def __init__(self, constraints: StructuralConstraints,
                 alpha: float = 0.05, max_condition_size: int = 2,
                 bins: int = 6, entropy_threshold_factor: float = 0.8,
                 seed: int = 0) -> None:
        self._constraints = constraints
        self._alpha = alpha
        self._max_condition_size = max_condition_size
        self._bins = bins
        self._threshold_factor = entropy_threshold_factor
        self._seed = seed

    @property
    def constraints(self) -> StructuralConstraints:
        return self._constraints

    # ------------------------------------------------------------------ learn
    def learn(self, data: Dataset) -> LearnedModel:
        """Learn a causal performance model from scratch."""
        started = time.perf_counter()
        variables = [v for v in data.columns if v in self._constraints.roles]
        ci_test = MixedCITest(data.subset(variables), alpha=self._alpha,
                              bins=self._bins)
        result = fci(variables, ci_test, constraints=self._constraints,
                     max_condition_size=self._max_condition_size)
        orienter = EntropicOrienter(
            data.subset(variables), bins=self._bins,
            entropy_threshold_factor=self._threshold_factor, seed=self._seed)
        resolved = orienter.resolve(result.pag, self._constraints)
        elapsed = time.perf_counter() - started
        model = LearnedModel(
            graph=resolved, pag=result.pag, constraints=self._constraints,
            data=data, ci_tests_performed=result.tests_performed,
            discovery_seconds=elapsed)
        model.history.append({
            "n_samples": float(data.n_rows),
            "n_edges": float(resolved.num_edges()),
            "seconds": elapsed,
        })
        return model

    # ----------------------------------------------------------------- update
    def update(self, model: LearnedModel,
               new_rows: Sequence[Mapping[str, float]]) -> LearnedModel:
        """Incrementally update a model with newly measured configurations.

        The new samples are appended to the observational data and the model
        is re-estimated.  The previous history is carried over so callers can
        plot convergence (Fig. 11).
        """
        if not new_rows:
            return model
        data = model.data.append_rows(new_rows)
        updated = self.learn(data)
        updated.history = model.history + updated.history
        return updated
