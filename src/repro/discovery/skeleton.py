"""Skeleton recovery (step 1 and 2 of causal model learning in Fig. 9).

Starting from a fully connected graph restricted by the structural
constraints ("no connections between configuration options"), edges are pruned
with conditional-independence tests of increasing conditioning-set size, in
the style of the PC/FCI skeleton phase.  The separating sets found along the
way are recorded because the collider-orientation step of FCI needs them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.discovery.constraints import StructuralConstraints
from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph
from repro.stats.independence import CITest


@dataclass
class SkeletonResult:
    """Skeleton plus bookkeeping produced by :func:`learn_skeleton`."""

    graph: MixedGraph
    separating_sets: dict[frozenset[str], set[str]] = field(default_factory=dict)
    tests_performed: int = 0

    def separating_set(self, x: str, y: str) -> set[str] | None:
        return self.separating_sets.get(frozenset((x, y)))


def initial_graph(variables: list[str],
                  constraints: StructuralConstraints | None) -> MixedGraph:
    """Fully connected circle-circle graph respecting adjacency constraints."""
    graph = MixedGraph(variables)
    for u, v in itertools.combinations(variables, 2):
        if constraints is None or constraints.adjacency_allowed(u, v):
            graph.add_edge(u, v, Mark.CIRCLE, Mark.CIRCLE)
    return graph


def learn_skeleton(variables: list[str], ci_test: CITest,
                   constraints: StructuralConstraints | None = None,
                   max_condition_size: int = 3,
                   max_subsets_per_edge: int = 50) -> SkeletonResult:
    """PC-style skeleton search.

    For conditioning-set sizes ``0 .. max_condition_size`` every remaining
    edge ``x - y`` is tested against subsets of the current adjacency of
    ``x`` (and of ``y``); if any test declares independence the edge is
    removed and the separating set recorded.

    ``max_condition_size`` bounds the cost; the causal performance models of
    the paper are sparse (average node degree below 4 even for SQLite's 242
    options), so small conditioning sets suffice in practice.
    ``max_subsets_per_edge`` caps the number of conditioning subsets examined
    per edge per level, which keeps the search tractable while the graph is
    still dense in the first iterations.
    """
    graph = initial_graph(variables, constraints)
    result = SkeletonResult(graph=graph)
    required = set()
    if constraints is not None:
        required = {frozenset(edge) for edge in constraints.required_edges}

    for level in range(max_condition_size + 1):
        removed_any = False
        for edge in list(graph.edges()):
            x, y = edge.u, edge.v
            if not graph.has_edge(x, y):
                continue
            if frozenset((x, y)) in required:
                continue
            neighbours = ((graph.neighbors(x) - {y})
                          | (graph.neighbors(y) - {x}))
            if constraints is not None:
                neighbours = {n for n in neighbours
                              if constraints.conditioning_allowed(n)}
            if len(neighbours) < level:
                continue
            separated = False
            subsets = itertools.islice(
                itertools.combinations(sorted(neighbours), level),
                max_subsets_per_edge)
            for subset in subsets:
                result.tests_performed += 1
                outcome = ci_test.test(x, y, list(subset))
                if outcome.independent:
                    graph.remove_edge(x, y)
                    result.separating_sets[frozenset((x, y))] = set(subset)
                    separated = True
                    removed_any = True
                    break
            if separated:
                continue
        if not removed_any and level > 0:
            break
    return result
