"""Skeleton recovery (step 1 and 2 of causal model learning in Fig. 9).

Starting from a fully connected graph restricted by the structural
constraints ("no connections between configuration options"), edges are pruned
with conditional-independence tests of increasing conditioning-set size, in
the style of the PC/FCI skeleton phase.  The separating sets found along the
way are recorded because the collider-orientation step of FCI needs them.

For the incremental re-learning of Stage IV the search can also be
*warm-started* from the previous model's :class:`SkeletonState`: instead of
the fully connected constraint graph, the initial graph is the previous
skeleton, each previously removed edge is revalidated against its recorded
separating set (a single CI test, usually a cache hit), and only the edges
whose removal no longer holds are reinstated for the full level-wise search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.discovery.constraints import StructuralConstraints
from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph
from repro.stats.independence import CITest


@dataclass
class SkeletonResult:
    """Skeleton plus bookkeeping produced by :func:`learn_skeleton`."""

    graph: MixedGraph
    separating_sets: dict[frozenset[str], set[str]] = field(default_factory=dict)
    tests_performed: int = 0

    def separating_set(self, x: str, y: str) -> set[str] | None:
        return self.separating_sets.get(frozenset((x, y)))


@dataclass
class SkeletonState:
    """Reusable snapshot of a finished skeleton search.

    Carried inside a learned model so the next incremental update can
    warm-start :func:`learn_skeleton` (and FCI's Possible-D-Sep phase, whose
    removals are folded into the same state) from where the previous
    iteration ended.
    """

    edges: set[frozenset[str]]
    separating_sets: dict[frozenset[str], set[str]]

    @classmethod
    def from_graph(cls, graph: MixedGraph,
                   separating_sets: dict[frozenset[str], set[str]]
                   ) -> "SkeletonState":
        return cls(edges={frozenset((e.u, e.v)) for e in graph.edges()},
                   separating_sets=dict(separating_sets))


def initial_graph(variables: list[str],
                  constraints: StructuralConstraints | None) -> MixedGraph:
    """Fully connected circle-circle graph respecting adjacency constraints."""
    graph = MixedGraph(variables)
    for u, v in itertools.combinations(variables, 2):
        if constraints is None or constraints.adjacency_allowed(u, v):
            graph.add_edge(u, v, Mark.CIRCLE, Mark.CIRCLE)
    return graph


def _warm_start_graph(variables: list[str], ci_test: CITest,
                      constraints: StructuralConstraints | None,
                      previous: SkeletonState, required: set[frozenset[str]],
                      result: SkeletonResult) -> MixedGraph:
    """Initial graph for an incremental search, seeded from ``previous``.

    Surviving edges are carried over; each removed edge is retested against
    its recorded separating set and reinstated only when the independence no
    longer holds (a borderline removal that flipped on new data).  Pairs the
    previous state knows nothing about (new variables) start connected.
    Retests sharing one separating set (most share the empty set from the
    level-0 sweep) are batched into a single sufficient-statistics pass.
    """
    graph = MixedGraph(variables)
    known = set(variables)
    by_sepset: dict[tuple[str, ...], list[tuple[str, str]]] = {}
    for u, v in itertools.combinations(variables, 2):
        if constraints is not None and not constraints.adjacency_allowed(u, v):
            continue
        key = frozenset((u, v))
        if key in required or key in previous.edges:
            graph.add_edge(u, v, Mark.CIRCLE, Mark.CIRCLE)
            continue
        sepset = previous.separating_sets.get(key)
        if sepset is None or not sepset <= known:
            graph.add_edge(u, v, Mark.CIRCLE, Mark.CIRCLE)
            continue
        by_sepset.setdefault(tuple(sorted(sepset)), []).append((u, v))

    batch_test = getattr(ci_test, "test_batch", None)
    for sepset, pairs in by_sepset.items():
        if batch_test is not None:
            outcomes = batch_test(pairs, list(sepset))
        else:
            outcomes = [ci_test.test(u, v, list(sepset)) for u, v in pairs]
        result.tests_performed += len(pairs)
        for (u, v), outcome in zip(pairs, outcomes):
            if outcome.independent:
                result.separating_sets[frozenset((u, v))] = set(sepset)
            else:
                graph.add_edge(u, v, Mark.CIRCLE, Mark.CIRCLE)
    return graph


def learn_skeleton(variables: list[str], ci_test: CITest,
                   constraints: StructuralConstraints | None = None,
                   max_condition_size: int = 3,
                   max_subsets_per_edge: int = 50,
                   previous: SkeletonState | None = None) -> SkeletonResult:
    """PC-style skeleton search.

    For conditioning-set sizes ``0 .. max_condition_size`` every remaining
    edge ``x - y`` is tested against subsets of the current adjacency of
    ``x`` (and of ``y``); if any test declares independence the edge is
    removed and the separating set recorded.

    ``max_condition_size`` bounds the cost; the causal performance models of
    the paper are sparse (average node degree below 4 even for SQLite's 242
    options), so small conditioning sets suffice in practice.
    ``max_subsets_per_edge`` caps the number of conditioning subsets examined
    per edge per level, which keeps the search tractable while the graph is
    still dense in the first iterations.

    ``previous`` warm-starts the search from an earlier skeleton (see
    :class:`SkeletonState`); with a :class:`~repro.stats.independence.CachedCITest`
    supplying the decisions this turns a full re-learn into a revalidation of
    the borderline fringe (callers that need to detect deviation from
    ``previous`` compare the resulting edges and separating sets, as
    ``CausalModelLearner.update`` does).
    """
    result = SkeletonResult(graph=MixedGraph(variables))
    required = set()
    if constraints is not None:
        required = {frozenset(edge) for edge in constraints.required_edges}
    if previous is None:
        graph = initial_graph(variables, constraints)
    else:
        graph = _warm_start_graph(variables, ci_test, constraints, previous,
                                  required, result)
    result.graph = graph

    batch_test = getattr(ci_test, "test_batch", None)

    for level in range(max_condition_size + 1):
        removed_any = False
        if level == 0 and batch_test is not None:
            # Every level-0 test shares the empty conditioning set, so the
            # whole sweep collapses into one vectorized batch.
            pairs = [(e.u, e.v) for e in graph.edges()
                     if frozenset((e.u, e.v)) not in required]
            outcomes = batch_test(pairs, ())
            result.tests_performed += len(pairs)
            for (x, y), outcome in zip(pairs, outcomes):
                if outcome.independent:
                    graph.remove_edge(x, y)
                    result.separating_sets[frozenset((x, y))] = set()
                    removed_any = True
            continue
        for edge in list(graph.edges()):
            x, y = edge.u, edge.v
            if not graph.has_edge(x, y):
                continue
            if frozenset((x, y)) in required:
                continue
            neighbours = ((graph.neighbors(x) - {y})
                          | (graph.neighbors(y) - {x}))
            if constraints is not None:
                neighbours = {n for n in neighbours
                              if constraints.conditioning_allowed(n)}
            if len(neighbours) < level:
                continue
            subsets = itertools.islice(
                itertools.combinations(sorted(neighbours), level),
                max_subsets_per_edge)
            for subset in subsets:
                result.tests_performed += 1
                outcome = ci_test.test(x, y, list(subset))
                if outcome.independent:
                    graph.remove_edge(x, y)
                    result.separating_sets[frozenset((x, y))] = set(subset)
                    removed_any = True
                    break
        # Level 0 always proceeds to level 1 even when nothing was removed
        # (the marginal sweep says nothing about conditional independencies);
        # from level 1 onward an empty level means no larger conditioning set
        # can succeed either, so the search stops.
        if level > 0 and not removed_any:
            break
    return result
