"""Structural constraints over causal performance models.

The paper defines a causal performance model as a probabilistic graphical
model with *structural constraints* encoding domain assumptions, for example:

* configuration options do not cause other configuration options,
* performance objectives cannot be causes of configuration options or system
  events (software options cannot be children of objectives),
* some variables can only be observed, never intervened on (system events),
* the user may restrict the variability space of specific options.

``StructuralConstraints`` captures these assumptions and is consulted both
when building the initial fully connected skeleton (forbidden pairs are never
connected) and when orienting edges (forbidden directions are rejected).
Encoding the constraints up front gives the sparsity that lets FCI work at the
low sample sizes Unicorn operates with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping


class VariableRole(enum.Enum):
    """Role of a variable in the performance model."""

    OPTION = "option"          # software / kernel / hardware configuration
    EVENT = "event"            # intermediate system event (perf counter etc.)
    OBJECTIVE = "objective"    # end-to-end performance objective

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VariableRole.{self.name}"


@dataclass
class StructuralConstraints:
    """Domain assumptions for causal performance model learning.

    Parameters
    ----------
    roles:
        Mapping from variable name to its :class:`VariableRole`.
    forbid_option_option_edges:
        If True (the default and the paper's assumption), no edge is allowed
        between two configuration options.
    forbidden_edges:
        Extra directed edges ``(cause, effect)`` that must never appear.
    required_edges:
        Directed edges that domain knowledge asserts must exist; they are
        added to the skeleton even if a CI test would remove them.
    non_intervenable:
        Variables that can only be observed (system events, objectives).
        Events and objectives are always non-intervenable regardless of this
        set; it exists to let the user freeze specific options as well.
    """

    roles: Mapping[str, VariableRole]
    forbid_option_option_edges: bool = True
    forbidden_edges: set[tuple[str, str]] = field(default_factory=set)
    required_edges: set[tuple[str, str]] = field(default_factory=set)
    non_intervenable: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------ roles
    def role(self, variable: str) -> VariableRole:
        return self.roles[variable]

    def options(self) -> list[str]:
        return [v for v, r in self.roles.items() if r is VariableRole.OPTION]

    def events(self) -> list[str]:
        return [v for v, r in self.roles.items() if r is VariableRole.EVENT]

    def objectives(self) -> list[str]:
        return [v for v, r in self.roles.items()
                if r is VariableRole.OBJECTIVE]

    # ------------------------------------------------------------ adjacency
    def adjacency_allowed(self, u: str, v: str) -> bool:
        """May an edge (of any orientation) exist between ``u`` and ``v``?"""
        role_u, role_v = self.roles[u], self.roles[v]
        if (self.forbid_option_option_edges
                and role_u is VariableRole.OPTION
                and role_v is VariableRole.OPTION):
            return False
        if ((u, v) in self.forbidden_edges
                and (v, u) in self.forbidden_edges):
            return False
        return True

    # ------------------------------------------------------------ direction
    def direction_allowed(self, cause: str, effect: str) -> bool:
        """May a directed edge ``cause -> effect`` exist?"""
        if (cause, effect) in self.forbidden_edges:
            return False
        role_cause, role_effect = self.roles[cause], self.roles[effect]
        # Nothing causes a configuration option: options are exogenous knobs.
        if role_effect is VariableRole.OPTION:
            return False
        # Objectives are sinks: they cause neither options nor events.
        if role_cause is VariableRole.OBJECTIVE:
            return False
        return True

    def is_intervenable(self, variable: str) -> bool:
        """Can ``variable`` be set by an intervention (a configuration change)?"""
        if variable in self.non_intervenable:
            return False
        return self.roles[variable] is VariableRole.OPTION

    def conditioning_allowed(self, variable: str) -> bool:
        """May ``variable`` appear in a conditioning set of a CI test?

        Performance objectives are sinks of the causal performance model
        (they cause neither options nor events), so they can never be part of
        a valid separating set — conditioning on them can only open collider
        paths and, at finite sample sizes, induce spurious independencies
        between their strong causes.  Excluding them is therefore both sound
        and a large robustness win at Unicorn's small sample sizes.
        """
        return self.roles[variable] is not VariableRole.OBJECTIVE

    # ----------------------------------------------------------- construction
    @classmethod
    def from_variable_lists(cls, options: Iterable[str],
                            events: Iterable[str],
                            objectives: Iterable[str],
                            **kwargs) -> "StructuralConstraints":
        roles: dict[str, VariableRole] = {}
        for name in options:
            roles[name] = VariableRole.OPTION
        for name in events:
            roles[name] = VariableRole.EVENT
        for name in objectives:
            roles[name] = VariableRole.OBJECTIVE
        return cls(roles=roles, **kwargs)
