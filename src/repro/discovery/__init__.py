"""Causal structure learning.

This package implements Stage II of Unicorn:

1. :mod:`repro.discovery.skeleton` recovers the skeleton of the causal
   performance model from a fully connected graph restricted by structural
   constraints, pruning edges with conditional-independence tests.
2. :mod:`repro.discovery.fci` applies the FCI orientation machinery
   (collider/v-structure orientation and the Zhang orientation rules) to
   produce a partial ancestral graph.
3. :mod:`repro.discovery.entropic` resolves the remaining circle marks with
   entropic causal discovery (LatentSearch for low-entropy confounders, then
   the lower-noise-entropy direction), producing a fully directed ADMG.
4. :mod:`repro.discovery.pipeline` wires the three together behind
   :class:`CausalModelLearner`, including the structural constraints that
   encode performance-modeling assumptions and incremental re-learning as the
   active loop acquires new samples.
"""

from repro.discovery.constraints import StructuralConstraints, VariableRole
from repro.discovery.skeleton import (
    learn_skeleton,
    SkeletonResult,
    SkeletonState,
)
from repro.discovery.fci import fci, orient_colliders, apply_orientation_rules
from repro.discovery.entropic import (
    EntropicOrienter,
    latent_search,
    resolve_with_entropy,
)
from repro.discovery.pipeline import CausalModelLearner, LearnedModel

__all__ = [
    "StructuralConstraints",
    "VariableRole",
    "learn_skeleton",
    "SkeletonResult",
    "SkeletonState",
    "fci",
    "orient_colliders",
    "apply_orientation_rules",
    "EntropicOrienter",
    "latent_search",
    "resolve_with_entropy",
    "CausalModelLearner",
    "LearnedModel",
]
