"""Fast Causal Inference (FCI) structure learning.

FCI extends the PC skeleton search to settings with unobserved confounders:
after the skeleton and collider orientation, a second pruning phase tests
edges against subsets of the Possible-D-Sep sets, and a set of orientation
rules (Zhang's rules; we implement R1-R4, which are the complete set for the
graphs without selection bias that performance data produces) propagates the
collider information through the graph.  The output is a partial ancestral
graph (PAG) whose circle marks are later resolved by the entropic orienter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.discovery.constraints import StructuralConstraints
from repro.discovery.skeleton import (
    SkeletonResult,
    SkeletonState,
    learn_skeleton,
)
from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph
from repro.graph.separation import possible_d_sep
from repro.stats.independence import CITest


@dataclass
class FCIResult:
    """A PAG plus the separating sets discovered along the way."""

    pag: MixedGraph
    separating_sets: dict[frozenset[str], set[str]]
    tests_performed: int
    #: snapshot of the final adjacency structure + separating sets, ready to
    #: warm-start the next incremental run.
    skeleton_state: SkeletonState | None = None


# ---------------------------------------------------------------------------
# Collider orientation (rule R0)
# ---------------------------------------------------------------------------
def orient_colliders(graph: MixedGraph,
                     separating_sets: dict[frozenset[str], set[str]],
                     constraints: StructuralConstraints | None = None) -> None:
    """Orient unshielded triples ``x *-* z *-* y`` as colliders.

    For every unshielded triple where ``z`` is not in the separating set of
    ``x`` and ``y``, both marks at ``z`` become arrowheads (``x *-> z <-* y``).
    Orientations that would violate structural constraints (an arrow into a
    configuration option) are skipped.
    """
    for z in graph.nodes:
        neighbours = sorted(graph.neighbors(z))
        for x, y in itertools.combinations(neighbours, 2):
            if graph.has_edge(x, y):
                continue  # shielded triple
            sep = separating_sets.get(frozenset((x, y)))
            if sep is None or z in sep:
                continue
            for source in (x, y):
                if _arrow_allowed(constraints, source, z):
                    graph.set_mark(source, z, Mark.ARROW)


def _arrow_allowed(constraints: StructuralConstraints | None,
                   source: str, target: str) -> bool:
    """May the mark at ``target`` on edge ``source *-* target`` be an arrow?

    An arrowhead at ``target`` asserts that ``target`` does not cause
    ``source``; it is disallowed only when the constraints say the *reverse*
    direction is mandatory — in practice, when ``target`` is a configuration
    option (options are exogenous, so edges must point out of them).
    """
    if constraints is None:
        return True
    return constraints.direction_allowed(source, target) or \
        not constraints.direction_allowed(target, source)


def _tail_allowed(constraints: StructuralConstraints | None,
                  source: str, target: str) -> bool:
    """May the mark at ``source`` on edge ``source *-* target`` be a tail?"""
    if constraints is None:
        return True
    return constraints.direction_allowed(source, target)


# ---------------------------------------------------------------------------
# Zhang orientation rules R1 - R4
# ---------------------------------------------------------------------------
def apply_orientation_rules(graph: MixedGraph,
                            constraints: StructuralConstraints | None = None,
                            max_iterations: int = 100) -> None:
    """Apply FCI orientation rules R1-R4 until a fixed point is reached."""
    for _ in range(max_iterations):
        changed = False
        changed |= _rule_r1(graph, constraints)
        changed |= _rule_r2(graph, constraints)
        changed |= _rule_r3(graph, constraints)
        if not changed:
            break


def _rule_r1(graph: MixedGraph,
             constraints: StructuralConstraints | None) -> bool:
    """R1: if ``a *-> b o-* c`` and a, c not adjacent, orient ``b --> c``.

    The circle of the rule sits at the *b* end of the ``b - c`` edge; the
    orientation makes ``b`` a non-collider on the triple, i.e. ``b -> c``.
    """
    changed = False
    for b in graph.nodes:
        for a in graph.neighbors(b):
            if graph.mark(a, b) is not Mark.ARROW:
                continue
            for c in graph.neighbors(b):
                if c == a or graph.has_edge(a, c):
                    continue
                # mark at b on edge {b, c} must still be a circle.
                if graph.mark(c, b) is Mark.CIRCLE:
                    if not _arrow_allowed(constraints, b, c):
                        continue
                    graph.set_mark(b, c, Mark.ARROW)
                    if _tail_allowed(constraints, b, c):
                        graph.set_mark(c, b, Mark.TAIL)
                    changed = True
    return changed


def _rule_r2(graph: MixedGraph,
             constraints: StructuralConstraints | None) -> bool:
    """R2: if ``a -> b *-> c`` or ``a *-> b -> c`` and ``a *-o c``, orient
    the mark at ``c`` on edge ``a *-* c`` as an arrowhead."""
    changed = False
    for a in graph.nodes:
        for c in graph.neighbors(a):
            if graph.mark(a, c) is not Mark.CIRCLE:
                continue
            for b in graph.neighbors(a) & graph.neighbors(c):
                chain_one = (graph.mark(b, a) is Mark.TAIL
                             and graph.mark(a, b) is Mark.ARROW
                             and graph.mark(b, c) is Mark.ARROW)
                chain_two = (graph.mark(a, b) is Mark.ARROW
                             and graph.mark(c, b) is Mark.TAIL
                             and graph.mark(b, c) is Mark.ARROW)
                if (chain_one or chain_two) and _arrow_allowed(constraints, a, c):
                    graph.set_mark(a, c, Mark.ARROW)
                    changed = True
                    break
    return changed


def _rule_r3(graph: MixedGraph,
             constraints: StructuralConstraints | None) -> bool:
    """R3: if ``a *-> b <-* c``, ``a *-o d o-* c``, a, c not adjacent and
    ``d *-o b``, orient ``d *-> b``."""
    changed = False
    for b in graph.nodes:
        for d in graph.neighbors(b):
            if graph.mark(d, b) is not Mark.CIRCLE:
                continue
            candidates = sorted(graph.neighbors(b) & graph.neighbors(d))
            for a, c in itertools.combinations(candidates, 2):
                if graph.has_edge(a, c):
                    continue
                collider = (graph.mark(a, b) is Mark.ARROW
                            and graph.mark(c, b) is Mark.ARROW)
                circles = (graph.mark(a, d) is Mark.CIRCLE
                           and graph.mark(c, d) is Mark.CIRCLE)
                if collider and circles and _arrow_allowed(constraints, d, b):
                    graph.set_mark(d, b, Mark.ARROW)
                    changed = True
                    break
    return changed


# ---------------------------------------------------------------------------
# Possible-D-Sep pruning
# ---------------------------------------------------------------------------
def _pdsep_prune(graph: MixedGraph, ci_test: CITest,
                 separating_sets: dict[frozenset[str], set[str]],
                 max_condition_size: int, constraints,
                 max_subsets_per_edge: int = 50) -> int:
    """Second FCI pruning phase using Possible-D-Sep sets.

    Returns the number of CI tests performed.  ``max_subsets_per_edge`` caps
    the number of conditioning subsets examined per edge so the phase stays
    tractable on dense intermediate graphs.
    """
    tests = 0
    required = set()
    if constraints is not None:
        required = {frozenset(edge) for edge in constraints.required_edges}
    for edge in list(graph.edges()):
        x, y = edge.u, edge.v
        if not graph.has_edge(x, y) or frozenset((x, y)) in required:
            continue
        candidates = sorted((possible_d_sep(graph, x, y)
                             | possible_d_sep(graph, y, x)) - {x, y})
        if constraints is not None:
            candidates = [c for c in candidates
                          if constraints.conditioning_allowed(c)]
        found = False
        for size in range(1, min(len(candidates), max_condition_size) + 1):
            subsets = itertools.islice(
                itertools.combinations(candidates, size), max_subsets_per_edge)
            for subset in subsets:
                tests += 1
                outcome = ci_test.test(x, y, list(subset))
                if outcome.independent:
                    graph.remove_edge(x, y)
                    separating_sets[frozenset((x, y))] = set(subset)
                    found = True
                    break
            if found:
                break
    return tests


# ---------------------------------------------------------------------------
# Full FCI
# ---------------------------------------------------------------------------
def orient_pag(graph: MixedGraph,
               separating_sets: dict[frozenset[str], set[str]],
               constraints: StructuralConstraints | None = None) -> None:
    """Orient a pruned skeleton into a PAG, in place.

    Resets every mark to a circle, orients colliders from the separating
    sets, applies the R1-R4 rules to a fixed point and forces the marks
    implied by structural constraints — the orientation tail of :func:`fci`,
    shared with the incremental path that reuses a validated skeleton.
    """
    for edge in graph.edges():
        graph.set_mark(edge.u, edge.v, Mark.CIRCLE)
        graph.set_mark(edge.v, edge.u, Mark.CIRCLE)
    orient_colliders(graph, separating_sets, constraints)
    apply_orientation_rules(graph, constraints)
    _apply_constraint_orientations(graph, constraints)


def fci(variables: list[str], ci_test: CITest,
        constraints: StructuralConstraints | None = None,
        max_condition_size: int = 3,
        previous: SkeletonState | None = None) -> FCIResult:
    """Run FCI and return a PAG.

    Steps: PC-style skeleton, collider orientation, Possible-D-Sep pruning,
    re-initialisation of marks, collider re-orientation and the R1-R4
    orientation rules, following the standard FCI recipe.

    ``previous`` warm-starts the skeleton phase from an earlier run's
    :class:`SkeletonState` (the separating sets it carries also feed collider
    orientation), turning a full re-learn into a revalidation pass.
    """
    skeleton: SkeletonResult = learn_skeleton(
        variables, ci_test, constraints=constraints,
        max_condition_size=max_condition_size, previous=previous)
    graph = skeleton.graph
    sepsets = skeleton.separating_sets
    tests = skeleton.tests_performed

    orient_colliders(graph, sepsets, constraints)
    tests += _pdsep_prune(graph, ci_test, sepsets, max_condition_size,
                          constraints)

    orient_pag(graph, sepsets, constraints)

    return FCIResult(pag=graph, separating_sets=sepsets,
                     tests_performed=tests,
                     skeleton_state=SkeletonState.from_graph(graph, sepsets))


def _apply_constraint_orientations(graph: MixedGraph,
                                   constraints: StructuralConstraints | None
                                   ) -> None:
    """Force marks implied by structural constraints.

    Any edge incident to a configuration option must point out of the option
    (options are exogenous); any edge incident to an objective must point into
    the objective (objectives are sinks).  These are background-knowledge
    orientations in the sense of Meek/FCI with tiered knowledge.
    """
    if constraints is None:
        return
    for edge in graph.edges():
        for u, v in ((edge.u, edge.v), (edge.v, edge.u)):
            allowed_uv = constraints.direction_allowed(u, v)
            allowed_vu = constraints.direction_allowed(v, u)
            if allowed_uv and not allowed_vu:
                graph.set_mark(v, u, Mark.TAIL)
                graph.set_mark(u, v, Mark.ARROW)
