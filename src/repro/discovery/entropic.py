"""Entropic resolution of ambiguous edge marks.

FCI leaves circle marks wherever the observational data cannot distinguish
between statistically equivalent structures.  Unicorn resolves every partially
directed edge with the information-theoretic approach of Kocaoglu et al.:

1. Run *LatentSearch* to find a joint distribution ``q(X, Y, Z)`` for a
   candidate latent confounder ``Z``; if the achievable entropy ``H(Z)`` is
   below ``theta_r = 0.8 * min(H(X), H(Y))`` declare a latent confounder and
   replace the edge by a bidirected one.
2. Otherwise compare the entropy of the exogenous noise required by the two
   candidate directions (``Y = f(X, E)`` versus ``X = g(Y, E~)``) and pick the
   direction with the lower noise entropy.

``LatentSearch`` here follows the iterative-update formulation of the
original paper (alternating updates of ``q(z | x, y)`` driven by the current
marginals) on the empirical joint distribution of the discretized pair.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.discovery.constraints import StructuralConstraints
from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph
from repro.stats.dataset import Dataset
from repro.stats.entropy import (
    conditional_entropy,
    discrete_entropy,
    entropy_of_distribution,
)
from repro.stats.sufficient import SufficientStats


@dataclass
class LatentSearchResult:
    """Outcome of a LatentSearch run for one variable pair."""

    latent_entropy: float
    threshold: float

    @property
    def confounder_found(self) -> bool:
        return self.latent_entropy < self.threshold


def _empirical_joint(x_codes: np.ndarray, y_codes: np.ndarray) -> np.ndarray:
    """Empirical joint probability table p(x, y)."""
    nx = int(x_codes.max()) + 1
    ny = int(y_codes.max()) + 1
    table = np.zeros((nx, ny), dtype=float)
    for xv, yv in zip(x_codes, y_codes):
        table[int(xv), int(yv)] += 1.0
    return table / table.sum()


def latent_search(x_codes: np.ndarray, y_codes: np.ndarray,
                  n_latent_states: int = 8, iterations: int = 50,
                  rng: np.random.Generator | None = None,
                  entropy_threshold_factor: float = 0.8,
                  sparsity: float = 0.5) -> LatentSearchResult:
    """Search for a low-entropy latent confounder explaining p(x, y).

    The algorithm maintains ``q(z | x, y)`` and alternates between computing
    the implied marginal ``q(z)`` and re-assigning mass so that, conditioned
    on ``z``, ``x`` and ``y`` become as independent as possible while keeping
    ``H(Z)`` small.  We follow the multiplicative-update scheme of Kocaoglu et
    al.'s LatentSearch, whose Lagrangian trades off ``I(X;Y|Z)`` against
    ``H(Z)``: each iteration sets
    ``q(z|x,y) ∝ q(z)^(1+sparsity) * q(x|z) * q(y|z)``, with the ``sparsity``
    exponent playing the role of the entropy-penalty multiplier (larger values
    concentrate the latent on fewer states).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    joint = _empirical_joint(x_codes, y_codes)
    nx, ny = joint.shape
    nz = n_latent_states

    # Initialise q(z | x, y) randomly (rows sum to one over z).
    q_z_given_xy = rng.random((nx, ny, nz))
    q_z_given_xy /= q_z_given_xy.sum(axis=2, keepdims=True)

    for _ in range(iterations):
        # q(x, y, z) = p(x, y) * q(z | x, y)
        q_xyz = joint[:, :, None] * q_z_given_xy
        q_z = q_xyz.sum(axis=(0, 1))                      # q(z)
        q_xz = q_xyz.sum(axis=1)                          # q(x, z)
        q_yz = q_xyz.sum(axis=0)                          # q(y, z)
        with np.errstate(divide="ignore", invalid="ignore"):
            q_x_given_z = np.where(q_z > 0, q_xz / q_z, 0.0)  # (nx, nz)
            q_y_given_z = np.where(q_z > 0, q_yz / q_z, 0.0)  # (ny, nz)
        # Multiplicative update with the entropy-penalised marginal.
        updated = (np.power(q_z[None, None, :], 1.0 + sparsity)
                   * q_x_given_z[:, None, :]
                   * q_y_given_z[None, :, :])
        totals = updated.sum(axis=2, keepdims=True)
        # Where the update degenerates keep the previous value.
        q_z_given_xy = np.where(totals > 0, updated / np.maximum(totals, 1e-12),
                                q_z_given_xy)

    q_z = (joint[:, :, None] * q_z_given_xy).sum(axis=(0, 1))
    latent_entropy = entropy_of_distribution(q_z)
    threshold = entropy_threshold_factor * min(discrete_entropy(x_codes),
                                               discrete_entropy(y_codes))
    return LatentSearchResult(latent_entropy=latent_entropy,
                              threshold=threshold)


def entropic_direction(x_codes: np.ndarray, y_codes: np.ndarray) -> str:
    """Return ``"x->y"`` or ``"y->x"`` by comparing noise entropies.

    The direction requiring the lower exogenous-noise entropy (approximated by
    the conditional entropy of the effect given the cause) is simpler in the
    entropic-causality sense and is chosen as the causal direction.
    """
    h_noise_xy = conditional_entropy(y_codes, x_codes)   # Y = f(X, E)
    h_noise_yx = conditional_entropy(x_codes, y_codes)   # X = g(Y, E~)
    return "x->y" if h_noise_xy <= h_noise_yx else "y->x"


class EntropicOrienter:
    """Resolve the circle marks of a PAG into a fully directed ADMG.

    The orienter can stay alive across active-loop iterations: discretization
    codes come from a (shareable) :class:`SufficientStats` that refreshes
    itself per data epoch, and each edge's LatentSearch uses an RNG derived
    deterministically from ``(seed, x, y)`` so resolution order (and how many
    times the orienter ran before) does not matter.
    """

    def __init__(self, data: Dataset, bins: int = 8,
                 n_latent_states: int = 8,
                 entropy_threshold_factor: float = 0.8,
                 latent_search_iterations: int = 30,
                 seed: int = 0,
                 stats: SufficientStats | None = None) -> None:
        self._data = data
        self._bins = bins
        self._n_latent_states = n_latent_states
        self._threshold_factor = entropy_threshold_factor
        self._iterations = latent_search_iterations
        self._seed = seed
        self._stats = stats if stats is not None else SufficientStats(data)

    def _coded(self, column: str) -> np.ndarray:
        return self._stats.codes(column, bins=self._bins)

    def _edge_rng(self, x: str, y: str) -> np.random.Generator:
        """Per-edge RNG: the same (seed, edge) always yields the same stream."""
        a, b = sorted((x, y))
        return np.random.default_rng(
            [self._seed, zlib.crc32(a.encode()), zlib.crc32(b.encode())])

    def resolve(self, pag: MixedGraph,
                constraints: StructuralConstraints | None = None) -> MixedGraph:
        """Return a copy of ``pag`` with every circle mark resolved.

        Resolution is deterministic given the data epoch: codes come from
        the epoch-synchronised sufficient statistics and each edge draws
        from its own ``(seed, edge)``-derived RNG, so resolving the same PAG
        over the same data always yields the same graph regardless of how
        (or how often) the orienter was used before.
        """
        graph = pag.copy()
        for edge in graph.undetermined_edges():
            self._resolve_edge(graph, edge.u, edge.v, constraints)
        return graph

    # ------------------------------------------------------------------ impl
    def _resolve_edge(self, graph: MixedGraph, x: str, y: str,
                      constraints: StructuralConstraints | None) -> None:
        x_codes = self._coded(x)
        y_codes = self._coded(y)

        allowed_xy = constraints is None or constraints.direction_allowed(x, y)
        allowed_yx = constraints is None or constraints.direction_allowed(y, x)

        # Step 1: look for a low-entropy latent confounder, but only when both
        # directions are otherwise admissible (a constrained edge cannot hide
        # a confounder between an exogenous option and its effect).
        if allowed_xy and allowed_yx:
            search = latent_search(
                x_codes, y_codes, n_latent_states=self._n_latent_states,
                iterations=self._iterations, rng=self._edge_rng(x, y),
                entropy_threshold_factor=self._threshold_factor)
            if search.confounder_found:
                graph.set_mark(x, y, Mark.ARROW)
                graph.set_mark(y, x, Mark.ARROW)
                return

        # If neither direction is admissible (e.g. an association between two
        # performance objectives, which are both sinks), the dependence can
        # only be due to shared causes: keep the edge but mark it bidirected.
        if not allowed_xy and not allowed_yx:
            graph.set_mark(x, y, Mark.ARROW)
            graph.set_mark(y, x, Mark.ARROW)
            return

        # Step 2: pick the direction with the lower exogenous-noise entropy,
        # subject to the structural constraints and acyclicity of the already
        # directed part of the graph.
        if allowed_xy and not allowed_yx:
            direction = "x->y"
        elif allowed_yx and not allowed_xy:
            direction = "y->x"
        else:
            direction = entropic_direction(x_codes, y_codes)

        cause, effect = (x, y) if direction == "x->y" else (y, x)
        if cause in graph.descendants(effect):
            # The preferred direction would close a directed cycle; fall back
            # to the opposite direction if it is admissible and acyclic,
            # otherwise record latent confounding.
            opposite_ok = (constraints is None
                           or constraints.direction_allowed(effect, cause))
            if opposite_ok and effect not in graph.descendants(cause):
                cause, effect = effect, cause
            else:
                graph.set_mark(x, y, Mark.ARROW)
                graph.set_mark(y, x, Mark.ARROW)
                return
        graph.set_mark(cause, effect, Mark.ARROW)
        graph.set_mark(effect, cause, Mark.TAIL)


def resolve_with_entropy(pag: MixedGraph, data: Dataset,
                         constraints: StructuralConstraints | None = None,
                         **kwargs) -> MixedGraph:
    """Convenience wrapper around :class:`EntropicOrienter`."""
    return EntropicOrienter(data, **kwargs).resolve(pag, constraints)
