"""Random search: the sanity-check optimization baseline.

Not part of the paper's headline comparison but used by the ablation benches
(ACE-guided sampling vs. uninformed sampling) and by tests as a floor that
any model-based method should beat on the simulated systems.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.optimizer import OptimizationResult
from repro.systems.base import ConfigurableSystem, Measurement


class RandomSearchOptimizer:
    """Uniform random sampling of the configuration space."""

    name = "random"

    def __init__(self, system: ConfigurableSystem, budget: int = 100,
                 n_repeats: int = 3, seed: int = 0) -> None:
        self.system = system
        self.budget = budget
        self.n_repeats = n_repeats
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def optimize(self, objectives: Sequence[str] | str,
                 initial_measurements: Sequence[Measurement] = ()
                 ) -> OptimizationResult:
        started = time.perf_counter()
        if isinstance(objectives, str):
            objective_names = [objectives]
        else:
            objective_names = list(objectives)
        directions = {o: self.system.objectives[o] for o in objective_names}
        signs = {o: 1.0 if d == "minimize" else -1.0
                 for o, d in directions.items()}

        measurements: list[Measurement] = list(initial_measurements)
        evaluated = [dict(m.objectives) for m in measurements]
        trace: list[dict[str, float]] = []
        best: Measurement | None = min(
            measurements,
            key=lambda m: sum(signs[o] * m.objectives[o]
                              for o in objective_names),
            default=None)

        while len(measurements) < self.budget:
            config = self.system.space.sample_configuration(self._rng)
            measurement = self.system.measure(config, n_repeats=self.n_repeats,
                                              rng=self._rng)
            measurements.append(measurement)
            evaluated.append(dict(measurement.objectives))
            if best is None or (
                    sum(signs[o] * measurement.objectives[o]
                        for o in objective_names)
                    < sum(signs[o] * best.objectives[o]
                          for o in objective_names)):
                best = measurement
            trace.append({o: best.objectives[o] for o in objective_names})

        elapsed = time.perf_counter() - started
        return OptimizationResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives=directions,
            best_configuration=dict(best.configuration) if best else {},
            best_objectives={o: best.objectives[o]
                             for o in objective_names} if best else {},
            iterations=len(measurements) - len(initial_measurements),
            samples_used=len(measurements),
            wall_clock_seconds=elapsed,
            simulated_hours=(len(measurements)
                             * self.system.measurement_cost_seconds / 3600.0),
            trace=trace,
            evaluated=evaluated)
