"""Performance-influence models (stepwise polynomial regression).

The standard performance-modeling approach of the literature (Siegmund et
al.) and the foil of the paper's motivating analysis: a linear model over
option terms and pairwise interaction terms, selected with forward selection
and pruned with backward elimination ("non-linear regression models with
forward and backward elimination using a stepwise training method").

The Fig. 4 / Fig. 5 / Fig. 21 analyses compare the *terms* (predictors) and
coefficients of influence models learned in different environments, and their
prediction error (MAPE) within and across environments; this class exposes
``terms()`` and ``predict()`` for exactly that.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.metrics.regression import mean_absolute_percentage_error
from repro.stats.dataset import Dataset


class PerformanceInfluenceModel:
    """Stepwise linear + interaction regression of one objective on options.

    Parameters
    ----------
    max_terms:
        Upper bound on the number of selected terms.
    improvement_threshold:
        Minimum relative reduction of residual error required to accept a new
        term during forward selection (also used, symmetrically, by backward
        elimination).
    include_interactions:
        Whether pairwise interaction terms are candidates.
    """

    def __init__(self, max_terms: int = 20,
                 improvement_threshold: float = 0.01,
                 include_interactions: bool = True) -> None:
        self.max_terms = max_terms
        self.improvement_threshold = improvement_threshold
        self.include_interactions = include_interactions
        self._selected: list[tuple[str, ...]] = []
        self._coefficients: dict[tuple[str, ...], float] = {}
        self._intercept = 0.0
        self._options: list[str] = []

    # ------------------------------------------------------------------ fit
    def fit(self, data: Dataset, objective: str,
            options: Sequence[str]) -> "PerformanceInfluenceModel":
        self._options = [o for o in options if o in data.columns]
        y = data.column(objective)
        candidates = self._candidate_terms(self._options)
        term_columns = {term: self._term_column(data, term)
                        for term in candidates}

        selected: list[tuple[str, ...]] = []
        best_error = float(np.var(y)) if np.var(y) > 0 else 1.0

        # Forward selection.
        improved = True
        while improved and len(selected) < self.max_terms:
            improved = False
            best_term = None
            best_candidate_error = best_error
            for term in candidates:
                if term in selected:
                    continue
                error = self._fit_error(term_columns, selected + [term], y)
                if error < best_candidate_error * (1 - self.improvement_threshold):
                    best_candidate_error = error
                    best_term = term
            if best_term is not None:
                selected.append(best_term)
                best_error = best_candidate_error
                improved = True

        # Backward elimination.
        pruned = True
        while pruned and len(selected) > 1:
            pruned = False
            for term in list(selected):
                remaining = [t for t in selected if t != term]
                error = self._fit_error(term_columns, remaining, y)
                if error <= best_error * (1 + self.improvement_threshold):
                    selected = remaining
                    best_error = error
                    pruned = True
                    break

        self._selected = selected
        self._solve(term_columns, selected, y)
        return self

    def _candidate_terms(self, options: Sequence[str]) -> list[tuple[str, ...]]:
        terms: list[tuple[str, ...]] = [(o,) for o in options]
        if self.include_interactions:
            for i, a in enumerate(options):
                for b in options[i + 1:]:
                    terms.append((a, b))
        return terms

    @staticmethod
    def _term_column(data: Dataset, term: tuple[str, ...]) -> np.ndarray:
        column = np.ones(data.n_rows)
        for name in term:
            column = column * data.column(name)
        return column

    @staticmethod
    def _design(term_columns: Mapping[tuple[str, ...], np.ndarray],
                terms: Sequence[tuple[str, ...]]) -> np.ndarray:
        n_rows = len(next(iter(term_columns.values())))
        if not terms:
            return np.ones((n_rows, 1))
        columns = [term_columns[t] for t in terms]
        return np.column_stack(columns + [np.ones(n_rows)])

    def _fit_error(self, term_columns, terms, y: np.ndarray) -> float:
        design = self._design(term_columns, terms)
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        residual = y - design @ beta
        return float(np.mean(residual ** 2))

    def _solve(self, term_columns, terms, y: np.ndarray) -> None:
        design = self._design(term_columns, terms)
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        self._coefficients = {term: float(b) for term, b in zip(terms, beta)}
        self._intercept = float(beta[-1])

    # -------------------------------------------------------------- predict
    def predict_row(self, configuration: Mapping[str, float]) -> float:
        total = self._intercept
        for term, coefficient in self._coefficients.items():
            product = coefficient
            for name in term:
                product *= float(configuration.get(name, 0.0))
            total += product
        return total

    def predict(self, data: Dataset) -> np.ndarray:
        return np.array([self.predict_row(row) for row in data.rows()])

    def mape(self, data: Dataset, objective: str) -> float:
        """Prediction error (MAPE, %) of the model on a dataset."""
        return mean_absolute_percentage_error(data.column(objective),
                                              self.predict(data))

    # ------------------------------------------------------------ inspection
    def terms(self) -> dict[str, float]:
        """Selected terms and their coefficients, keyed by a readable name."""
        return {" * ".join(term): coefficient
                for term, coefficient in self._coefficients.items()}

    @property
    def n_terms(self) -> int:
        return len(self._coefficients)

    def important_options(self, top_n: int = 5) -> list[str]:
        """Options appearing in the largest-magnitude terms."""
        ranked = sorted(self._coefficients.items(),
                        key=lambda kv: abs(kv[1]), reverse=True)
        out: list[str] = []
        for term, _ in ranked:
            for name in term:
                if name not in out:
                    out.append(name)
            if len(out) >= top_n:
                break
        return out[:top_n]
