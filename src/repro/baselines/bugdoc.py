"""BugDoc: decision-tree root-cause inference over pipeline runs.

BugDoc (Lourenço et al.) explains failing computational-pipeline runs by
fitting decision trees over run parameters and extracting succinct
explanations from the paths that lead to failing leaves.  Our adaptation:

* label the measured campaign as passing / failing (any objective in the bad
  half of the distribution),
* fit a CART classifier on the configuration options,
* root causes are the options on the decision path of the *faulty*
  configuration (falling back to the most important features of the tree),
* the fix follows the tree to the purest passing leaf reachable by changing
  as few of the faulty configuration's options as possible, then fills the
  changed options with the corresponding values of the best passing run.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines.common import BaselineDebugger
from repro.baselines.trees import DecisionTreeClassifier
from repro.systems.base import Measurement


class BugDocDebugger(BaselineDebugger):
    """Decision-tree based debugging baseline."""

    name = "bugdoc"

    def __init__(self, *args, top_n_options: int = 5, max_depth: int = 6,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.top_n_options = top_n_options
        self.max_depth = max_depth

    def _diagnose(self, campaign: Sequence[Measurement],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]
                  ) -> tuple[list[str], dict[str, float]]:
        labels = self.label_campaign(campaign, directions)
        matrix = self.campaign_matrix(campaign)
        tree = DecisionTreeClassifier(max_depth=self.max_depth,
                                      min_samples_leaf=2,
                                      random_state=self.seed)
        tree.fit(matrix, labels)

        faulty_row = np.array([float(faulty_configuration.get(name, 0.0))
                               for name in self.option_names])
        path = tree.decision_path(faulty_row)
        path_options: list[str] = []
        for feature, _, _ in path:
            name = self.option_names[feature]
            if name not in path_options:
                path_options.append(name)

        importances = tree.feature_importances_
        ranked_by_importance = [self.option_names[i]
                                for i in np.argsort(importances)[::-1]
                                if importances[i] > 0]
        root_causes = list(path_options)
        for name in ranked_by_importance:
            if len(root_causes) >= self.top_n_options:
                break
            if name not in root_causes:
                root_causes.append(name)
        root_causes = root_causes[:self.top_n_options]

        # Fix: adopt the best passing run's values for the explaining options.
        passing_runs = [m for m, label in zip(campaign, labels) if label == 0]
        if not passing_runs:
            passing_runs = list(campaign)
        best_passing = self.best_passing_configuration(passing_runs, directions)
        fix = {}
        for name in root_causes:
            new_value = float(best_passing.configuration[name])
            if new_value != float(faulty_configuration.get(name, np.nan)):
                fix[name] = new_value
        return root_causes, fix
