"""SMAC: sequential model-based algorithm configuration.

SMAC (Hutter et al.) alternates between fitting a random-forest surrogate of
the objective over the configuration space and selecting the next
configuration by maximising expected improvement (EI) over a candidate pool
built from random configurations plus local perturbations of the incumbent.
This implementation follows that loop for a single minimised (or maximised)
objective and reports the same :class:`OptimizationResult` as Unicorn's
optimizer so the Fig. 15a/b traces are directly comparable.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.baselines.trees import RandomForestRegressor
from repro.core.optimizer import OptimizationResult
from repro.systems.base import ConfigurableSystem, Measurement


class SMACOptimizer:
    """Random-forest based sequential model-based optimization."""

    name = "smac"

    def __init__(self, system: ConfigurableSystem, budget: int = 100,
                 initial_samples: int = 25, n_repeats: int = 3,
                 n_candidates: int = 200, n_trees: int = 20,
                 seed: int = 0,
                 relevant_options: Sequence[str] | None = None) -> None:
        self.system = system
        self.budget = budget
        self.initial_samples = initial_samples
        self.n_repeats = n_repeats
        self.n_candidates = n_candidates
        self.n_trees = n_trees
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        names = system.space.option_names
        if relevant_options is not None:
            wanted = [o for o in relevant_options if o in names]
            self.option_names = wanted or names
        else:
            self.option_names = names

    # ------------------------------------------------------------------ API
    def optimize(self, objective: str,
                 initial_measurements: Sequence[Measurement] = ()
                 ) -> OptimizationResult:
        started = time.perf_counter()
        direction = self.system.objectives[objective]
        sign = 1.0 if direction == "minimize" else -1.0

        measurements: list[Measurement] = list(initial_measurements)
        needed = self.initial_samples - len(measurements)
        if needed > 0:
            configs = self.system.space.sample_configurations(needed, self._rng)
            measurements.extend(self.system.measure_many(
                configs, n_repeats=self.n_repeats, rng=self._rng))

        def value_of(measurement: Measurement) -> float:
            return sign * measurement.objectives[objective]

        incumbent = min(measurements, key=value_of)
        trace = [{objective: incumbent.objectives[objective]}]
        evaluated = [dict(m.objectives) for m in measurements]

        while len(measurements) < self.budget:
            x = self._matrix(measurements)
            y = np.array([value_of(m) for m in measurements])
            forest = RandomForestRegressor(n_trees=self.n_trees,
                                           random_state=self.seed)
            forest.fit(x, y)

            candidates = self._candidates(incumbent)
            candidate_matrix = np.array(
                [[c[name] for name in self.option_names] for c in candidates])
            mean, std = forest.predict_with_std(candidate_matrix)
            best_y = float(y.min())
            ei = self._expected_improvement(mean, std, best_y)
            chosen = candidates[int(np.argmax(ei))]

            measurement = self.system.measure(chosen, n_repeats=self.n_repeats,
                                              rng=self._rng)
            measurements.append(measurement)
            evaluated.append(dict(measurement.objectives))
            if value_of(measurement) < value_of(incumbent):
                incumbent = measurement
            trace.append({objective: incumbent.objectives[objective]})

        elapsed = time.perf_counter() - started
        return OptimizationResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives={objective: direction},
            best_configuration=dict(incumbent.configuration),
            best_objectives={objective: incumbent.objectives[objective]},
            iterations=len(measurements) - len(initial_measurements),
            samples_used=len(measurements),
            wall_clock_seconds=elapsed,
            simulated_hours=(len(measurements)
                             * self.system.measurement_cost_seconds / 3600.0),
            trace=trace,
            evaluated=evaluated)

    # ------------------------------------------------------------------ impl
    def _matrix(self, measurements: Sequence[Measurement]) -> np.ndarray:
        return np.array([[m.configuration[name] for name in self.option_names]
                         for m in measurements])

    def _candidates(self, incumbent: Measurement) -> list[dict[str, float]]:
        """Random configurations plus local perturbations of the incumbent."""
        candidates = self.system.space.sample_configurations(
            self.n_candidates // 2, self._rng)
        for _ in range(self.n_candidates - len(candidates)):
            candidate = dict(incumbent.configuration)
            names = self._rng.choice(self.option_names,
                                     size=min(2, len(self.option_names)),
                                     replace=False)
            for name in names:
                candidate[name] = float(self._rng.choice(
                    self.system.space.option(name).values))
            candidates.append(self.system.space.clamp(candidate))
        return candidates

    @staticmethod
    def _expected_improvement(mean: np.ndarray, std: np.ndarray,
                              best: float) -> np.ndarray:
        std = np.maximum(std, 1e-9)
        z = (best - mean) / std
        return (best - mean) * scipy_stats.norm.cdf(z) + std * scipy_stats.norm.pdf(z)
