"""Baseline approaches Unicorn is compared against.

Debugging baselines (Table 2, Fig. 14):

* :class:`~repro.baselines.cbi.CBIDebugger` — statistical debugging with
  predicate-based feature selection (Song & Lu).
* :class:`~repro.baselines.delta_debugging.DeltaDebugger` — iterative delta
  debugging over the difference between a faulty and a passing configuration.
* :class:`~repro.baselines.encore.EnCoreDebugger` — correlational rule
  learning over misconfiguration data.
* :class:`~repro.baselines.bugdoc.BugDocDebugger` — decision-tree root-cause
  inference over pipeline runs.

Optimization baselines (Fig. 15, Fig. 17):

* :class:`~repro.baselines.smac.SMACOptimizer` — sequential model-based
  algorithm configuration with a random-forest surrogate.
* :class:`~repro.baselines.pesmo.PESMOOptimizer` — multi-objective Bayesian
  optimization (Pareto-hypervolume acquisition over per-objective surrogate
  forests, standing in for predictive entropy search).

Modeling baseline (Fig. 4, Fig. 5, Fig. 21):

* :class:`~repro.baselines.influence_model.PerformanceInfluenceModel` —
  stepwise polynomial regression with forward selection and backward
  elimination, the standard performance-influence model of the literature.

The machine-learning substrate the baselines need (CART decision trees and
random forests) is implemented in :mod:`repro.baselines.trees`; the offline
environment has no scikit-learn.
"""

from repro.baselines.trees import DecisionTreeClassifier, RandomForestRegressor, RegressionTree
from repro.baselines.influence_model import PerformanceInfluenceModel
from repro.baselines.cbi import CBIDebugger
from repro.baselines.delta_debugging import DeltaDebugger
from repro.baselines.encore import EnCoreDebugger
from repro.baselines.bugdoc import BugDocDebugger
from repro.baselines.smac import SMACOptimizer
from repro.baselines.pesmo import PESMOOptimizer
from repro.baselines.random_search import RandomSearchOptimizer

__all__ = [
    "DecisionTreeClassifier",
    "RegressionTree",
    "RandomForestRegressor",
    "PerformanceInfluenceModel",
    "CBIDebugger",
    "DeltaDebugger",
    "EnCoreDebugger",
    "BugDocDebugger",
    "SMACOptimizer",
    "PESMOOptimizer",
    "RandomSearchOptimizer",
]
