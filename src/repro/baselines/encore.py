"""EnCore: correlational rule learning over misconfiguration data.

EnCore (Zhang et al.) detects misconfigurations by learning, from a corpus of
known-good configurations, rules about what values and value-combinations
options usually take, and flagging the entries of a suspect configuration
that violate those rules.  Our adaptation to performance faults:

* the "good corpus" is the passing half of the measured campaign,
* single-option rules record the empirical value distribution of each option
  among passing runs,
* pairwise rules record, for correlated option pairs, which value
  combinations co-occur in passing runs,
* the options of the faulty configuration are ranked by how strongly their
  values deviate from the learned rules; the top deviants are the root
  causes, and the fix replaces each with the most common passing value.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.common import BaselineDebugger
from repro.systems.base import Measurement


class EnCoreDebugger(BaselineDebugger):
    """Rule-based misconfiguration detector in the spirit of EnCore."""

    name = "encore"

    def __init__(self, *args, top_n_options: int = 5,
                 rare_value_threshold: float = 0.2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.top_n_options = top_n_options
        self.rare_value_threshold = rare_value_threshold

    def _diagnose(self, campaign: Sequence[Measurement],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]
                  ) -> tuple[list[str], dict[str, float]]:
        labels = self.label_campaign(campaign, directions)
        passing = [m for m, label in zip(campaign, labels) if label == 0]
        if not passing:
            passing = list(campaign)

        # Single-option value distributions among passing runs.
        value_counts: dict[str, Counter] = {}
        for name in self.option_names:
            value_counts[name] = Counter(
                float(m.configuration[name]) for m in passing)

        deviation: dict[str, float] = {}
        common_value: dict[str, float] = {}
        n_passing = len(passing)
        for name in self.option_names:
            counts = value_counts[name]
            most_common_value, most_common_count = counts.most_common(1)[0]
            common_value[name] = float(most_common_value)
            faulty_value = float(faulty_configuration.get(name,
                                                          most_common_value))
            frequency = counts.get(faulty_value, 0) / n_passing
            # Deviation is high when the faulty value is rare among passing
            # runs and an alternative value dominates.
            dominance = most_common_count / n_passing
            deviation[name] = max(dominance - frequency, 0.0)

        # Pairwise co-occurrence rules between strongly correlated options.
        matrix = self.campaign_matrix(passing)
        if matrix.shape[0] >= 5 and matrix.shape[1] >= 2:
            with np.errstate(invalid="ignore"):
                corr = np.corrcoef(matrix, rowvar=False)
            corr = np.nan_to_num(corr)
            for i, a in enumerate(self.option_names):
                for j in range(i + 1, len(self.option_names)):
                    if abs(corr[i, j]) < 0.4:
                        continue
                    b = self.option_names[j]
                    pairs = Counter(
                        (float(m.configuration[a]), float(m.configuration[b]))
                        for m in passing)
                    faulty_pair = (float(faulty_configuration.get(a, 0.0)),
                                   float(faulty_configuration.get(b, 0.0)))
                    frequency = pairs.get(faulty_pair, 0) / n_passing
                    if frequency < self.rare_value_threshold:
                        bump = self.rare_value_threshold - frequency
                        deviation[a] = deviation.get(a, 0.0) + 0.5 * bump
                        deviation[b] = deviation.get(b, 0.0) + 0.5 * bump

        ranked = sorted(deviation, key=deviation.get, reverse=True)
        root_causes = [o for o in ranked
                       if deviation[o] > 0][:self.top_n_options]
        if not root_causes:
            root_causes = ranked[:self.top_n_options]
        fix = {name: common_value[name] for name in root_causes
               if common_value[name] != float(faulty_configuration.get(name,
                                                                       np.nan))}
        return root_causes, fix
