"""Decision trees and random forests.

The debugging baseline BugDoc infers root causes with decision trees, and the
optimization baselines SMAC/PESMO use random-forest surrogates; the offline
environment has no scikit-learn, so this module provides compact CART
implementations: a classification tree (Gini impurity), a regression tree
(variance reduction) and a bootstrap-aggregated regression forest with
per-tree predictions (the spread across trees serves as the surrogate's
uncertainty estimate for expected-improvement acquisition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class _Node:
    """One node of a CART tree."""

    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0          # mean target (regression) or majority class
    probability: float = 0.0    # class-1 probability (classification)
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    p = np.mean(labels)
    return float(2.0 * p * (1.0 - p))


def _variance(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return float(np.var(values))


class _BaseTree:
    """Shared recursive CART construction."""

    def __init__(self, max_depth: int = 6, min_samples_split: int = 4,
                 min_samples_leaf: int = 2,
                 max_features: int | None = None,
                 random_state: int | None = None) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._root: _Node | None = None
        self.feature_importances_: np.ndarray | None = None

    # Subclasses define the impurity function and the leaf summary.
    def _impurity(self, y: np.ndarray) -> float:  # pragma: no cover
        raise NotImplementedError

    def _leaf(self, y: np.ndarray) -> _Node:  # pragma: no cover
        raise NotImplementedError

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_BaseTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        self._n_features = x.shape[1]
        self._importance = np.zeros(self._n_features)
        self._root = self._build(x, y, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (self._importance / total
                                     if total > 0 else self._importance)
        return self

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self._n_features:
            return np.arange(self._n_features)
        return self._rng.choice(self._n_features, size=self.max_features,
                                replace=False)

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node_impurity = self._impurity(y)
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or node_impurity <= 1e-12):
            return self._leaf(y)

        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        for feature in self._candidate_features():
            column = x[:, feature]
            values = np.unique(column)
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            if thresholds.size > 16:
                idx = np.linspace(0, thresholds.size - 1, 16).astype(int)
                thresholds = thresholds[idx]
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = len(y) - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = node_impurity - (
                    n_left / len(y) * self._impurity(y[mask])
                    + n_right / len(y) * self._impurity(y[~mask]))
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (int(feature), float(threshold), mask)
        if best is None:
            return self._leaf(y)

        feature, threshold, mask = best
        self._importance[feature] += best_gain * len(y)
        node = self._leaf(y)
        node.feature = feature
        node.threshold = threshold
        node.impurity = node_impurity
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _locate(self, row: np.ndarray) -> _Node:
        node = self._root
        if node is None:
            raise RuntimeError("tree is not fitted")
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def decision_path(self, row: Sequence[float]) -> list[tuple[int, float, bool]]:
        """Sequence of (feature, threshold, went_left) splits for one sample."""
        node = self._root
        if node is None:
            raise RuntimeError("tree is not fitted")
        path: list[tuple[int, float, bool]] = []
        row = np.asarray(row, dtype=float)
        while not node.is_leaf:
            went_left = bool(row[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, went_left))
            node = node.left if went_left else node.right
        return path


class DecisionTreeClassifier(_BaseTree):
    """Binary CART classifier (labels in {0, 1}) with Gini impurity."""

    def _impurity(self, y: np.ndarray) -> float:
        return _gini(y)

    def _leaf(self, y: np.ndarray) -> _Node:
        probability = float(np.mean(y)) if y.size else 0.0
        return _Node(value=float(probability >= 0.5), probability=probability,
                     n_samples=len(y), impurity=_gini(y))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.array([self._locate(row).probability for row in x])

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(float)

    def leaves(self) -> list[_Node]:
        """All leaf nodes (used by BugDoc to find passing/failing regions)."""
        out: list[_Node] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend([node.left, node.right])
        return out


class RegressionTree(_BaseTree):
    """CART regression tree with variance-reduction splits."""

    def _impurity(self, y: np.ndarray) -> float:
        return _variance(y)

    def _leaf(self, y: np.ndarray) -> _Node:
        return _Node(value=float(np.mean(y)) if y.size else 0.0,
                     n_samples=len(y), impurity=_variance(y))

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.array([self._locate(row).value for row in x])


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    ``predict`` returns the mean across trees; ``predict_with_std`` also
    returns the across-tree standard deviation, which SMAC uses as the
    surrogate uncertainty in its expected-improvement acquisition.
    """

    def __init__(self, n_trees: int = 20, max_depth: int = 6,
                 min_samples_leaf: int = 2,
                 max_features: int | None = None,
                 random_state: int = 0) -> None:
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._trees: list[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        rng = np.random.default_rng(self.random_state)
        n = len(y)
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(x.shape[1])))
        self._trees = []
        for i in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  max_features=max_features,
                                  random_state=self.random_state + i)
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def _per_tree(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.stack([tree.predict(x) for tree in self._trees], axis=0)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._per_tree(x).mean(axis=0)

    def predict_with_std(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        per_tree = self._per_tree(x)
        return per_tree.mean(axis=0), per_tree.std(axis=0)

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        return np.mean([t.feature_importances_ for t in self._trees], axis=0)
