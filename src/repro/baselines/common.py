"""Shared scaffolding for the debugging baselines.

Every debugging baseline follows the same protocol as Unicorn's debugger so
that Table 2 style comparisons are apples-to-apples:

1. measure a campaign of configurations (the baseline's sampling budget —
   the paper gives the correlational baselines the full 4-hour budget),
2. diagnose root causes and derive a candidate fix from the campaign,
3. measure the fix and report gains, accuracy inputs and resource usage in a
   :class:`~repro.core.debugger.DebugResult`.

Subclasses implement :meth:`BaselineDebugger._diagnose`.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

import numpy as np

from repro.core.debugger import DebugResult
from repro.metrics.debugging import gain as gain_metric
from repro.systems.base import ConfigurableSystem, Measurement


class BaselineDebugger:
    """Base class for correlational debugging baselines."""

    #: Overridden by subclasses for reporting.
    name = "baseline"

    def __init__(self, system: ConfigurableSystem, budget: int = 100,
                 n_repeats: int = 3, seed: int = 0,
                 relevant_options: Sequence[str] | None = None) -> None:
        self.system = system
        self.budget = budget
        self.n_repeats = n_repeats
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        names = system.space.option_names
        if relevant_options is not None:
            wanted = [o for o in relevant_options if o in names]
            self.option_names = wanted or names
        else:
            self.option_names = names

    # ------------------------------------------------------------------ API
    def debug(self, faulty_configuration: Mapping[str, float],
              faulty_measurement: Mapping[str, float] | None = None,
              objectives: Sequence[str] | None = None) -> DebugResult:
        started = time.perf_counter()
        objective_names = list(objectives or self.system.objective_names)
        directions = {o: self.system.objectives[o] for o in objective_names}
        faulty_configuration = self.system.space.clamp(faulty_configuration)
        if faulty_measurement is None:
            faulty = self.system.measure(faulty_configuration,
                                         n_repeats=self.n_repeats)
            faulty_measurement = dict(faulty.objectives)

        campaign_size = max(self.budget - 1, 4)
        configs = self.system.space.sample_configurations(campaign_size,
                                                          self._rng)
        campaign = self.system.measure_many(configs, n_repeats=self.n_repeats,
                                            rng=self._rng)

        root_causes, fix = self._diagnose(campaign, faulty_configuration,
                                          faulty_measurement, directions)
        candidate = dict(faulty_configuration)
        candidate.update(fix)
        fixed_measurement = self.system.measure(candidate,
                                                n_repeats=self.n_repeats,
                                                rng=self._rng)

        gains = {o: gain_metric(faulty_measurement[o],
                                fixed_measurement.objectives[o],
                                directions[o])
                 for o in objective_names}
        samples_used = len(campaign) + 1
        elapsed = time.perf_counter() - started
        return DebugResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives=directions,
            faulty_configuration=dict(faulty_configuration),
            faulty_measurement=dict(faulty_measurement),
            recommended_configuration=dict(fixed_measurement.configuration),
            recommended_measurement=dict(fixed_measurement.objectives),
            root_causes=root_causes,
            changed_options=sorted(fix),
            gains=gains,
            iterations=1,
            samples_used=samples_used,
            wall_clock_seconds=elapsed,
            simulated_hours=(samples_used
                             * self.system.measurement_cost_seconds / 3600.0),
            fixed=all(g > 0 for g in gains.values()),
            history=[])

    # ----------------------------------------------------------- subclasses
    def _diagnose(self, campaign: Sequence[Measurement],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]
                  ) -> tuple[list[str], dict[str, float]]:
        """Return (root-cause options, fix as option→value changes)."""
        raise NotImplementedError  # pragma: no cover

    # -------------------------------------------------------------- helpers
    def label_campaign(self, campaign: Sequence[Measurement],
                       directions: Mapping[str, str],
                       percentile: float = 50.0) -> np.ndarray:
        """Binary labels: 1 = "failing" (worse than the percentile), 0 = "passing".

        A measurement is failing when *any* objective is in the bad half of
        the campaign distribution.
        """
        labels = np.zeros(len(campaign))
        thresholds = {}
        for objective, direction in directions.items():
            values = np.array([m.objectives[objective] for m in campaign])
            if direction == "minimize":
                thresholds[objective] = np.percentile(values, percentile)
            else:
                thresholds[objective] = np.percentile(values,
                                                      100.0 - percentile)
        for i, measurement in enumerate(campaign):
            for objective, direction in directions.items():
                value = measurement.objectives[objective]
                bad = (value > thresholds[objective]
                       if direction == "minimize"
                       else value < thresholds[objective])
                if bad:
                    labels[i] = 1.0
                    break
        return labels

    def objective_score(self, measurement: Measurement,
                        directions: Mapping[str, str]) -> float:
        """Scalar goodness of a measurement (higher is better)."""
        score = 0.0
        for objective, direction in directions.items():
            value = measurement.objectives[objective]
            score += -value if direction == "minimize" else value
        return score

    def best_passing_configuration(self, campaign: Sequence[Measurement],
                                   directions: Mapping[str, str]
                                   ) -> Measurement:
        return max(campaign, key=lambda m: self.objective_score(m, directions))

    def campaign_matrix(self, campaign: Sequence[Measurement]) -> np.ndarray:
        return np.array([[m.configuration[name] for name in self.option_names]
                         for m in campaign])
