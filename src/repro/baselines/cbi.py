"""CBI: statistical debugging with predicate-based feature selection.

Statistical debugging (Song & Lu's adaptation to performance problems) scores
*predicates* — here, ``option == value`` atoms — by how much more often they
hold in failing runs than in passing runs.  The classic CBI importance score
for a predicate ``P`` combines

* ``Failure(P)`` — the probability a run fails given ``P`` holds, and
* ``Context(P)`` — the background failure probability among runs that reach
  ``P`` (for configuration predicates: all runs),

into ``Increase(P) = Failure(P) - Context(P)``, harmonically combined with the
predicate's sensitivity (how many failing runs it explains).  Options hosting
the top-scoring predicates are reported as root causes, and the fix sets each
such option to the value whose predicate is most associated with passing runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines.common import BaselineDebugger
from repro.systems.base import Measurement


class CBIDebugger(BaselineDebugger):
    """Cooperative-bug-isolation style statistical debugger."""

    name = "cbi"

    def __init__(self, *args, top_n_options: int = 5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.top_n_options = top_n_options

    def _diagnose(self, campaign: Sequence[Measurement],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]
                  ) -> tuple[list[str], dict[str, float]]:
        labels = self.label_campaign(campaign, directions)
        total_failures = float(labels.sum())
        context = total_failures / len(labels) if len(labels) else 0.0

        option_scores: dict[str, float] = {}
        passing_value: dict[str, float] = {}
        for name in self.option_names:
            values = np.array([m.configuration[name] for m in campaign])
            best_importance = 0.0
            best_pass_rate = -np.inf
            best_value_for_pass = float(faulty_configuration.get(name, values[0]))
            for value in np.unique(values):
                holds = values == value
                n_holds = int(holds.sum())
                if n_holds == 0:
                    continue
                failure = float(labels[holds].mean())
                increase = failure - context
                sensitivity = float(labels[holds].sum())
                if increase > 0 and sensitivity > 0:
                    importance = 2.0 / (1.0 / increase
                                        + np.log(total_failures + 1)
                                        / np.log(sensitivity + 1 + 1e-9))
                else:
                    importance = 0.0
                best_importance = max(best_importance, importance)
                pass_rate = 1.0 - failure
                if pass_rate > best_pass_rate:
                    best_pass_rate = pass_rate
                    best_value_for_pass = float(value)
            option_scores[name] = best_importance
            passing_value[name] = best_value_for_pass

        ranked = sorted(option_scores, key=option_scores.get, reverse=True)
        root_causes = [o for o in ranked if option_scores[o] > 0][:self.top_n_options]
        if not root_causes:
            root_causes = ranked[:self.top_n_options]
        fix = {name: passing_value[name] for name in root_causes
               if passing_value[name] != float(faulty_configuration.get(name, np.nan))}
        return root_causes, fix
