"""PESMO-style multi-objective Bayesian optimization.

PESMO (Hernández-Lobato et al.) selects evaluations that maximise the
expected reduction in entropy of the Pareto set.  Reproducing the exact
entropy-search acquisition requires Gaussian-process machinery that is out of
scope offline; as documented in DESIGN.md we substitute a surrogate-based
multi-objective optimizer with the same interface and evaluation profile:
per-objective random-forest surrogates and an expected-hypervolume-improvement
acquisition evaluated over a random + local candidate pool.  What matters for
the comparison in Fig. 15c/d is that the baseline spends its budget searching
the Pareto front with a model-based acquisition, which this does.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines.trees import RandomForestRegressor
from repro.core.optimizer import OptimizationResult
from repro.metrics.optimization import hypervolume, pareto_front
from repro.systems.base import ConfigurableSystem, Measurement


class PESMOOptimizer:
    """Multi-objective surrogate optimization with hypervolume acquisition."""

    name = "pesmo"

    def __init__(self, system: ConfigurableSystem, budget: int = 100,
                 initial_samples: int = 25, n_repeats: int = 3,
                 n_candidates: int = 150, n_trees: int = 15,
                 seed: int = 0,
                 relevant_options: Sequence[str] | None = None) -> None:
        self.system = system
        self.budget = budget
        self.initial_samples = initial_samples
        self.n_repeats = n_repeats
        self.n_candidates = n_candidates
        self.n_trees = n_trees
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        names = system.space.option_names
        if relevant_options is not None:
            wanted = [o for o in relevant_options if o in names]
            self.option_names = wanted or names
        else:
            self.option_names = names

    def optimize(self, objectives: Sequence[str],
                 initial_measurements: Sequence[Measurement] = ()
                 ) -> OptimizationResult:
        started = time.perf_counter()
        objective_names = list(objectives)
        directions = {o: self.system.objectives[o] for o in objective_names}
        signs = {o: 1.0 if d == "minimize" else -1.0
                 for o, d in directions.items()}

        measurements: list[Measurement] = list(initial_measurements)
        needed = self.initial_samples - len(measurements)
        if needed > 0:
            configs = self.system.space.sample_configurations(needed, self._rng)
            measurements.extend(self.system.measure_many(
                configs, n_repeats=self.n_repeats, rng=self._rng))

        evaluated = [dict(m.objectives) for m in measurements]

        def minimised_point(values: dict[str, float]) -> tuple[float, ...]:
            return tuple(signs[o] * values[o] for o in objective_names)

        def reference_point() -> tuple[float, ...]:
            points = [minimised_point(e) for e in evaluated]
            return tuple(max(p[i] for p in points) * 1.1 + 1e-6
                         for i in range(len(objective_names)))

        trace = [self._best_scalarised(evaluated, directions)]

        while len(measurements) < self.budget:
            x = np.array([[m.configuration[name] for name in self.option_names]
                          for m in measurements])
            forests = {}
            for objective in objective_names:
                y = np.array([signs[objective] * m.objectives[objective]
                              for m in measurements])
                forest = RandomForestRegressor(n_trees=self.n_trees,
                                               random_state=self.seed)
                forest.fit(x, y)
                forests[objective] = forest

            candidates = self._candidates(measurements)
            candidate_matrix = np.array(
                [[c[name] for name in self.option_names] for c in candidates])
            predictions = {o: forests[o].predict(candidate_matrix)
                           for o in objective_names}

            current_front = pareto_front([minimised_point(e)
                                          for e in evaluated])
            reference = reference_point()
            current_volume = hypervolume(current_front, reference)
            improvements = []
            for i in range(len(candidates)):
                point = tuple(float(predictions[o][i])
                              for o in objective_names)
                volume = hypervolume(list(current_front) + [point], reference)
                improvements.append(volume - current_volume)
            chosen = candidates[int(np.argmax(improvements))]

            measurement = self.system.measure(chosen, n_repeats=self.n_repeats,
                                              rng=self._rng)
            measurements.append(measurement)
            evaluated.append(dict(measurement.objectives))
            trace.append(self._best_scalarised(evaluated, directions))

        front_points = pareto_front([minimised_point(e) for e in evaluated])
        best_entry = self._best_scalarised(evaluated, directions)
        best_measurement = min(
            measurements,
            key=lambda m: sum(signs[o] * m.objectives[o]
                              for o in objective_names))
        elapsed = time.perf_counter() - started
        result = OptimizationResult(
            system=self.system.name,
            environment=self.system.environment.name,
            objectives=directions,
            best_configuration=dict(best_measurement.configuration),
            best_objectives={o: best_measurement.objectives[o]
                             for o in objective_names},
            iterations=len(measurements) - len(initial_measurements),
            samples_used=len(measurements),
            wall_clock_seconds=elapsed,
            simulated_hours=(len(measurements)
                             * self.system.measurement_cost_seconds / 3600.0),
            trace=[best_entry] if not trace else trace,
            evaluated=evaluated)
        # Attach the minimised-front for callers that want it directly.
        result.front = front_points  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------ impl
    def _candidates(self, measurements: Sequence[Measurement]
                    ) -> list[dict[str, float]]:
        candidates = self.system.space.sample_configurations(
            self.n_candidates // 2, self._rng)
        anchors = list(measurements[-10:])
        while len(candidates) < self.n_candidates and anchors:
            base = anchors[int(self._rng.integers(0, len(anchors)))]
            candidate = dict(base.configuration)
            names = self._rng.choice(self.option_names,
                                     size=min(2, len(self.option_names)),
                                     replace=False)
            for name in names:
                candidate[name] = float(self._rng.choice(
                    self.system.space.option(name).values))
            candidates.append(self.system.space.clamp(candidate))
        return candidates

    @staticmethod
    def _best_scalarised(evaluated: Sequence[dict[str, float]],
                         directions: dict[str, str]) -> dict[str, float]:
        """Best equal-weight scalarisation seen so far (for the trace)."""
        def score(entry: dict[str, float]) -> float:
            total = 0.0
            for objective, direction in directions.items():
                value = entry[objective]
                total += -value if direction == "minimize" else value
            return total

        best = max(evaluated, key=score)
        return {o: best[o] for o in directions}
