"""DD: iterative delta debugging over configuration differences.

Delta debugging minimises the difference between a failing configuration and
a passing one: starting from the set of options whose values differ between
the faulty configuration and the best passing configuration of the campaign,
the classic ``ddmin`` procedure repeatedly measures configurations in which
only a subset of those differences is applied, keeping a subset whenever it
is *sufficient* to fix the fault, until the difference set is 1-minimal.  The
minimal difference set is reported as the root causes and applying it to the
faulty configuration is the recommended fix.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.baselines.common import BaselineDebugger
from repro.metrics.debugging import gain as gain_metric
from repro.systems.base import Measurement


class DeltaDebugger(BaselineDebugger):
    """ddmin over the faulty-vs-passing configuration difference."""

    name = "dd"

    def __init__(self, *args, fix_gain_threshold: float = 10.0,
                 max_probe_measurements: int = 24, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fix_gain_threshold = fix_gain_threshold
        self.max_probe_measurements = max_probe_measurements

    # ------------------------------------------------------------------ impl
    def _is_fixed(self, changes: Mapping[str, float],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]) -> bool:
        """Measure the faulty configuration with ``changes`` applied."""
        candidate = dict(faulty_configuration)
        candidate.update(changes)
        measurement = self.system.measure(candidate, n_repeats=self.n_repeats,
                                          rng=self._rng)
        self._probes += 1
        gains = [gain_metric(faulty_measurement[o],
                             measurement.objectives[o], d)
                 for o, d in directions.items()]
        return all(g >= self.fix_gain_threshold for g in gains)

    def _diagnose(self, campaign: Sequence[Measurement],
                  faulty_configuration: Mapping[str, float],
                  faulty_measurement: Mapping[str, float],
                  directions: Mapping[str, str]
                  ) -> tuple[list[str], dict[str, float]]:
        self._probes = 0
        passing = self.best_passing_configuration(campaign, directions)
        differences = {
            name: passing.configuration[name] for name in self.option_names
            if passing.configuration[name] != faulty_configuration.get(name)
        }
        if not differences:
            return [], {}

        # ddmin over the keys of the difference set.
        delta = sorted(differences)
        granularity = 2
        while len(delta) > 1 and granularity <= len(delta):
            if self._probes >= self.max_probe_measurements:
                break
            chunk_size = max(len(delta) // granularity, 1)
            chunks = [delta[i:i + chunk_size]
                      for i in range(0, len(delta), chunk_size)]
            reduced = False
            for chunk in chunks:
                if self._probes >= self.max_probe_measurements:
                    break
                complement = [name for name in delta if name not in chunk]
                if not complement:
                    continue
                changes = {name: differences[name] for name in complement}
                if self._is_fixed(changes, faulty_configuration,
                                  faulty_measurement, directions):
                    delta = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(delta):
                    break
                granularity = min(granularity * 2, len(delta))

        fix = {name: differences[name] for name in delta}
        # ddmin can over-minimise when measurement noise fakes a "fix"; verify
        # the minimal set once and fall back to the full difference set if it
        # no longer reproduces the improvement (the passing configuration is
        # known to be good, so the full set always does).
        if (len(delta) < len(differences)
                and self._probes < self.max_probe_measurements
                and not self._is_fixed(fix, faulty_configuration,
                                       faulty_measurement, directions)):
            delta = sorted(differences)
            fix = dict(differences)
        return list(delta), fix
