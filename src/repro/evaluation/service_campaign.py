"""Service-throughput campaigns: the serving layer as experiment cells.

The north-star system serves heavy concurrent query traffic; this module
measures how well it does so, with the same campaign machinery (cells, seed
trees, resumable artifacts) the paper experiments use.  Two cell kinds:

* ``service_throughput`` — one subject, one concurrency level: a
  deterministic mixed workload answered once through one-at-a-time engine
  dispatch and once through a concurrent
  :class:`~repro.service.service.QueryService`; reports throughput,
  latency percentiles, the coalescing ratio and byte-identity.
* ``sharded_service_throughput`` — the long-horizon story: many subjects,
  many rounds of queries interleaved with (drifting) observation streams,
  served three ways — the eager single-process baseline (PR 4 semantics:
  every ``observe`` relearns), a drift-aware single-process run, and the
  drift-aware :class:`~repro.service.sharding.ShardedQueryService` —
  reporting the sharded tier's speedup over the eager baseline, the
  relearn counts of each side, and whether the sharded answers stayed
  byte-identical to the same-knob single-process run.
* ``cold_start_recovery`` — the durability story: a long-horizon workload
  primes a persistent :class:`~repro.service.store.ModelStore`, then
  worker **cold start** (a fresh service generation over the populated
  store vs refit-from-spec plus full-history replay) and **crash
  recovery** (snapshot restore plus journal-*suffix* replay vs refit plus
  full-journal replay) are timed head to head, with byte-identity of
  every recovered tier's answers against a single-process reference.
* ``gateway_throughput`` — the wire story: the identical per-client
  request streams (:func:`repro.service.workload.wire_workload`) are
  answered once by direct in-process ``submit_many`` calls and once by
  concurrent :class:`~repro.service.gateway.GatewayClient` connections
  through a :class:`~repro.service.gateway.GatewayServer` socket;
  reports wire availability, per-call gateway overhead, protocol error
  counts and byte-identity of every answer across the wire.
* ``rolling_refresh`` — the availability story: per-subject probe
  clients keep querying while
  :meth:`~repro.service.sharding.ShardedQueryService.rolling_refresh`
  upgrades the fleet onto new specs one shard at a time; reports probe
  availability and admission counts against a no-refresh baseline
  window, the capacity fraction implied by the refresh windows (at most
  one shard out at a time = never below N-1), byte-identity of the
  upgraded fleet against a cold fleet fitted directly on the new specs,
  and — via a deliberately poisoned second sweep — that a failed
  upgrade rolls the fleet back byte-identically.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.systems.registry import get_system

# repro.service imports repro.evaluation.store for its content-hash keys, so
# the service layer is imported lazily here to keep package import acyclic.

SERVICE_CELL = "service_throughput"
SHARDED_SERVICE_CELL = "sharded_service_throughput"
COLD_START_CELL = "cold_start_recovery"
ROLLING_REFRESH_CELL = "rolling_refresh"
GATEWAY_CELL = "gateway_throughput"


def run_service_throughput(system_name: str, hardware: str | None = None,
                           n_clients: int = 16, requests_per_client: int = 4,
                           n_samples: int = 60, seed: int = 0,
                           batch_window: float = 0.004) -> dict:
    """Measure serving throughput for one subject at one concurrency level.

    Parameters
    ----------
    system_name, hardware:
        Subject system (a :func:`repro.systems.registry.get_system` name)
        and optional hardware platform.
    n_clients:
        Concurrent client threads; each submits its requests as one
        ``submit_many`` batch and blocks for the answers (the
        serving-realistic pattern that gives the dispatcher its
        coalescing opportunities).
    requests_per_client:
        Mixed-workload queries per client.
    n_samples:
        Observational sample size the subject model is fitted on.
    seed:
        Seed for both the model fit and the workload.
    batch_window:
        Dispatcher accumulation window in seconds.

    Returns
    -------
    dict
        JSON-serializable cell result: ``n_queries``, ``serial_seconds``,
        ``service_seconds``, ``speedup``, ``throughput_qps``,
        ``coalesced_ratio``, ``identical`` (byte-identity of service vs
        one-at-a-time answers) and latency percentiles.
    """
    from repro.service.batcher import RequestBatcher
    from repro.service.registry import ModelRegistry
    from repro.service.service import QueryService
    from repro.service.workload import (canonical_answers,
                                        latency_percentiles, mixed_workload,
                                        serve_concurrently)

    registry = ModelRegistry(capacity=2)
    entry = registry.get_or_fit({"system": system_name, "hardware": hardware,
                                 "n_samples": int(n_samples),
                                 "seed": int(seed)})
    system = get_system(system_name, hardware=hardware)
    requests = mixed_workload(entry.key, entry.engine, system.objectives,
                              int(n_clients) * int(requests_per_client),
                              seed=seed)

    batcher = RequestBatcher()
    # Untimed warm-up: fill the engine's one-time caches (ranked paths,
    # residual columns) so neither timed side pays them — the serial
    # reference measures dispatch, not first-touch cost.
    batcher.dispatch(entry, requests)
    started = time.perf_counter()
    serial = batcher.serial_dispatch(entry, requests)
    serial_seconds = time.perf_counter() - started

    with QueryService(registry, batch_window=batch_window,
                      max_batch=512) as service:
        responses, service_seconds, stats = serve_concurrently(
            service, requests, int(n_clients))

    identical = canonical_answers(serial) == canonical_answers(responses)
    result = {
        "system": system_name,
        "n_clients": int(n_clients),
        "n_queries": len(requests),
        "serial_seconds": serial_seconds,
        "service_seconds": service_seconds,
        "speedup": serial_seconds / max(service_seconds, 1e-9),
        "throughput_qps": len(requests) / max(service_seconds, 1e-9),
        "coalesced_ratio": stats.coalesced_ratio,
        "identical": identical,
    }
    result.update(latency_percentiles(responses))
    return result


def run_sharded_service_throughput(system_name: str,
                                   hardware: str | None = None,
                                   n_subjects: int = 4, shards: int = 2,
                                   n_clients: int = 32, n_rounds: int = 6,
                                   queries_per_round: int = 64,
                                   observations_per_round: int = 8,
                                   n_samples: int = 50, seed: int = 0,
                                   drift_threshold: float = 6.0,
                                   drift_rounds: Sequence[int] = (3,),
                                   drift_scale: float = 1.6,
                                   drift_min_window: int = 4,
                                   observation_batches_per_round: int = 1,
                                   use_processes: bool = True,
                                   batch_window: float = 0.002) -> dict:
    """Measure the sharded drift-aware tier on a long-horizon workload.

    Three serving tiers process the identical workload — ``n_rounds``
    rounds of a mixed query batch from ``n_clients`` concurrent clients
    followed by per-subject observation streams
    (:func:`repro.service.workload.long_horizon_workload`) over
    ``n_subjects`` independently seeded models of one system:

    1. the **eager single-process baseline**: a
       :class:`~repro.service.service.QueryService` whose registry
       relearns on every observation batch (the PR 4 ``observe``
       semantics);
    2. the **drift-aware single-process reference**: same service, but
       observations buffer until the
       :class:`~repro.service.drift.DriftDetector` sees the stream shift
       past ``drift_threshold``;
    3. the **sharded tier**: a
       :class:`~repro.service.sharding.ShardedQueryService` with the
       same drift knobs, subjects hash-partitioned across ``shards``
       workers.

    The headline ``speedup`` is tier 3 over tier 1 — what a deployment
    gains on a long-running workload from refreshing only on real drift
    (and, on multi-core hosts, from overlapping shard work).
    ``identical`` certifies tier 3 == tier 2 byte for byte: sharding
    never changes an answer.

    Parameters
    ----------
    system_name, hardware:
        Subject system; each of the ``n_subjects`` models gets its own
        seed-tree-derived fit seed.
    n_subjects, shards, n_clients, n_rounds, queries_per_round,
    observations_per_round, n_samples:
        Workload and deployment shape.
    seed:
        Root seed of the workload/fit seed tree.
    drift_threshold, drift_rounds, drift_scale:
        Drift knobs: detector threshold, regime-shift rounds, and shift
        magnitude.
    use_processes:
        Worker processes (``True``) or in-process worker threads.
    batch_window:
        Dispatcher coalescing window of the single-process tiers.

    Returns
    -------
    dict
        JSON-serializable cell result: per-tier seconds, ``speedup``,
        ``throughput_qps``, relearn counters per tier, and
        ``identical``.
    """
    from repro.service.service import QueryService
    from repro.service.sharding import ShardedQueryService, registry_from_specs
    from repro.service.workload import (_derived_seed, canonical_answers,
                                        long_horizon_workload, serve_rounds)

    specs = {
        f"{system_name}-{i}": {
            "system": system_name, "hardware": hardware,
            "n_samples": int(n_samples), "seed": _derived_seed(seed, 3, i),
        }
        for i in range(int(n_subjects))
    }
    systems = {subject: get_system(system_name, hardware=hardware)
               for subject in specs}

    # The workload is generated once, before any serving begins, from the
    # eager tier's freshly fitted engines (generation only reads them;
    # the observe mutations happen later, against fixed workload data) —
    # every other tier then refits its own registry from the same specs.
    eager_registry = registry_from_specs(specs)
    engines = {subject: eager_registry.get(subject).engine
               for subject in specs}
    rounds = long_horizon_workload(
        engines, systems, n_rounds=int(n_rounds),
        queries_per_round=int(queries_per_round),
        observations_per_round=int(observations_per_round), seed=seed,
        drift_rounds=tuple(drift_rounds), drift_scale=float(drift_scale),
        observation_batches_per_round=int(observation_batches_per_round))
    n_queries = sum(len(r["queries"]) for r in rounds)

    with QueryService(eager_registry, batch_window=batch_window,
                      max_batch=512) as service:
        _, eager_seconds = serve_rounds(service, rounds, int(n_clients))

    drift_registry = registry_from_specs(
        specs, drift_threshold=float(drift_threshold),
        drift_min_window=int(drift_min_window), refresh_async=True)
    with QueryService(drift_registry, batch_window=batch_window,
                      max_batch=512) as service:
        reference, drift_seconds = serve_rounds(service, rounds,
                                                int(n_clients))

    with ShardedQueryService(specs, shards=int(shards),
                             use_processes=bool(use_processes),
                             drift_threshold=float(drift_threshold),
                             drift_min_window=int(drift_min_window),
                             refresh_async=True) as sharded:
        responses, sharded_seconds = serve_rounds(sharded, rounds,
                                                  int(n_clients))
        worker_stats = sharded.worker_stats()

    identical = canonical_answers(responses) == canonical_answers(reference)
    return {
        "system": system_name,
        "n_subjects": int(n_subjects),
        "shards": int(shards),
        "n_clients": int(n_clients),
        "n_rounds": int(n_rounds),
        "n_queries": n_queries,
        "drift_threshold": float(drift_threshold),
        "eager_seconds": eager_seconds,
        "drift_seconds": drift_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": eager_seconds / max(sharded_seconds, 1e-9),
        "throughput_qps": n_queries / max(sharded_seconds, 1e-9),
        "eager_refreshes": eager_registry.refreshes,
        "drift_refreshes": drift_registry.refreshes,
        "drift_refreshes_skipped": drift_registry.refreshes_skipped,
        "sharded_refreshes": sum(w["refreshes"] for w in worker_stats),
        "subjects_per_shard": [len(w["subjects"]) for w in worker_stats],
        "identical": identical,
    }


def run_cold_start_recovery(system_name: str, hardware: str | None = None,
                            n_subjects: int = 4, shards: int = 2,
                            n_clients: int = 32, n_rounds: int = 6,
                            queries_per_round: int = 64,
                            observations_per_round: int = 8,
                            observation_batches_per_round: int = 1,
                            n_samples: int = 50, seed: int = 0,
                            snapshot_every: int = 4,
                            probe_queries: int = 40,
                            use_processes: bool = True,
                            store_root: str | None = None,
                            batch_window: float = 0.002) -> dict:
    """Measure what the persistent model store buys at restart time.

    A long-horizon workload (``n_rounds`` rounds of ``n_clients``
    concurrent query batches interleaved with per-subject observation
    streams, eager refresh semantics) primes a
    :class:`~repro.service.store.ModelStore`; then two restart scenarios
    are timed head to head:

    * **cold start** — standing up a fresh service generation that must
      reach the primed model state: with the store it loads the latest
      snapshots (no CI tests, no least-squares, no replay); the baseline
      refits every subject from its spec and replays the *entire*
      observation history, paying one incremental relearn per replayed
      batch;
    * **crash recovery** — a worker is killed under a primed service and
      the time to the next answered probe query is measured: with the
      store the respawn restores snapshots and replays only the journal
      *suffix* past each subject's snapshot watermark (the parent
      compacted the rest); the baseline refits and replays its full
      journal.

    Every recovered tier must answer a converged-state probe workload
    byte-identically to a single-process reference registry that folded
    the same history — restarts may never change an answer.

    Parameters
    ----------
    system_name, hardware:
        Subject system; each of the ``n_subjects`` models gets its own
        seed-tree-derived fit seed.
    n_subjects, shards, n_clients, n_rounds, queries_per_round,
    observations_per_round, observation_batches_per_round, n_samples:
        Workload and deployment shape (the priming phase).
    seed:
        Root seed of the workload/fit seed tree.
    snapshot_every:
        Durable-snapshot cadence in eager mode: publish every N-th
        observe fold (the journal covers the gap, so recovery replays at
        most ~N ops per subject).
    probe_queries:
        Size of the converged-state probe workload used for the
        byte-identity checks and the recovery timing.
    use_processes:
        Worker processes (``True``) or in-process worker threads.
    store_root:
        Directory for the store; a temporary directory when ``None``.
    batch_window:
        Dispatcher coalescing window of the sharded tiers.

    Returns
    -------
    dict
        JSON-serializable cell result: priming/cold-start/recovery
        seconds per side, ``cold_start_speedup`` and
        ``recovery_speedup`` (baseline over store), journal lengths
        (bounded with the store, full without), store counters and
        ``identical``.
    """
    import tempfile
    import shutil

    from repro.service.batcher import RequestBatcher
    from repro.service.sharding import (ShardedQueryService,
                                        registry_from_specs, shard_of)
    from repro.service.workload import (_derived_seed, canonical_answers,
                                        long_horizon_workload, mixed_workload,
                                        serve_rounds)

    specs = {
        f"{system_name}-{i}": {
            "system": system_name, "hardware": hardware,
            "n_samples": int(n_samples), "seed": _derived_seed(seed, 5, i),
        }
        for i in range(int(n_subjects))
    }
    systems = {subject: get_system(system_name, hardware=hardware)
               for subject in specs}

    # Reference: one single-process registry folds the same history the
    # services will see; its serial answers define the converged state
    # every restarted tier must reproduce byte for byte.
    reference = registry_from_specs(specs)
    engines = {subject: reference.get(subject).engine for subject in specs}
    rounds = long_horizon_workload(
        engines, systems, n_rounds=int(n_rounds),
        queries_per_round=int(queries_per_round),
        observations_per_round=int(observations_per_round), seed=seed,
        observation_batches_per_round=int(observation_batches_per_round))
    n_queries = sum(len(r["queries"]) for r in rounds)
    observation_ops = 0
    for round_spec in rounds:
        for subject, batches in round_spec["observations"].items():
            for batch in batches:
                reference.observe(subject, batch)
                observation_ops += 1
    probes = []
    for position, subject in enumerate(sorted(specs)):
        probes.extend(mixed_workload(
            subject, reference.get(subject).engine,
            systems[subject].objectives,
            max(int(probe_queries) // len(specs), 1),
            seed=_derived_seed(seed, 7, position)))
    serial = []
    for subject in sorted(specs):
        serial.extend(RequestBatcher().serial_dispatch(
            reference.get(subject),
            [p for p in probes if p.subject == subject]))
    reference_answers = canonical_answers(serial)
    # Crash the shard of the alphabetically first subject (every shard
    # with at least one subject behaves identically).
    crash_subject = sorted(specs)[0]
    crash_shard = shard_of(crash_subject, int(shards))

    store_dir = store_root or tempfile.mkdtemp(prefix="model-store-")
    service_options = dict(shards=int(shards),
                           use_processes=bool(use_processes),
                           batch_window=float(batch_window))
    identical = True
    try:
        # ---- priming + crash recovery WITH the store -------------------
        with ShardedQueryService(specs, store_path=store_dir,
                                 snapshot_every=int(snapshot_every),
                                 **service_options) as primed:
            _, prime_seconds = serve_rounds(primed, rounds, int(n_clients))
            journal_len_store = max(len(s.journal)
                                    for s in primed._shards)
            compacted_ops = primed.stats.journal_ops_compacted
            primed._inject_crash(crash_shard)
            started = time.perf_counter()
            probe = next(p for p in probes if p.subject == crash_subject)
            primed.submit(probe, timeout=600.0)
            recovery_store_seconds = time.perf_counter() - started
            recovered = primed.submit_many(probes, timeout=600.0)
            identical &= canonical_answers(recovered) == reference_answers

        # ---- cold start WITH the store ---------------------------------
        started = time.perf_counter()
        with ShardedQueryService(specs, store_path=store_dir,
                                 snapshot_every=int(snapshot_every),
                                 **service_options) as restarted:
            cold_store_seconds = time.perf_counter() - started
            answers = restarted.submit_many(probes, timeout=600.0)
            identical &= canonical_answers(answers) == reference_answers
            restarted_stats = restarted.worker_stats()

        # ---- baseline: refit from specs + full-history replay ----------
        started = time.perf_counter()
        with ShardedQueryService(specs, store_path=None,
                                 **service_options) as baseline:
            for round_spec in rounds:
                acks = []
                for subject, batches in round_spec["observations"].items():
                    for batch in batches:
                        acks.append(baseline.observe(subject, batch,
                                                     block=False))
                baseline.quiesce()
                for ack in acks:
                    ack.result(timeout=600.0)
            cold_baseline_seconds = time.perf_counter() - started
            journal_len_baseline = max(len(s.journal)
                                       for s in baseline._shards)
            answers = baseline.submit_many(probes, timeout=600.0)
            identical &= canonical_answers(answers) == reference_answers
            baseline._inject_crash(crash_shard)
            started = time.perf_counter()
            probe = next(p for p in probes if p.subject == crash_subject)
            baseline.submit(probe, timeout=600.0)
            recovery_baseline_seconds = time.perf_counter() - started
            recovered = baseline.submit_many(probes, timeout=600.0)
            identical &= canonical_answers(recovered) == reference_answers
    finally:
        if store_root is None:
            shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "system": system_name,
        "n_subjects": int(n_subjects),
        "shards": int(shards),
        "n_clients": int(n_clients),
        "n_rounds": int(n_rounds),
        "n_queries": n_queries,
        "n_observation_ops": observation_ops,
        "snapshot_every": int(snapshot_every),
        "prime_seconds": prime_seconds,
        "cold_store_seconds": cold_store_seconds,
        "cold_baseline_seconds": cold_baseline_seconds,
        "cold_start_speedup": cold_baseline_seconds
        / max(cold_store_seconds, 1e-9),
        "recovery_store_seconds": recovery_store_seconds,
        "recovery_baseline_seconds": recovery_baseline_seconds,
        "recovery_speedup": recovery_baseline_seconds
        / max(recovery_store_seconds, 1e-9),
        "journal_len_store": journal_len_store,
        "journal_len_baseline": journal_len_baseline,
        "journal_ops_compacted": compacted_ops,
        "store_loads": sum(w["store_loads"] for w in restarted_stats),
        "identical": identical,
    }


def run_gateway_throughput(system_name: str, hardware: str | None = None,
                           n_clients: int = 8, requests_per_client: int = 4,
                           n_samples: int = 60, seed: int = 0,
                           batch_window: float = 0.002,
                           quota: int | None = None) -> dict:
    """Measure the wire gateway against direct in-process submission.

    :func:`repro.service.workload.wire_workload` generates one
    deterministic request stream per client; the streams are answered
    twice against the *same* fitted service — first directly
    (``service.submit_many`` per stream, the in-process baseline), then
    by ``n_clients`` concurrent
    :class:`~repro.service.gateway.GatewayClient` connections through a
    :class:`~repro.service.gateway.GatewayServer` socket, each client
    pipelining its own stream.  Since CI is single-core, the verdicts
    are correctness and overhead, not parallel speedup:

    * ``identical`` — every wire answer byte-equal (canonical JSON) to
      its direct-call twin;
    * ``availability`` — fraction of wire requests answered (the soak
      gate demands 1.0);
    * ``overhead_ms_per_call`` — added wall milliseconds per request of
      going through framing + socket + server threads;
    * ``protocol_errors`` — gateway-counted wire violations (must be 0
      for well-formed traffic).

    Parameters
    ----------
    system_name, hardware:
        Subject system and optional hardware platform.
    n_clients, requests_per_client:
        Wire concurrency and per-client stream length.
    n_samples, seed:
        Model fit size and the root of the workload seed tree.
    batch_window:
        Dispatcher accumulation window of the fronted service.
    quota:
        Optional per-tenant lifetime query budget (``None`` =
        unlimited; the soak needs every request admitted).

    Returns
    -------
    dict
        JSON-serializable cell result with the four verdicts plus raw
        seconds, throughput and the gateway's counter snapshot.
    """
    import threading

    from repro.service.gateway import GatewayClient, GatewayServer, Tenant
    from repro.service.registry import ModelRegistry
    from repro.service.service import QueryService
    from repro.service.workload import canonical_answers, wire_workload

    registry = ModelRegistry(capacity=2)
    entry = registry.get_or_fit({"system": system_name, "hardware": hardware,
                                 "n_samples": int(n_samples),
                                 "seed": int(seed)})
    system = get_system(system_name, hardware=hardware)
    streams = wire_workload(entry.key, entry.engine, system.objectives,
                            int(n_clients), int(requests_per_client),
                            seed=seed)
    n_queries = sum(len(stream) for stream in streams)

    with QueryService(registry, batch_window=batch_window,
                      max_batch=512) as service:
        # Direct baseline: the same per-client streams, in-process.
        service.submit_many([r for stream in streams for r in stream])
        started = time.perf_counter()
        direct = [service.submit_many(stream) for stream in streams]
        direct_seconds = time.perf_counter() - started

        tenants = {f"key-{i}": Tenant(f"client-{i}", quota=quota)
                   for i in range(int(n_clients))}
        wire: list[list | None] = [None] * int(n_clients)
        failures: list[str] = []
        with GatewayServer(service, tenants=tenants,
                           recv_timeout=60.0) as gateway:
            def client(index: int) -> None:
                try:
                    with GatewayClient(gateway.address,
                                       api_key=f"key-{index}") as conn:
                        wire[index] = conn.submit_many(streams[index])
                except Exception as exc:  # noqa: BLE001 - recorded verdict
                    failures.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(int(n_clients))]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wire_seconds = time.perf_counter() - started
            gateway_stats = gateway.stats.as_dict()

    answered = sum(len(stream) for stream in wire if stream is not None)
    identical = all(
        stream is not None
        and canonical_answers(stream) == canonical_answers(direct[index])
        for index, stream in enumerate(wire))
    return {
        "system": system_name,
        "n_clients": int(n_clients),
        "n_queries": n_queries,
        "direct_seconds": direct_seconds,
        "wire_seconds": wire_seconds,
        "throughput_qps": n_queries / max(wire_seconds, 1e-9),
        "overhead_ms_per_call": max(
            (wire_seconds - direct_seconds) / max(n_queries, 1), 0.0) * 1e3,
        "availability": answered / max(n_queries, 1),
        "client_failures": failures,
        "protocol_errors": gateway_stats["protocol_errors"],
        "identical": identical,
        "gateway_stats": gateway_stats,
    }


def _max_window_overlap(windows: Sequence[Mapping]) -> int:
    """Peak number of refresh windows open at one instant (0 if none)."""
    events: list[tuple[float, int]] = []
    for window in windows:
        events.append((float(window["started"]), 1))
        events.append((float(window["finished"]), -1))
    events.sort()  # a close sorts before an open at the same timestamp
    current = peak = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def run_rolling_refresh(system_name: str, hardware: str | None = None,
                        n_subjects: int = 4, shards: int = 2,
                        observation_rounds: int = 2,
                        observations_per_round: int = 6,
                        n_samples: int = 40, new_n_samples: int = 60,
                        seed: int = 0, probe_queries: int = 24,
                        baseline_window: float = 0.25,
                        poll_interval: float = 0.0,
                        use_processes: bool = True,
                        store_root: str | None = None,
                        batch_window: float = 0.002,
                        drain_timeout: float = 120.0,
                        check_rollback: bool = True) -> dict:
    """Measure fleet availability through a zero-downtime rolling refresh.

    A sharded fleet over a persistent store is primed with observation
    streams, then upgraded onto new specs (``new_n_samples`` replaces
    ``n_samples``) by :meth:`~repro.service.sharding.ShardedQueryService.
    rolling_refresh` **while one probe client per subject keeps
    querying** (:func:`repro.service.workload.refresh_under_traffic`).
    The same probe traffic also runs for a no-refresh ``baseline_window``
    first, so the refresh's admission behaviour has a control to be
    compared against.  Four verdicts come out:

    * ``refresh_availability`` — fraction of probes answered cleanly
      during the refresh (the gate demands 1.0: no errors, no
      exceptions, no rejections);
    * ``refresh_capacity_fraction`` — 1.0 when at most one shard's
      refresh window was open at any instant (capacity never below N-1
      of N shards), degrading toward 0.0 with overlap;
    * ``identical`` — the upgraded fleet answers a probe workload
      byte-identically to a cold single-process registry fitted directly
      on the new specs (an upgrade is indistinguishable from a fresh
      deployment);
    * ``rollback_identical`` — a second fleet swept with one deliberately
      poisoned spec raises
      :class:`~repro.service.sharding.RollingRefreshError` and then
      answers byte-identically to its pre-refresh self (failed upgrades
      leave no trace), exercising per-shard
      :meth:`~repro.service.store.ModelStore.rollback`.

    Parameters
    ----------
    system_name, hardware:
        Subject system; each of the ``n_subjects`` models gets its own
        seed-tree-derived fit seed.
    n_subjects, shards:
        Fleet shape.
    observation_rounds, observations_per_round:
        Priming observation stream per subject (folded into the models
        the rollback check must restore byte-identically).
    n_samples, new_n_samples:
        Old- and new-generation observational sample sizes — the spec
        change the refresh deploys.
    seed:
        Root seed of the fit/workload seed tree.
    probe_queries:
        Size of the byte-identity probe workload (split across
        subjects).
    baseline_window:
        Seconds of no-refresh probe traffic measured as the admission
        control.
    poll_interval:
        Sleep between probe submissions (0 = back-to-back).
    use_processes:
        Worker processes (``True``) or in-process worker threads.
    store_root:
        Directory for the model store; a temporary directory if
        ``None``.
    batch_window:
        Dispatcher coalescing window.
    drain_timeout:
        Per-shard drain/flush barrier timeout of the refresh.
    check_rollback:
        Run the poisoned-sweep rollback phase (skippable for pure
        availability timing).

    Returns
    -------
    dict
        JSON-serializable cell result (see the four verdicts above, plus
        probe counts, refresh wall seconds, per-service admission
        deltas and the service's refresh counters).
    """
    import tempfile
    import shutil

    from repro.service.sharding import (RollingRefreshError,
                                        ShardedQueryService,
                                        registry_from_specs, shard_of)
    from repro.service.batcher import RequestBatcher
    from repro.service.workload import (_derived_seed, canonical_answers,
                                        drifting_measurement_stream,
                                        mixed_workload, refresh_under_traffic)
    import threading

    specs = {
        f"{system_name}-{i}": {
            "system": system_name, "hardware": hardware,
            "n_samples": int(n_samples), "seed": _derived_seed(seed, 9, i),
        }
        for i in range(int(n_subjects))
    }
    new_specs = {subject: dict(spec, n_samples=int(new_n_samples))
                 for subject, spec in specs.items()}
    systems = {subject: get_system(system_name, hardware=hardware)
               for subject in specs}

    # Probe workloads come from the old generation's engines (payload
    # vocabulary only; the requests are equally valid against the new
    # models), one batch per subject plus a single hot probe each for
    # the live-traffic clients.
    old_reference = registry_from_specs(specs)
    probes = []
    probe_map = {}
    for position, subject in enumerate(sorted(specs)):
        subject_probes = mixed_workload(
            subject, old_reference.get(subject).engine,
            systems[subject].objectives,
            max(int(probe_queries) // len(specs), 1),
            seed=_derived_seed(seed, 11, position))
        probes.extend(subject_probes)
        probe_map[subject] = subject_probes[0]
    streams = {
        subject: drifting_measurement_stream(
            systems[subject], int(observation_rounds),
            int(observations_per_round),
            seed=_derived_seed(seed, 13, position))
        for position, subject in enumerate(sorted(specs))
    }

    # The byte-identity reference: a cold single-process registry fitted
    # directly on the NEW specs — what the upgraded fleet must match.
    new_reference = registry_from_specs(new_specs)
    new_reference_answers = canonical_answers([
        response
        for subject in sorted(specs)
        for response in RequestBatcher().serial_dispatch(
            new_reference.get(subject),
            [p for p in probes if p.subject == subject])])

    def prime(service):
        acks = []
        for round_index in range(int(observation_rounds)):
            for subject in sorted(specs):
                acks.append(service.observe(
                    subject, streams[subject][round_index], block=False))
        service.quiesce()
        for ack in acks:
            ack.result(timeout=600.0)

    def probe_window(service, duration: float) -> list[dict]:
        """No-refresh control: the refresh's probe loop, without the
        refresh."""
        records: list[dict] = []
        lock = threading.Lock()
        stop = threading.Event()

        def prober(subject, request):
            while not stop.is_set():
                entry = {"subject": subject, "started": time.monotonic()}
                try:
                    response = service.submit(request, timeout=600.0)
                    entry["ok"] = bool(response.ok)
                    entry["error"] = response.error
                except BaseException as exc:  # noqa: BLE001 - recorded
                    entry["ok"] = False
                    entry["error"] = f"{type(exc).__name__}: {exc}"
                entry["finished"] = time.monotonic()
                with lock:
                    records.append(entry)
                if poll_interval:
                    time.sleep(poll_interval)

        threads = [threading.Thread(target=prober, args=item)
                   for item in sorted(probe_map.items())]
        for thread in threads:
            thread.start()
        time.sleep(float(duration))
        stop.set()
        for thread in threads:
            thread.join()
        return records

    store_dir = store_root or tempfile.mkdtemp(prefix="rolling-refresh-")
    service_options = dict(shards=int(shards),
                           use_processes=bool(use_processes),
                           batch_window=float(batch_window))
    result: dict = {
        "system": system_name,
        "n_subjects": int(n_subjects),
        "shards": int(shards),
        "n_probe_queries": len(probes),
    }
    try:
        with ShardedQueryService(specs, store_path=store_dir,
                                 **service_options) as service:
            prime(service)
            rejected_before = service.stats.rejected
            baseline_records = probe_window(service,
                                            float(baseline_window))
            baseline_rejected = service.stats.rejected - rejected_before

            rejected_before = service.stats.rejected
            started = time.perf_counter()
            windows, records = refresh_under_traffic(
                service, new_specs, probe_map,
                drain_timeout=float(drain_timeout),
                poll_interval=float(poll_interval))
            refresh_seconds = time.perf_counter() - started
            refresh_rejected = service.stats.rejected - rejected_before

            answers = service.submit_many(probes, timeout=600.0)
            identical = canonical_answers(answers) == new_reference_answers
            overlap = _max_window_overlap(windows)
            ok_probes = sum(1 for r in records if r["ok"])
            result.update({
                "refresh_seconds": refresh_seconds,
                "refresh_windows": len(windows),
                "probes_during_refresh": len(records),
                "probe_errors": len(records) - ok_probes,
                "refresh_availability": (ok_probes / len(records)
                                         if records else 1.0),
                "max_concurrent_refreshing": overlap,
                "refresh_capacity_fraction": (
                    1.0 if int(shards) == 1 or overlap <= 1
                    else (int(shards) - overlap)
                    / max(int(shards) - 1, 1)),
                "refresh_rejected": refresh_rejected,
                "baseline_probes": len(baseline_records),
                "baseline_probe_errors": sum(
                    1 for r in baseline_records if not r["ok"]),
                "baseline_rejected": baseline_rejected,
                "extra_rejections": refresh_rejected - baseline_rejected,
                "identical": identical,
                "rolling_refreshes": service.stats.rolling_refreshes,
            })

        if check_rollback:
            # A separate fleet, a poisoned sweep: the subject on the
            # highest-indexed populated shard fails, so every shard that
            # upgraded before it must be downgraded back.
            rollback_dir = tempfile.mkdtemp(prefix="rolling-rollback-")
            try:
                with ShardedQueryService(specs, store_path=rollback_dir,
                                         **service_options) as victim:
                    prime(victim)
                    before = canonical_answers(
                        victim.submit_many(probes, timeout=600.0))
                    poison = max(sorted(specs),
                                 key=lambda s: shard_of(s, int(shards)))
                    bad_specs = dict(new_specs)
                    bad_specs[poison] = {"system": "no-such-system",
                                         "n_samples": int(new_n_samples)}
                    failed = False
                    try:
                        victim.rolling_refresh(
                            bad_specs, drain_timeout=float(drain_timeout))
                    except RollingRefreshError:
                        failed = True
                    after = canonical_answers(
                        victim.submit_many(probes, timeout=600.0))
                    result.update({
                        "rollback_refresh_failed": failed,
                        "rollback_identical": failed and after == before,
                        "refresh_rollbacks":
                            victim.stats.refresh_rollbacks,
                    })
            finally:
                shutil.rmtree(rollback_dir, ignore_errors=True)
    finally:
        if store_root is None:
            shutil.rmtree(store_dir, ignore_errors=True)
    return result


@register_cell_kind(SERVICE_CELL)
def _service_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one service-throughput measurement."""
    return run_service_throughput(
        spec["system"], spec.get("hardware"),
        n_clients=int(spec.get("n_clients", 16)),
        requests_per_client=int(spec.get("requests_per_client", 4)),
        n_samples=int(spec.get("n_samples", 60)),
        seed=seed,
        batch_window=float(spec.get("batch_window", 0.004)))


@register_cell_kind(SHARDED_SERVICE_CELL)
def _sharded_service_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one sharded long-horizon measurement."""
    return run_sharded_service_throughput(
        spec["system"], spec.get("hardware"),
        n_subjects=int(spec.get("n_subjects", 4)),
        shards=int(spec.get("shards", 2)),
        n_clients=int(spec.get("n_clients", 32)),
        n_rounds=int(spec.get("n_rounds", 6)),
        queries_per_round=int(spec.get("queries_per_round", 64)),
        observations_per_round=int(spec.get("observations_per_round", 8)),
        n_samples=int(spec.get("n_samples", 50)),
        seed=seed,
        drift_threshold=float(spec.get("drift_threshold", 6.0)),
        drift_rounds=tuple(spec.get("drift_rounds", (3,))),
        drift_scale=float(spec.get("drift_scale", 1.6)),
        drift_min_window=int(spec.get("drift_min_window", 4)),
        observation_batches_per_round=int(
            spec.get("observation_batches_per_round", 1)),
        use_processes=bool(spec.get("use_processes", True)),
        batch_window=float(spec.get("batch_window", 0.002)))


@register_cell_kind(COLD_START_CELL)
def _cold_start_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one cold-start/crash-recovery measurement."""
    return run_cold_start_recovery(
        spec["system"], spec.get("hardware"),
        n_subjects=int(spec.get("n_subjects", 4)),
        shards=int(spec.get("shards", 2)),
        n_clients=int(spec.get("n_clients", 32)),
        n_rounds=int(spec.get("n_rounds", 6)),
        queries_per_round=int(spec.get("queries_per_round", 64)),
        observations_per_round=int(spec.get("observations_per_round", 8)),
        observation_batches_per_round=int(
            spec.get("observation_batches_per_round", 1)),
        n_samples=int(spec.get("n_samples", 50)),
        seed=seed,
        snapshot_every=int(spec.get("snapshot_every", 4)),
        probe_queries=int(spec.get("probe_queries", 40)),
        use_processes=bool(spec.get("use_processes", True)),
        store_root=spec.get("store_root"),
        batch_window=float(spec.get("batch_window", 0.002)))


@register_cell_kind(GATEWAY_CELL)
def _gateway_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one wire-gateway throughput measurement."""
    quota = spec.get("quota")
    return run_gateway_throughput(
        spec["system"], spec.get("hardware"),
        n_clients=int(spec.get("n_clients", 8)),
        requests_per_client=int(spec.get("requests_per_client", 4)),
        n_samples=int(spec.get("n_samples", 60)),
        seed=seed,
        batch_window=float(spec.get("batch_window", 0.002)),
        quota=None if quota is None else int(quota))


@register_cell_kind(ROLLING_REFRESH_CELL)
def _rolling_refresh_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one rolling-refresh availability measurement."""
    return run_rolling_refresh(
        spec["system"], spec.get("hardware"),
        n_subjects=int(spec.get("n_subjects", 4)),
        shards=int(spec.get("shards", 2)),
        observation_rounds=int(spec.get("observation_rounds", 2)),
        observations_per_round=int(spec.get("observations_per_round", 6)),
        n_samples=int(spec.get("n_samples", 40)),
        new_n_samples=int(spec.get("new_n_samples", 60)),
        seed=seed,
        probe_queries=int(spec.get("probe_queries", 24)),
        baseline_window=float(spec.get("baseline_window", 0.25)),
        poll_interval=float(spec.get("poll_interval", 0.0)),
        use_processes=bool(spec.get("use_processes", True)),
        store_root=spec.get("store_root"),
        batch_window=float(spec.get("batch_window", 0.002)),
        drain_timeout=float(spec.get("drain_timeout", 120.0)),
        check_rollback=bool(spec.get("check_rollback", True)))


def service_campaign_cells(scenarios: Sequence[Mapping]) -> list[CampaignCell]:
    """One cell per serving scenario (dicts of
    :func:`run_service_throughput` kwargs — or, with ``"shards"`` in the
    scenario, of :func:`run_sharded_service_throughput` kwargs, with
    ``"cold_start": True``, of :func:`run_cold_start_recovery` kwargs,
    with ``"rolling_refresh": True``, of :func:`run_rolling_refresh`
    kwargs, or, with ``"gateway": True``, of
    :func:`run_gateway_throughput` kwargs; ``system`` is mandatory).

    Raises
    ------
    ValueError
        If a scenario does not name its subject system.
    """
    cells = []
    for scenario in scenarios:
        spec = dict(scenario)
        if "system" not in spec:
            raise ValueError(f"service scenario needs 'system': {spec}")
        if spec.pop("gateway", False):
            kind = GATEWAY_CELL
        elif spec.pop("rolling_refresh", False):
            kind = ROLLING_REFRESH_CELL
        elif spec.pop("cold_start", False):
            kind = COLD_START_CELL
        elif "shards" in spec:
            kind = SHARDED_SERVICE_CELL
        else:
            kind = SERVICE_CELL
        cells.append(CampaignCell(kind=kind, spec=spec))
    return cells


def run_service_campaign(scenarios: Sequence[Mapping], root_seed: int = 0,
                         parallel: bool = False,
                         max_workers: int | None = None,
                         store: ArtifactStore | None = None) -> list[dict]:
    """Run a grid of serving scenarios through the campaign runner.

    Parameters
    ----------
    scenarios:
        See :func:`service_campaign_cells`.
    root_seed, parallel, max_workers, store:
        Forwarded to :func:`repro.evaluation.runner.run_campaign`.

    Returns
    -------
    list of dict
        One :func:`run_service_throughput` result per scenario, in
        scenario order.
    """
    cells = service_campaign_cells(scenarios)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()
