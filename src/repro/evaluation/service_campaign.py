"""Service-throughput campaign: the serving layer as an experiment cell.

The north-star system serves heavy concurrent query traffic; this module
measures how well it does so, with the same campaign machinery (cells, seed
trees, resumable artifacts) the paper experiments use.  One cell fits a
subject model, generates a deterministic mixed workload
(:func:`repro.service.workload.mixed_workload`), answers it twice — once
through one-at-a-time engine dispatch, once through a concurrent
:class:`~repro.service.service.QueryService` — and reports throughput,
latency percentiles, the coalescing ratio and whether the two answer sets
were byte-identical.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.systems.registry import get_system

# repro.service imports repro.evaluation.store for its content-hash keys, so
# the service layer is imported lazily here to keep package import acyclic.

SERVICE_CELL = "service_throughput"


def run_service_throughput(system_name: str, hardware: str | None = None,
                           n_clients: int = 16, requests_per_client: int = 4,
                           n_samples: int = 60, seed: int = 0,
                           batch_window: float = 0.004) -> dict:
    """Measure serving throughput for one subject at one concurrency level.

    Parameters
    ----------
    system_name, hardware:
        Subject system (a :func:`repro.systems.registry.get_system` name)
        and optional hardware platform.
    n_clients:
        Concurrent client threads; each submits its requests as one
        ``submit_many`` batch and blocks for the answers (the
        serving-realistic pattern that gives the dispatcher its
        coalescing opportunities).
    requests_per_client:
        Mixed-workload queries per client.
    n_samples:
        Observational sample size the subject model is fitted on.
    seed:
        Seed for both the model fit and the workload.
    batch_window:
        Dispatcher accumulation window in seconds.

    Returns
    -------
    dict
        JSON-serializable cell result: ``n_queries``, ``serial_seconds``,
        ``service_seconds``, ``speedup``, ``throughput_qps``,
        ``coalesced_ratio``, ``identical`` (byte-identity of service vs
        one-at-a-time answers) and latency percentiles.
    """
    from repro.service.batcher import RequestBatcher
    from repro.service.registry import ModelRegistry
    from repro.service.service import QueryService
    from repro.service.workload import (canonical_answers,
                                        latency_percentiles, mixed_workload,
                                        serve_concurrently)

    registry = ModelRegistry(capacity=2)
    entry = registry.get_or_fit({"system": system_name, "hardware": hardware,
                                 "n_samples": int(n_samples),
                                 "seed": int(seed)})
    system = get_system(system_name, hardware=hardware)
    requests = mixed_workload(entry.key, entry.engine, system.objectives,
                              int(n_clients) * int(requests_per_client),
                              seed=seed)

    batcher = RequestBatcher()
    # Untimed warm-up: fill the engine's one-time caches (ranked paths,
    # residual columns) so neither timed side pays them — the serial
    # reference measures dispatch, not first-touch cost.
    batcher.dispatch(entry, requests)
    started = time.perf_counter()
    serial = batcher.serial_dispatch(entry, requests)
    serial_seconds = time.perf_counter() - started

    with QueryService(registry, batch_window=batch_window,
                      max_batch=512) as service:
        responses, service_seconds, stats = serve_concurrently(
            service, requests, int(n_clients))

    identical = canonical_answers(serial) == canonical_answers(responses)
    result = {
        "system": system_name,
        "n_clients": int(n_clients),
        "n_queries": len(requests),
        "serial_seconds": serial_seconds,
        "service_seconds": service_seconds,
        "speedup": serial_seconds / max(service_seconds, 1e-9),
        "throughput_qps": len(requests) / max(service_seconds, 1e-9),
        "coalesced_ratio": stats.coalesced_ratio,
        "identical": identical,
    }
    result.update(latency_percentiles(responses))
    return result


@register_cell_kind(SERVICE_CELL)
def _service_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one service-throughput measurement."""
    return run_service_throughput(
        spec["system"], spec.get("hardware"),
        n_clients=int(spec.get("n_clients", 16)),
        requests_per_client=int(spec.get("requests_per_client", 4)),
        n_samples=int(spec.get("n_samples", 60)),
        seed=seed,
        batch_window=float(spec.get("batch_window", 0.004)))


def service_campaign_cells(scenarios: Sequence[Mapping]) -> list[CampaignCell]:
    """One cell per serving scenario (dicts of
    :func:`run_service_throughput` kwargs; ``system`` is mandatory).

    Raises
    ------
    ValueError
        If a scenario does not name its subject system.
    """
    cells = []
    for scenario in scenarios:
        spec = dict(scenario)
        if "system" not in spec:
            raise ValueError(f"service scenario needs 'system': {spec}")
        cells.append(CampaignCell(kind=SERVICE_CELL, spec=spec))
    return cells


def run_service_campaign(scenarios: Sequence[Mapping], root_seed: int = 0,
                         parallel: bool = False,
                         max_workers: int | None = None,
                         store: ArtifactStore | None = None) -> list[dict]:
    """Run a grid of serving scenarios through the campaign runner.

    Parameters
    ----------
    scenarios:
        See :func:`service_campaign_cells`.
    root_seed, parallel, max_workers, store:
        Forwarded to :func:`repro.evaluation.runner.run_campaign`.

    Returns
    -------
    list of dict
        One :func:`run_service_throughput` result per scenario, in
        scenario order.
    """
    cells = service_campaign_cells(scenarios)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()
