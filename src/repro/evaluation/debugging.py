"""Debugging-effectiveness experiments (Table 2a/2b, Table 14, Fig. 14).

``run_debugging_comparison`` takes one subject system, discovers (or is
given) a set of non-functional faults, runs Unicorn and the requested
correlational baselines on each fault, and reports the paper's metrics:
ACE-weighted accuracy, precision, recall, gain per objective and time.
``run_sample_efficiency`` sweeps the sampling budget for the Fig. 14 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.bugdoc import BugDocDebugger
from repro.baselines.cbi import CBIDebugger
from repro.baselines.delta_debugging import DeltaDebugger
from repro.baselines.encore import EnCoreDebugger
from repro.core.debugger import DebugResult, UnicornDebugger
from repro.core.unicorn import UnicornConfig
from repro.evaluation.relevant import relevant_options_for
from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.metrics.debugging import ace_weighted_accuracy, precision_recall
from repro.systems.base import ConfigurableSystem
from repro.systems.faults import Fault, discover_faults
from repro.systems.registry import get_system

#: Baseline name -> debugger class.
BASELINE_CLASSES = {
    "cbi": CBIDebugger,
    "dd": DeltaDebugger,
    "encore": EnCoreDebugger,
    "bugdoc": BugDocDebugger,
}


@dataclass
class ApproachOutcome:
    """Aggregated metrics of one approach over a set of faults."""

    approach: str
    accuracy: float
    precision: float
    recall: float
    gains: dict[str, float]
    mean_gain: float
    hours: float
    samples: float
    results: list[DebugResult] = field(default_factory=list)


@dataclass
class DebuggingComparison:
    """Outcome of one system/objective debugging comparison."""

    system: str
    environment: str
    objectives: tuple[str, ...]
    n_faults: int
    outcomes: dict[str, ApproachOutcome] = field(default_factory=dict)

    def best_approach(self, metric: str = "accuracy") -> str:
        return max(self.outcomes,
                   key=lambda name: getattr(self.outcomes[name], metric))

    def rows(self) -> list[dict[str, float | str]]:
        out: list[dict[str, float | str]] = []
        for name, outcome in self.outcomes.items():
            row: dict[str, float | str] = {
                "approach": name,
                "accuracy": round(outcome.accuracy, 1),
                "precision": round(outcome.precision, 1),
                "recall": round(outcome.recall, 1),
                "gain": round(outcome.mean_gain, 1),
                "hours": round(outcome.hours, 2),
                "samples": round(outcome.samples, 1),
            }
            out.append(row)
        return out


def _true_root_causes(system: ConfigurableSystem, objectives: Sequence[str],
                      top_n: int = 5,
                      restrict_to: Sequence[str] | None = None
                      ) -> tuple[list[str], dict[str, float]]:
    """Ground-truth root causes and ACE weights for the accuracy metric.

    ``restrict_to`` limits the candidate options to the set every compared
    approach is allowed to modify (the "relevant options" of the scenario),
    so no approach is penalised for options outside the studied space.
    """
    weights: dict[str, float] = {}
    allowed = set(restrict_to) if restrict_to is not None else None
    for objective in objectives:
        for option, effect in system.true_option_effects(objective).items():
            if allowed is not None and option not in allowed:
                continue
            weights[option] = weights.get(option, 0.0) + effect
    ranked = sorted(weights, key=weights.get, reverse=True)
    return ranked[:top_n], weights


def _evaluate(result: DebugResult, true_causes: Sequence[str],
              weights: Mapping[str, float]) -> dict[str, float]:
    accuracy = ace_weighted_accuracy(result.root_causes, true_causes, weights)
    pr = precision_recall(result.root_causes, true_causes)
    return {"accuracy": 100.0 * accuracy, "precision": 100.0 * pr["precision"],
            "recall": 100.0 * pr["recall"]}


def run_debugging_comparison(system_name: str, hardware: str,
                             objectives: Sequence[str],
                             approaches: Sequence[str] = ("unicorn", "cbi",
                                                          "dd", "encore",
                                                          "bugdoc"),
                             n_faults: int = 2,
                             budget: int = 50,
                             initial_samples: int = 20,
                             fault_percentile: float = 97.0,
                             fault_samples: int = 300,
                             seed: int = 0,
                             faults: Sequence[Fault] | None = None
                             ) -> DebuggingComparison:
    """Run Unicorn and baselines on faults of one system.

    ``objectives`` selects single-objective (one name) or multi-objective
    (several names) faults, matching Table 2a vs. Table 2b.
    """
    relevant = relevant_options_for(system_name)
    objective_names = list(objectives)

    if faults is None:
        catalogue_system = get_system(system_name, hardware=hardware)
        catalogue = discover_faults(catalogue_system, n_samples=fault_samples,
                                    percentile=fault_percentile,
                                    objectives=objective_names, seed=seed)
        if len(objective_names) == 1:
            pool = catalogue.single_objective(objective_names[0])
        else:
            pool = catalogue.multi_objective(objective_names)
        if not pool:
            pool = catalogue.faults
        faults = pool[:n_faults]
    faults = list(faults)
    if not faults:
        raise RuntimeError(
            f"no faults found for {system_name} / {objective_names}")

    comparison = DebuggingComparison(
        system=system_name, environment=hardware,
        objectives=tuple(objective_names), n_faults=len(faults))

    reference_system = get_system(system_name, hardware=hardware)
    true_causes, weights = _true_root_causes(reference_system, objective_names,
                                             restrict_to=relevant)

    for approach in approaches:
        per_fault: list[DebugResult] = []
        metrics = {"accuracy": [], "precision": [], "recall": []}
        gains: dict[str, list[float]] = {o: [] for o in objective_names}
        hours: list[float] = []
        samples: list[float] = []
        for i, fault in enumerate(faults):
            system = get_system(system_name, hardware=hardware)
            if approach == "unicorn":
                config = UnicornConfig(initial_samples=initial_samples,
                                       budget=budget, seed=seed + i,
                                       relevant_options=relevant)
                debugger = UnicornDebugger(system, config)
                result = debugger.debug_fault(fault,
                                              objectives=objective_names)
            else:
                cls = BASELINE_CLASSES[approach]
                baseline = cls(system, budget=budget, seed=seed + i,
                               relevant_options=relevant)
                result = baseline.debug(fault.configuration_dict(),
                                        fault.measured_dict(),
                                        objectives=objective_names)
            per_fault.append(result)
            scores = _evaluate(result, true_causes, weights)
            for key, value in scores.items():
                metrics[key].append(value)
            for objective in objective_names:
                gains[objective].append(result.gains[objective])
            hours.append(result.simulated_hours)
            samples.append(result.samples_used)

        comparison.outcomes[approach] = ApproachOutcome(
            approach=approach,
            accuracy=float(np.mean(metrics["accuracy"])),
            precision=float(np.mean(metrics["precision"])),
            recall=float(np.mean(metrics["recall"])),
            gains={o: float(np.mean(v)) for o, v in gains.items()},
            mean_gain=float(np.mean([np.mean(v) for v in gains.values()])),
            hours=float(np.mean(hours)),
            samples=float(np.mean(samples)),
            results=per_fault)
    return comparison


DEBUGGING_CELL = "debugging_comparison"


@register_cell_kind(DEBUGGING_CELL)
def _debugging_comparison_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: a full debugging comparison on one scenario."""
    comparison = run_debugging_comparison(
        spec["system"], spec["hardware"], list(spec["objectives"]),
        approaches=tuple(spec.get("approaches",
                                  ("unicorn", "cbi", "dd", "encore",
                                   "bugdoc"))),
        n_faults=int(spec.get("n_faults", 2)),
        budget=int(spec.get("budget", 50)),
        initial_samples=int(spec.get("initial_samples", 20)),
        fault_percentile=float(spec.get("fault_percentile", 97.0)),
        fault_samples=int(spec.get("fault_samples", 300)),
        seed=seed)
    return {
        "system": comparison.system,
        "hardware": comparison.environment,
        "objectives": list(comparison.objectives),
        "n_faults": comparison.n_faults,
        "rows": comparison.rows(),
        "best_accuracy": comparison.best_approach("accuracy"),
    }


def debugging_campaign_cells(scenarios: Sequence[tuple[str, str,
                                                       Sequence[str]]],
                             approaches: Sequence[str] = ("unicorn", "cbi",
                                                          "dd", "encore",
                                                          "bugdoc"),
                             n_faults: int = 2, budget: int = 50,
                             initial_samples: int = 20,
                             fault_percentile: float = 97.0,
                             fault_samples: int = 300) -> list[CampaignCell]:
    """One cell per ``(system, hardware, objectives)`` scenario."""
    return [CampaignCell(kind=DEBUGGING_CELL, spec={
        "system": system, "hardware": hardware,
        "objectives": list(objectives), "approaches": list(approaches),
        "n_faults": int(n_faults), "budget": int(budget),
        "initial_samples": int(initial_samples),
        "fault_percentile": float(fault_percentile),
        "fault_samples": int(fault_samples),
    }) for system, hardware, objectives in scenarios]


def run_debugging_campaign(scenarios: Sequence[tuple[str, str,
                                                     Sequence[str]]],
                           root_seed: int = 0, parallel: bool = False,
                           max_workers: int | None = None,
                           store: ArtifactStore | None = None,
                           **cell_kwargs) -> list[dict]:
    """Run the Table 2a/2b scenario grid through the campaign runner."""
    cells = debugging_campaign_cells(scenarios, **cell_kwargs)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()


def run_sample_efficiency(system_name: str, hardware: str, objective: str,
                          budgets: Sequence[int] = (30, 60, 100),
                          approaches: Sequence[str] = ("unicorn", "bugdoc"),
                          seed: int = 0) -> dict[str, list[dict[str, float]]]:
    """Gain as a function of the sampling budget (Fig. 14 curves)."""
    curves: dict[str, list[dict[str, float]]] = {a: [] for a in approaches}
    for budget in budgets:
        comparison = run_debugging_comparison(
            system_name, hardware, [objective], approaches=approaches,
            n_faults=1, budget=budget,
            initial_samples=min(20, max(budget // 3, 5)), seed=seed)
        for approach in approaches:
            outcome = comparison.outcomes[approach]
            curves[approach].append({"budget": float(budget),
                                     "gain": outcome.mean_gain,
                                     "samples": outcome.samples})
    return curves
