"""Small plain-text table formatter used by benchmarks and examples."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return title or ""
    if columns is None:
        columns = list(rows[0].keys())
    rendered: list[list[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_format_cell(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in rendered)
              for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(line, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
