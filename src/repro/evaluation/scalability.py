"""Scalability experiments (Table 3).

Each scenario of Table 3 selects a number of configuration options and system
events for SQLite or Deepstream; the runner learns a causal performance model
on that variable set, counts causal paths and candidate queries, measures the
discovery and query-evaluation times and runs one debugging pass to obtain
the gain and total time per fault — the columns of Table 3.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.debugger import UnicornDebugger
from repro.core.unicorn import Unicorn, UnicornConfig, LoopState
from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.systems.faults import discover_faults
from repro.systems.registry import get_system


@dataclass
class ScalabilityRow:
    """One row of Table 3."""

    system: str
    n_options: int
    n_events: int
    n_paths: int
    n_queries: int
    average_degree: float
    gain: float
    discovery_seconds: float
    query_seconds: float
    total_seconds: float


SCALABILITY_CELL = "scalability_scenario"


@register_cell_kind(SCALABILITY_CELL)
def _scalability_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one Table 3 row at the requested scale."""
    row = run_scalability_scenario(
        spec["system"], spec["hardware"],
        n_extra_options=int(spec.get("n_extra_options", 0)),
        n_extra_events=int(spec.get("n_extra_events", 0)),
        objective=spec.get("objective", "QueryTime"),
        n_samples=int(spec.get("n_samples", 60)),
        debug_budget=int(spec.get("debug_budget", 40)),
        seed=seed)
    return asdict(row)


def scalability_campaign_cells(scenarios: Sequence[Mapping]
                               ) -> list[CampaignCell]:
    """One cell per Table 3 scenario (a dict of run_scalability_scenario kwargs
    with ``system`` and ``hardware`` mandatory)."""
    cells = []
    for scenario in scenarios:
        spec = dict(scenario)
        if "system" not in spec or "hardware" not in spec:
            raise ValueError(
                f"scalability scenario needs 'system' and 'hardware': {spec}")
        cells.append(CampaignCell(kind=SCALABILITY_CELL, spec=spec))
    return cells


def run_scalability_campaign(scenarios: Sequence[Mapping],
                             root_seed: int = 0, parallel: bool = False,
                             max_workers: int | None = None,
                             store: ArtifactStore | None = None
                             ) -> list[dict]:
    """Run the Table 3 scenario grid through the campaign runner."""
    cells = scalability_campaign_cells(scenarios)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()


def _evaluate_candidate_queries(engine, system, probe,
                                objectives) -> int:
    """Run one batched repair scan and report how many candidate queries it
    evaluated.

    The probe measurement stands in as the fault, so the ``query_seconds``
    column times what Stage V actually does at this scale: enumerate the
    candidate grid once and score every candidate counterfactual in a single
    vectorized call.
    """
    directions = {o: system.objectives[o] for o in objectives
                  if o in system.objectives}
    if not directions:
        return 1
    repair_set = engine.repair_candidates_batch(
        dict(probe.configuration),
        {o: probe.objectives[o] for o in directions},
        directions)
    return max(len(repair_set), 1)


def run_scalability_scenario(system_name: str, hardware: str,
                             n_extra_options: int = 0,
                             n_extra_events: int = 0,
                             objective: str = "QueryTime",
                             n_samples: int = 60,
                             debug_budget: int = 40,
                             seed: int = 0) -> ScalabilityRow:
    """Learn a model and debug one fault at the requested scale."""
    kwargs = {}
    if system_name == "sqlite":
        kwargs = {"n_extra_options": n_extra_options,
                  "n_extra_events": n_extra_events}
    system = get_system(system_name, hardware=hardware, **kwargs)

    config = UnicornConfig(initial_samples=n_samples, budget=n_samples,
                           seed=seed, max_condition_size=1)
    unicorn = Unicorn(system, config)
    state = LoopState()
    started = time.perf_counter()
    unicorn.collect_initial_samples(state)
    sampling_seconds = time.perf_counter() - started

    started = time.perf_counter()
    engine = unicorn.learn(state)
    discovery_seconds = time.perf_counter() - started

    objectives = [objective] if objective in system.objective_names \
        else system.objective_names[:1]
    started = time.perf_counter()
    paths = engine.ranked_paths(objectives)
    n_queries = _evaluate_candidate_queries(engine, system,
                                            state.measurements[0], objectives)
    query_seconds = time.perf_counter() - started

    # One debugging pass at this scale for the gain / time-per-fault columns.
    fault_system = get_system(system_name, hardware=hardware, **kwargs)
    catalogue = discover_faults(fault_system, n_samples=150, percentile=95.0,
                                objectives=objectives, seed=seed)
    pool = catalogue.single_objective(objectives[0]) or catalogue.faults
    gain_value = 0.0
    debug_seconds = 0.0
    if pool:
        debug_system = get_system(system_name, hardware=hardware, **kwargs)
        debugger = UnicornDebugger(
            debug_system,
            UnicornConfig(initial_samples=15, budget=debug_budget, seed=seed,
                          max_condition_size=1))
        started = time.perf_counter()
        result = debugger.debug_fault(pool[0], objectives=objectives)
        debug_seconds = time.perf_counter() - started
        gain_value = float(np.mean(list(result.gains.values())))

    return ScalabilityRow(
        system=system_name,
        n_options=len(system.space),
        n_events=len(system.events),
        n_paths=len(paths),
        n_queries=n_queries,
        average_degree=state.learned.graph.average_degree(),
        gain=gain_value,
        discovery_seconds=discovery_seconds,
        query_seconds=query_seconds,
        total_seconds=sampling_seconds + discovery_seconds + query_seconds
        + debug_seconds)
