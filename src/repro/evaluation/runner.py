"""Campaign orchestration: cells, deterministic seed trees, parallel runs.

The paper's evaluation is a grid of independent cells — system × hardware ×
workload × seed.  Every runner in :mod:`repro.evaluation` used to walk its
grid serially inside one process; this module factors the walking out:

* :class:`CampaignCell` — one cell of a campaign grid: a registered *kind*
  (the executor to run) plus a plain-JSON *spec* (its parameters).  Cells
  are pure data, picklable and content-hashable, so they can cross process
  boundaries and key the artifact store.
* a **seed tree** — per-cell seeds derive from one root seed through a
  :class:`numpy.random.SeedSequence` spawn tree keyed by cell position, so
  a cell's random stream depends only on the root seed and its place in the
  grid, never on which worker ran it or in which order.  Serial and
  parallel runs of the same campaign are therefore bit-identical.
* :class:`ParallelRunner` — enumerates cells, skips the ones already in the
  :class:`~repro.evaluation.store.ArtifactStore`, executes the rest either
  serially or over a spawn-safe :class:`~concurrent.futures.ProcessPoolExecutor`,
  persists each result as it completes, and returns outcomes in enumeration
  order.

Cell executors are module-level functions registered by name via
:func:`register_cell_kind`; worker processes re-resolve the executor from
the registry after importing :mod:`repro.evaluation`, so the runner works
under both the cheap ``fork`` start method (preferred where available) and
the portable ``spawn`` method.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import json

import numpy as np

from repro.evaluation.store import ArtifactStore, content_hash

#: A cell executor: ``(spec, seed) -> JSON-serializable result``.
CellExecutor = Callable[[dict, int], dict]

_CELL_KINDS: dict[str, CellExecutor] = {}


def register_cell_kind(name: str) -> Callable[[CellExecutor], CellExecutor]:
    """Register a module-level function as the executor for cell ``name``."""

    def decorate(fn: CellExecutor) -> CellExecutor:
        _CELL_KINDS[name] = fn
        return fn

    return decorate


def cell_kinds() -> list[str]:
    """Names of every registered cell kind."""
    _ensure_kinds_loaded()
    return sorted(_CELL_KINDS)


def _ensure_kinds_loaded() -> None:
    """Import the evaluation package so every cell kind is registered.

    Worker processes started with ``spawn`` begin with a fresh interpreter;
    importing :mod:`repro.evaluation` pulls in every runner module, each of
    which registers its kinds at import time.
    """
    import repro.evaluation  # noqa: F401  (import side effect)


def _resolve_executor(kind: str) -> CellExecutor:
    if kind not in _CELL_KINDS:
        _ensure_kinds_loaded()
    try:
        return _CELL_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown campaign cell kind {kind!r}; "
            f"registered kinds: {sorted(_CELL_KINDS)}") from None


@dataclass(frozen=True)
class CampaignCell:
    """One cell of a campaign grid: an executor kind plus its parameters.

    ``spec`` must contain only JSON-serializable values (numbers, strings,
    booleans, lists, dicts) — it crosses process boundaries and its
    canonical JSON form keys the artifact store.
    """

    kind: str
    spec: Mapping[str, object] = field(default_factory=dict)

    def canonical_spec(self) -> dict:
        """The spec normalised through a JSON round-trip (tuples -> lists)."""
        return json.loads(json.dumps(dict(self.spec)))

    def key(self, seed: int) -> str:
        """Content hash identifying this cell at a concrete derived seed."""
        return content_hash({"kind": self.kind,
                             "spec": self.canonical_spec(),
                             "seed": int(seed)})


@dataclass
class CellOutcome:
    """Result of one executed (or store-resumed) campaign cell."""

    cell: CampaignCell
    index: int
    seed: int
    key: str
    result: dict
    seconds: float = 0.0
    from_store: bool = False


@dataclass
class CampaignReport:
    """All outcomes of one campaign run, in cell-enumeration order."""

    root_seed: int
    outcomes: list[CellOutcome] = field(default_factory=list)

    def results(self) -> list[dict]:
        """The per-cell result dicts, in cell-enumeration order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def n_executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.from_store)

    @property
    def n_reused(self) -> int:
        return sum(1 for o in self.outcomes if o.from_store)


def derive_cell_seeds(root_seed: int, n_cells: int) -> list[int]:
    """Per-cell seeds from a :class:`numpy.random.SeedSequence` spawn tree.

    Child ``i`` is ``SeedSequence(root_seed, spawn_key=(i,))``, so the seed
    of a cell depends only on the root seed and the cell's position in the
    enumeration — prefixes agree across campaigns of different sizes, and
    serial, parallel and resumed runs all hand every cell the same seed.
    """
    root = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1, np.uint64)[0])
            for child in root.spawn(n_cells)]


def _execute_cell(kind: str, spec: dict, seed: int) -> tuple[dict, float]:
    """Run one cell; module-level so it pickles under ``spawn``."""
    executor = _resolve_executor(kind)
    started = time.perf_counter()
    result = executor(spec, seed)
    return result, time.perf_counter() - started


def _default_max_workers() -> int:
    return min(8, (os.cpu_count() or 1) * 4)


def _pool_context() -> mp.context.BaseContext:
    """Preferred multiprocessing context for the worker pool.

    ``fork`` starts workers in milliseconds because the parent's imported
    modules come along for free; it is used where available (POSIX).  The
    runner stays spawn-safe regardless — cells and executors are picklable
    and workers re-resolve executors by name — so platforms without ``fork``
    fall back to ``spawn`` transparently.
    """
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context("spawn")


class ParallelRunner:
    """Execute a list of campaign cells, serially or over a process pool.

    Parameters
    ----------
    parallel:
        Run pending cells over a :class:`ProcessPoolExecutor`.  With
        ``False`` (the default) cells run in-process, in order — the serial
        fallback that parallel runs are guaranteed to reproduce exactly.
    max_workers:
        Worker-pool size; defaults to ``min(8, 4 * cpu_count)`` (campaign
        cells are dominated by simulated measurement latency, so modest
        over-subscription pays off).
    store:
        Optional :class:`ArtifactStore`.  Cells whose key is already present
        are not re-executed; freshly executed cells are persisted as they
        complete, which is what makes an interrupted campaign resumable.
    """

    def __init__(self, parallel: bool = False,
                 max_workers: int | None = None,
                 store: ArtifactStore | None = None) -> None:
        self.parallel = bool(parallel)
        self.max_workers = max_workers
        self.store = store

    # ------------------------------------------------------------------ run
    def run(self, cells: Sequence[CampaignCell],
            root_seed: int = 0) -> CampaignReport:
        """Run every cell and return outcomes in enumeration order."""
        cells = list(cells)
        report = CampaignReport(root_seed=int(root_seed))
        if not cells:
            return report
        seeds = derive_cell_seeds(root_seed, len(cells))

        slots: list[CellOutcome | None] = [None] * len(cells)
        pending: list[int] = []
        for i, (cell, seed) in enumerate(zip(cells, seeds)):
            key = cell.key(seed)
            record = None
            if self.store is not None and key in self.store:
                record = self.store.load(key)
            if record is not None and "result" in record:
                slots[i] = CellOutcome(cell=cell, index=i, seed=seed, key=key,
                                       result=record["result"],
                                       seconds=float(record.get("seconds",
                                                                0.0)),
                                       from_store=True)
            else:
                pending.append(i)

        if pending:
            if self.parallel and len(pending) > 1 and \
                    (self.max_workers is None or self.max_workers > 1):
                self._run_parallel(cells, seeds, pending, slots)
            else:
                self._run_serial(cells, seeds, pending, slots)

        report.outcomes = [outcome for outcome in slots if outcome is not None]
        return report

    # -------------------------------------------------------------- helpers
    def _finish(self, cell: CampaignCell, index: int, seed: int,
                result: dict, seconds: float) -> CellOutcome:
        key = cell.key(seed)
        if self.store is not None:
            self.store.save(key, {"kind": cell.kind,
                                  "spec": cell.canonical_spec(),
                                  "seed": int(seed), "seconds": seconds,
                                  "result": result})
        return CellOutcome(cell=cell, index=index, seed=seed, key=key,
                           result=result, seconds=seconds)

    def _run_serial(self, cells: Sequence[CampaignCell], seeds: Sequence[int],
                    pending: Sequence[int],
                    slots: list[CellOutcome | None]) -> None:
        for i in pending:
            result, seconds = _execute_cell(cells[i].kind,
                                            cells[i].canonical_spec(),
                                            seeds[i])
            slots[i] = self._finish(cells[i], i, seeds[i], result, seconds)

    def _run_parallel(self, cells: Sequence[CampaignCell],
                      seeds: Sequence[int], pending: Sequence[int],
                      slots: list[CellOutcome | None]) -> None:
        workers = min(self.max_workers or _default_max_workers(),
                      len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            futures = {
                pool.submit(_execute_cell, cells[i].kind,
                            cells[i].canonical_spec(), seeds[i]): i
                for i in pending
            }
            # Persist each artifact the moment its cell completes, so an
            # interrupted parallel campaign keeps everything it finished.
            for future in as_completed(futures):
                i = futures[future]
                result, seconds = future.result()
                slots[i] = self._finish(cells[i], i, seeds[i], result,
                                        seconds)


def run_campaign(cells: Sequence[CampaignCell], root_seed: int = 0,
                 parallel: bool = False, max_workers: int | None = None,
                 store: ArtifactStore | None = None) -> CampaignReport:
    """One-call convenience wrapper around :class:`ParallelRunner`."""
    runner = ParallelRunner(parallel=parallel, max_workers=max_workers,
                            store=store)
    return runner.run(cells, root_seed=root_seed)
