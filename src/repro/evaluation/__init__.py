"""Experiment runners shared by the benchmark harness and the examples.

Each module corresponds to one family of experiments in the paper:

* :mod:`repro.evaluation.debugging` — Table 2a/2b, Table 14, Fig. 14
  (debugging effectiveness and sample efficiency against CBI/DD/EnCore/BugDoc).
* :mod:`repro.evaluation.optimization` — Fig. 15 (single-objective vs SMAC,
  multi-objective vs PESMO, Pareto fronts).
* :mod:`repro.evaluation.transferability` — Fig. 16/17, Table 15 and the
  Fig. 4/5/21/22 stability analyses of influence vs causal models.
* :mod:`repro.evaluation.scalability` — Table 3.
* :mod:`repro.evaluation.case_study` — Section 5 / Fig. 12.
* :mod:`repro.evaluation.fault_campaign` — Fig. 13 fault catalogue.
* :mod:`repro.evaluation.service_campaign` — serving-layer throughput
  (single-process and sharded drift-aware tiers;
  concurrent :class:`~repro.service.service.QueryService` vs one-at-a-time
  dispatch; no paper counterpart — it measures the north-star scaling goal).
* :mod:`repro.evaluation.self_debug_campaign` — the self-debugging loop:
  record a traced workload under a misconfigured deployment, debug it on
  the serving stack's causal twin
  (:func:`repro.systems.serving_system.make_serving_system`), replay the
  recommendation and verify it on the real service.

Runners return plain dictionaries / dataclasses so benchmarks can both assert
on them and print paper-style rows.

Every experiment family also expresses its grid as **campaign cells**
(:mod:`repro.evaluation.runner`): ``*_cells`` builders enumerate the grid,
:class:`~repro.evaluation.runner.ParallelRunner` executes it serially or
over a process pool with per-cell seeds derived from one root
:class:`numpy.random.SeedSequence` tree (serial and parallel runs are
bit-identical), and the :class:`~repro.evaluation.store.ArtifactStore`
makes interrupted campaigns resumable.
"""

from repro.evaluation.relevant import relevant_options_for
from repro.evaluation.runner import (
    CampaignCell,
    CampaignReport,
    CellOutcome,
    ParallelRunner,
    cell_kinds,
    derive_cell_seeds,
    register_cell_kind,
    run_campaign,
)
from repro.evaluation.store import ArtifactStore, canonical_json, content_hash
from repro.evaluation.debugging import (
    DebuggingComparison,
    debugging_campaign_cells,
    run_debugging_campaign,
    run_debugging_comparison,
)
from repro.evaluation.optimization import (
    optimization_campaign_cells,
    run_multi_objective_comparison,
    run_optimization_campaign,
    run_single_objective_comparison,
)
from repro.evaluation.transferability import (
    run_hardware_transfer,
    run_stability_analysis,
    run_transfer_campaign,
    run_workload_transfer,
    transfer_campaign_cells,
)
from repro.evaluation.scalability import (
    run_scalability_campaign,
    run_scalability_scenario,
    scalability_campaign_cells,
)
from repro.evaluation.service_campaign import (
    run_cold_start_recovery,
    run_gateway_throughput,
    run_rolling_refresh,
    run_service_campaign,
    run_service_throughput,
    run_sharded_service_throughput,
    service_campaign_cells,
)
from repro.evaluation.self_debug_campaign import (
    run_self_debug_campaign,
    run_self_debugging,
    self_debug_campaign_cells,
)
from repro.evaluation.case_study import run_case_study
from repro.evaluation.fault_campaign import (
    FaultCampaignReport,
    fault_campaign_cells,
    run_fault_campaign,
)
from repro.evaluation.tables import format_table

__all__ = [
    "relevant_options_for",
    # campaign orchestration
    "CampaignCell",
    "CampaignReport",
    "CellOutcome",
    "ParallelRunner",
    "ArtifactStore",
    "canonical_json",
    "content_hash",
    "cell_kinds",
    "derive_cell_seeds",
    "register_cell_kind",
    "run_campaign",
    # experiment families
    "DebuggingComparison",
    "run_debugging_comparison",
    "debugging_campaign_cells",
    "run_debugging_campaign",
    "run_single_objective_comparison",
    "run_multi_objective_comparison",
    "optimization_campaign_cells",
    "run_optimization_campaign",
    "run_hardware_transfer",
    "run_workload_transfer",
    "run_stability_analysis",
    "transfer_campaign_cells",
    "run_transfer_campaign",
    "run_scalability_scenario",
    "scalability_campaign_cells",
    "run_scalability_campaign",
    "run_cold_start_recovery",
    "run_gateway_throughput",
    "run_rolling_refresh",
    "run_service_throughput",
    "run_sharded_service_throughput",
    "service_campaign_cells",
    "run_service_campaign",
    "run_self_debugging",
    "self_debug_campaign_cells",
    "run_self_debug_campaign",
    "run_case_study",
    "FaultCampaignReport",
    "fault_campaign_cells",
    "run_fault_campaign",
    "format_table",
]
