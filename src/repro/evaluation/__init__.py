"""Experiment runners shared by the benchmark harness and the examples.

Each module corresponds to one family of experiments in the paper:

* :mod:`repro.evaluation.debugging` — Table 2a/2b, Table 14, Fig. 14
  (debugging effectiveness and sample efficiency against CBI/DD/EnCore/BugDoc).
* :mod:`repro.evaluation.optimization` — Fig. 15 (single-objective vs SMAC,
  multi-objective vs PESMO, Pareto fronts).
* :mod:`repro.evaluation.transferability` — Fig. 16/17, Table 15 and the
  Fig. 4/5/21/22 stability analyses of influence vs causal models.
* :mod:`repro.evaluation.scalability` — Table 3.
* :mod:`repro.evaluation.case_study` — Section 5 / Fig. 12.
* :mod:`repro.evaluation.fault_campaign` — Fig. 13 fault catalogue.

Runners return plain dictionaries / dataclasses so benchmarks can both assert
on them and print paper-style rows.
"""

from repro.evaluation.relevant import relevant_options_for
from repro.evaluation.debugging import DebuggingComparison, run_debugging_comparison
from repro.evaluation.optimization import (
    run_multi_objective_comparison,
    run_single_objective_comparison,
)
from repro.evaluation.transferability import (
    run_hardware_transfer,
    run_stability_analysis,
    run_workload_transfer,
)
from repro.evaluation.scalability import run_scalability_scenario
from repro.evaluation.case_study import run_case_study
from repro.evaluation.fault_campaign import run_fault_campaign
from repro.evaluation.tables import format_table

__all__ = [
    "relevant_options_for",
    "DebuggingComparison",
    "run_debugging_comparison",
    "run_single_objective_comparison",
    "run_multi_objective_comparison",
    "run_hardware_transfer",
    "run_workload_transfer",
    "run_stability_analysis",
    "run_scalability_scenario",
    "run_case_study",
    "run_fault_campaign",
    "format_table",
]
