"""Self-debugging campaign: the reproduction tunes its own serving stack.

The paper's pipeline debugs misconfigured systems through a causal
model; the ROADMAP's flagship open item is to point that pipeline at
*this repository's own deployment*.  The ``self_debugging`` cell closes
the loop in three phases:

1. **Record** — a deterministic mixed workload is served by the real
   serving tier under a deliberately *misconfigured* deployment (huge
   batch window, disabled result cache, …), with the
   :class:`~repro.service.tracing.Tracer` on; the run yields replayable
   trace records plus measured p99 latency and throughput.
2. **Debug** — the deployment is handed to the paper's own
   :class:`~repro.core.debugger.UnicornDebugger` as a configuration of
   :func:`repro.systems.serving_system.make_serving_system` (the
   analytic causal twin of the serving stack), which diagnoses the
   misconfiguration and recommends a repaired configuration.
3. **Replay** — the *same seeded workload* is served again under the
   recommended configuration (mapped back onto real service arguments
   via :func:`repro.systems.serving_system.
   configuration_to_service_kwargs`), and the cell verifies the twin's
   advice holds on the genuine article: replayed p99 latency improves
   by a large factor while the answers stay byte-identical — serving
   knobs must never change *what* is answered, only *how fast*.

The cell result is JSON-serializable and rides the standard campaign
runner (seed trees, resumable artifact store); the companion benchmark
``benchmarks/test_self_debugging.py`` gates the improvement factor and
``docs/observability.md`` walks through the whole loop.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.debugger import UnicornDebugger
from repro.core.unicorn import UnicornConfig
from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.systems.registry import get_system
from repro.systems.serving_system import configuration_to_service_kwargs

# repro.service imports repro.evaluation.store for its content-hash keys,
# so the service layer is imported lazily inside the functions below to
# keep the package import graph acyclic (same rule as service_campaign).

SELF_DEBUG_CELL = "self_debugging"

#: The deliberately broken deployment the campaign starts from: a 50 ms
#: dispatcher window (every request pays it), no result cache, and a
#: twitchy drift threshold.  ``Shards`` stays at 1 so the replay
#: exercises the single-process tier by default.
DEFAULT_FAULTY_OVERRIDES = {
    "BatchWindowMs": 50.0,
    "ResultCacheSize": 0.0,
    "DriftThreshold": 0.5,
}


def _replay(specs: Mapping[str, Mapping], requests: Sequence,
            service_kwargs: Mapping, n_clients: int,
            tracer=None) -> tuple[list, float, dict]:
    """Serve ``requests`` under one deployment; return (responses,
    seconds, latency percentiles)."""
    from repro.service.batcher import RequestBatcher
    from repro.service.registry import ModelRegistry
    from repro.service.service import QueryService
    from repro.service.sharding import ShardedQueryService
    from repro.service.workload import latency_percentiles, serve_concurrently

    if int(service_kwargs["shards"]) <= 1:
        registry = ModelRegistry(
            capacity=max(2, len(specs)),
            result_cache_size=int(service_kwargs["result_cache_size"]) or
            None,
            drift_threshold=service_kwargs["drift_threshold"])
        for subject, spec in specs.items():
            entry = registry.register_spec(subject, spec)
            # Untimed warm-up (the service_campaign idiom): fill the
            # engine's one-time caches so first-touch cost lands in
            # neither deployment's tail.
            RequestBatcher().dispatch(
                entry, [r for r in requests if r.subject == subject])
        with QueryService(
                registry,
                batch_window=float(service_kwargs["batch_window"]),
                fairness_quantum=int(service_kwargs["fairness_quantum"]),
                max_batch=512, tracer=tracer) as service:
            responses, seconds, _ = serve_concurrently(
                service, requests, int(n_clients))
    else:
        with ShardedQueryService(
                specs, shards=int(service_kwargs["shards"]),
                use_processes=False,
                batch_window=float(service_kwargs["batch_window"]),
                result_cache_size=int(service_kwargs["result_cache_size"])
                or None,
                drift_threshold=service_kwargs["drift_threshold"],
                tracer=tracer) as service:
            responses, seconds, _ = serve_concurrently(
                service, requests, int(n_clients))
    return responses, seconds, latency_percentiles(responses)


def run_self_debugging(system_name: str = "cache_example",
                       hardware: str | None = None,
                       faulty_overrides: Mapping[str, float] | None = None,
                       n_clients: int = 8, requests_per_client: int = 12,
                       n_samples: int = 60, seed: int = 0,
                       initial_samples: int = 30, budget: int = 60,
                       trace_path: str | None = None) -> dict:
    """Record → debug → replay the serving stack once (see module doc).

    Parameters
    ----------
    system_name, hardware:
        The *served subject* (what the workload queries); the *debugged
        system* is always the serving twin
        (:func:`~repro.systems.serving_system.make_serving_system`).
    faulty_overrides:
        Option overrides defining the misconfigured deployment
        (defaults to :data:`DEFAULT_FAULTY_OVERRIDES`).
    n_clients, requests_per_client:
        Concurrent clients and queries per client of the recorded
        workload.
    n_samples, seed:
        Subject-model sample size and the root seed of the whole cell
        (model fit, workload and debugging all derive from it).
    initial_samples, budget:
        The debugger's sampling budget on the serving twin.
    trace_path:
        When set, the recorded (wall-clock-stripped) trace JSONL is
        written there.

    Returns
    -------
    dict
        ``p99_improvement`` (baseline p99 / recommended p99 on the real
        replay), ``identical`` (byte-identity of baseline vs recommended
        answers), both deployments' p99/throughput, the recommended
        configuration, the debugger's changed options, and a trace
        summary of the recorded run.
    """
    from repro.service.tracing import TraceRecorder, Tracer, trace_summary
    from repro.service.workload import canonical_answers, mixed_workload

    serving_system = get_system("serving")
    faulty = serving_system.space.clamp(dict(
        DEFAULT_FAULTY_OVERRIDES if faulty_overrides is None
        else faulty_overrides))

    # --- phase 1: record the misconfigured deployment ------------------
    from repro.service.registry import ModelRegistry

    subject_spec = {"system": system_name, "hardware": hardware,
                    "n_samples": int(n_samples), "seed": int(seed)}
    specs = {system_name: subject_spec}
    reference = ModelRegistry(capacity=2, result_cache_size=None)
    entry = reference.register_spec(system_name, subject_spec)
    system = get_system(system_name, hardware=hardware)
    requests = mixed_workload(
        system_name, entry.engine, system.objectives,
        int(n_clients) * int(requests_per_client), seed=seed)

    faulty_kwargs = configuration_to_service_kwargs(faulty)
    tracer = Tracer(enabled=True)
    baseline_responses, baseline_seconds, baseline_latency = _replay(
        specs, requests, faulty_kwargs, n_clients, tracer=tracer)
    traces = tracer.drain()
    recorder = TraceRecorder(root_seed=int(seed))
    if trace_path is not None:
        recorder.write(trace_path, traces)

    # --- phase 2: debug the deployment on its causal twin --------------
    config = UnicornConfig(initial_samples=int(initial_samples),
                           budget=int(budget), max_condition_size=2,
                           seed=int(seed) + 1)
    debug = UnicornDebugger(serving_system, config).debug(
        faulty, objectives=["P99LatencyMs"])
    recommended = serving_system.space.clamp(
        dict(debug.recommended_configuration))
    recommended_kwargs = configuration_to_service_kwargs(recommended)

    # --- phase 3: replay the recommendation on the real stack ----------
    recommended_responses, recommended_seconds, recommended_latency = \
        _replay(specs, requests, recommended_kwargs, n_clients)

    identical = (canonical_answers(baseline_responses)
                 == canonical_answers(recommended_responses))
    improvement = (baseline_latency["p99_ms"]
                   / max(recommended_latency["p99_ms"], 1e-9))
    return {
        "system": system_name,
        "n_queries": len(requests),
        "n_clients": int(n_clients),
        "faulty_configuration": {k: float(v) for k, v in faulty.items()},
        "recommended_configuration": {k: float(v)
                                      for k, v in recommended.items()},
        "changed_options": list(debug.changed_options),
        "twin_gains": {k: float(v) for k, v in debug.gains.items()},
        "baseline_p99_ms": baseline_latency["p99_ms"],
        "recommended_p99_ms": recommended_latency["p99_ms"],
        "baseline_throughput_qps": len(requests)
        / max(baseline_seconds, 1e-9),
        "recommended_throughput_qps": len(requests)
        / max(recommended_seconds, 1e-9),
        "p99_improvement": improvement,
        "identical": identical,
        "trace_records": len(traces),
        "trace_summary": trace_summary(traces),
    }


@register_cell_kind(SELF_DEBUG_CELL)
def _self_debug_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: one record→debug→replay self-debugging run."""
    return run_self_debugging(
        spec.get("system", "cache_example"), spec.get("hardware"),
        faulty_overrides=spec.get("faulty_overrides"),
        n_clients=int(spec.get("n_clients", 8)),
        requests_per_client=int(spec.get("requests_per_client", 12)),
        n_samples=int(spec.get("n_samples", 60)),
        seed=seed,
        initial_samples=int(spec.get("initial_samples", 30)),
        budget=int(spec.get("budget", 60)),
        trace_path=spec.get("trace_path"))


def self_debug_campaign_cells(scenarios: Sequence[Mapping]
                              ) -> list[CampaignCell]:
    """One ``self_debugging`` cell per scenario (dicts of
    :func:`run_self_debugging` kwargs)."""
    return [CampaignCell(kind=SELF_DEBUG_CELL, spec=dict(scenario))
            for scenario in scenarios]


def run_self_debug_campaign(scenarios: Sequence[Mapping],
                            root_seed: int = 0, parallel: bool = False,
                            max_workers: int | None = None,
                            store: ArtifactStore | None = None
                            ) -> list[dict]:
    """Run a grid of self-debugging scenarios through the campaign runner.

    Parameters
    ----------
    scenarios:
        See :func:`self_debug_campaign_cells`.
    root_seed, parallel, max_workers, store:
        Forwarded to :func:`repro.evaluation.runner.run_campaign`.

    Returns
    -------
    list of dict
        One :func:`run_self_debugging` result per scenario, in order.
    """
    cells = self_debug_campaign_cells(scenarios)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()
