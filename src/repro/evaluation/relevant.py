"""Per-system "most relevant options" selections.

The paper's default experiments restrict attention to the options NVIDIA's
configuration guides and prior work identify as relevant (e.g. the 34-option
SQLite scenario of Table 3); the full option sets are exercised only in the
scalability study.  These selections mirror that split.
"""

from __future__ import annotations

from repro.systems import dnn, deepstream, sqlite, x264


_RELEVANT: dict[str, tuple[str, ...]] = {
    "deepstream": deepstream.RELEVANT_OPTIONS,
    "xception": dnn.RELEVANT_OPTIONS,
    "bert": dnn.RELEVANT_OPTIONS,
    "deepspeech": dnn.RELEVANT_OPTIONS,
    "x264": x264.RELEVANT_OPTIONS,
    "sqlite": sqlite.RELEVANT_OPTIONS,
}


def relevant_options_for(system_name: str) -> list[str] | None:
    """Relevant-option list for a subject system (None = use every option)."""
    options = _RELEVANT.get(system_name.lower())
    return list(options) if options is not None else None
