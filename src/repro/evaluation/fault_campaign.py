"""Fault-catalogue campaign (Fig. 13).

Runs the 99th-percentile fault-labelling protocol over the requested systems
and reports how many single- and multi-objective non-functional faults each
system exhibits — the bar chart of Fig. 13.

The campaign grid (one cell per system) is expressed through the campaign
runner: :func:`fault_campaign_cells` enumerates the cells and
:func:`run_fault_campaign` executes them serially or in parallel with
per-cell seeds derived from the root seed's
:class:`~numpy.random.SeedSequence` tree, so both execution modes produce
byte-identical reports (see :meth:`FaultCampaignReport.to_json`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore, canonical_json
from repro.systems.base import ConfigurableSystem
from repro.systems.faults import FaultCatalogue, discover_faults
from repro.systems.registry import get_system

#: The Fig. 13 subject-system grid.
DEFAULT_SYSTEMS = ("deepstream", "xception", "bert", "deepspeech", "x264",
                   "sqlite")

FAULT_CATALOGUE_CELL = "fault_catalogue"


@dataclass
class FaultCampaignReport:
    """Fault counts per system."""

    catalogues: dict[str, FaultCatalogue] = field(default_factory=dict)

    def counts(self) -> dict[str, dict[str, int]]:
        return {name: catalogue.counts()
                for name, catalogue in self.catalogues.items()}

    def totals(self) -> dict[str, int]:
        return {name: len(catalogue)
                for name, catalogue in self.catalogues.items()}

    def total_single_objective(self) -> int:
        return sum(len(c.single_objective()) for c in self.catalogues.values())

    def total_multi_objective(self) -> int:
        return sum(len(c.multi_objective()) for c in self.catalogues.values())

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        return {name: catalogue.to_dict()
                for name, catalogue in self.catalogues.items()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultCampaignReport":
        return cls(catalogues={name: FaultCatalogue.from_dict(entry)
                               for name, entry in payload.items()})

    def to_json(self) -> str:
        """Canonical JSON form — byte-identical across serial/parallel runs."""
        return canonical_json(self.to_dict())


def _validated_objectives(system: ConfigurableSystem,
                          objectives: Sequence[str] | None
                          ) -> list[str] | None:
    """Objectives restricted to the system, or ``None`` for all of them.

    Objectives unknown to *this* system are dropped (a cross-system campaign
    legitimately mixes objective vocabularies), but if none of the requested
    objectives exist the caller named the wrong thing entirely — silently
    widening to every objective would mislabel the campaign, so that is a
    :class:`ValueError`.
    """
    if objectives is None:
        return None
    known = [o for o in objectives if o in system.objective_names]
    if not known:
        unknown = [o for o in objectives if o not in system.objective_names]
        raise ValueError(
            f"unknown objectives {unknown!r} for system {system.name!r}; "
            f"available objectives: {list(system.objective_names)!r}")
    return known


@register_cell_kind(FAULT_CATALOGUE_CELL)
def _fault_catalogue_cell(spec: Mapping, seed: int) -> dict:
    """Discover the fault catalogue of one system on one platform.

    ``simulate_measurement_seconds`` models the wall-clock latency of the
    real ground-truth measurement campaign (the simulator is instantaneous;
    the paper's systems take minutes per campaign), which is what the
    orchestration benchmarks overlap across workers.
    """
    latency = float(spec.get("simulate_measurement_seconds", 0.0))
    if latency > 0.0:
        time.sleep(latency)
    system = get_system(spec["system"], hardware=spec["hardware"])
    wanted = _validated_objectives(system, spec.get("objectives"))
    catalogue = discover_faults(system,
                                n_samples=int(spec["n_samples"]),
                                percentile=float(spec["percentile"]),
                                objectives=wanted, seed=seed)
    return catalogue.to_dict()


def fault_campaign_cells(systems: Sequence[str] = DEFAULT_SYSTEMS,
                         hardware: str | Sequence[str] = "TX2",
                         n_samples: int = 300, percentile: float = 98.0,
                         objectives: Sequence[str] | None = None,
                         simulate_measurement_seconds: float = 0.0
                         ) -> list[CampaignCell]:
    """Enumerate the campaign grid: one cell per (system, hardware) pair."""
    platforms = [hardware] if isinstance(hardware, str) else list(hardware)
    cells = []
    for platform in platforms:
        for name in systems:
            spec: dict[str, object] = {
                "system": name, "hardware": platform,
                "n_samples": int(n_samples),
                "percentile": float(percentile),
            }
            if objectives is not None:
                spec["objectives"] = list(objectives)
            if simulate_measurement_seconds:
                spec["simulate_measurement_seconds"] = float(
                    simulate_measurement_seconds)
            cells.append(CampaignCell(kind=FAULT_CATALOGUE_CELL, spec=spec))
    return cells


def run_fault_campaign(systems: Sequence[str] = DEFAULT_SYSTEMS,
                       hardware: str | Sequence[str] = "TX2",
                       n_samples: int = 300,
                       percentile: float = 98.0,
                       objectives: Sequence[str] | None = None,
                       seed: int = 0,
                       parallel: bool = False,
                       max_workers: int | None = None,
                       store: ArtifactStore | None = None,
                       simulate_measurement_seconds: float = 0.0
                       ) -> FaultCampaignReport:
    """Discover faults for every requested system through the campaign runner.

    ``seed`` is the root of the per-cell seed tree; ``parallel`` /
    ``max_workers`` select the execution mode (results are identical either
    way) and ``store`` makes the campaign resumable.

    Raises :class:`ValueError` if, for any requested system, none of the
    requested ``objectives`` exist on that system.
    """
    cells = fault_campaign_cells(
        systems, hardware=hardware, n_samples=n_samples,
        percentile=percentile, objectives=objectives,
        simulate_measurement_seconds=simulate_measurement_seconds)
    # Validate eagerly so a misnamed objective fails fast and identically in
    # serial, parallel and store-resumed runs.
    if objectives is not None:
        for cell in cells:
            _validated_objectives(
                get_system(cell.spec["system"],
                           hardware=cell.spec["hardware"]),
                objectives)
    campaign = run_campaign(cells, root_seed=seed, parallel=parallel,
                            max_workers=max_workers, store=store)

    report = FaultCampaignReport()
    multi_platform = not isinstance(hardware, str)
    for outcome in campaign.outcomes:
        catalogue = FaultCatalogue.from_dict(outcome.result)
        label = catalogue.system
        if multi_platform:
            label = f"{catalogue.system}@{outcome.cell.spec['hardware']}"
        report.catalogues[label] = catalogue
    return report
