"""Fault-catalogue campaign (Fig. 13).

Runs the 99th-percentile fault-labelling protocol over the requested systems
and reports how many single- and multi-objective non-functional faults each
system exhibits — the bar chart of Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.systems.faults import FaultCatalogue, discover_faults
from repro.systems.registry import get_system


@dataclass
class FaultCampaignReport:
    """Fault counts per system."""

    catalogues: dict[str, FaultCatalogue] = field(default_factory=dict)

    def counts(self) -> dict[str, dict[str, int]]:
        return {name: catalogue.counts()
                for name, catalogue in self.catalogues.items()}

    def totals(self) -> dict[str, int]:
        return {name: len(catalogue)
                for name, catalogue in self.catalogues.items()}

    def total_single_objective(self) -> int:
        return sum(len(c.single_objective()) for c in self.catalogues.values())

    def total_multi_objective(self) -> int:
        return sum(len(c.multi_objective()) for c in self.catalogues.values())


def run_fault_campaign(systems: Sequence[str] = ("deepstream", "xception",
                                                 "bert", "deepspeech", "x264",
                                                 "sqlite"),
                       hardware: str = "TX2", n_samples: int = 300,
                       percentile: float = 98.0,
                       objectives: Sequence[str] | None = None,
                       seed: int = 0) -> FaultCampaignReport:
    """Discover faults for every requested system on one platform."""
    report = FaultCampaignReport()
    for name in systems:
        system = get_system(name, hardware=hardware)
        wanted = objectives
        if wanted is not None:
            wanted = [o for o in wanted if o in system.objective_names]
            if not wanted:
                wanted = None
        report.catalogues[name] = discover_faults(
            system, n_samples=n_samples, percentile=percentile,
            objectives=wanted, seed=seed)
    return report
