"""Resumable JSON artifact store for campaign cells.

A campaign is a grid of independent cells (system × hardware × workload ×
seed); interrupting a half-finished grid must not throw away the completed
cells.  :class:`ArtifactStore` persists one JSON document per cell, keyed by
a content hash of the cell's canonical spec (kind + parameters + derived
seed), so a re-run of the same campaign recognises completed cells and
re-executes only the missing ones — regardless of whether the first run was
serial or parallel.  Because the derived seed is keyed by a cell's position
in the grid, reuse requires re-runs to keep cells at their original
positions (resuming a prefix, or growing the grid at the end, both
qualify); reordering a grid re-seeds its cells and is treated as a new
campaign.

Writes are atomic (write to a temporary file, then ``os.replace``) so an
interrupted run never leaves a truncated artifact behind; unreadable
artifacts are treated as absent and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator


def canonical_json(payload: object) -> str:
    """Serialize ``payload`` to a canonical JSON string.

    Keys are sorted and separators fixed so that equal payloads always
    produce byte-identical documents — the basis of both the content hash
    and the serial-vs-parallel determinism guarantee.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def content_hash(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ArtifactStore:
    """A directory of per-cell JSON artifacts keyed by content hash."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, key: str) -> Path:
        return self._root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Keys of every stored artifact."""
        for path in sorted(self._root.glob("*.json")):
            yield path.stem

    def load(self, key: str) -> dict | None:
        """Stored record for ``key``, or ``None`` if absent or unreadable."""
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def save(self, key: str, record: dict) -> Path:
        """Atomically persist ``record`` under ``key``."""
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(record))
        os.replace(tmp, path)
        return path

    def discard(self, key: str) -> None:
        """Remove the artifact for ``key`` if present."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass
