"""The Section 5 / Fig. 12 case study runner.

Reproduces the real-world TX1 → TX2 migration scenario: a misconfiguration
(CUDA_STATIC plus four hardware options) makes the scene-detection workload
4x slower on the faster board.  The runner debugs the fault with Unicorn,
SMAC (as an optimizer pressed into service), and BugDoc, and also scores the
forum-recommended fix, reporting the latency (FPS), the gain over the fault
and over TX1, the options each approach changed, and the time each took —
the rows of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.bugdoc import BugDocDebugger
from repro.baselines.smac import SMACOptimizer
from repro.core.debugger import UnicornDebugger
from repro.core.unicorn import UnicornConfig
from repro.systems.case_study import (
    FAULTY_CONFIGURATION,
    FORUM_FIX,
    TRUE_ROOT_CAUSES,
    make_case_study,
)
from repro.systems.hardware import JETSON_TX1, JETSON_TX2

#: FPS the developer reported on the slower TX1 board.
TX1_FPS = 17.0


@dataclass
class CaseStudyRow:
    """One row of the Fig. 12 comparison."""

    approach: str
    fps: float
    gain_over_fault: float
    gain_over_tx1: float
    changed_options: list[str] = field(default_factory=list)
    root_causes: list[str] = field(default_factory=list)
    hours: float = 0.0


@dataclass
class CaseStudyReport:
    fault_fps: float
    rows: dict[str, CaseStudyRow] = field(default_factory=dict)

    def row(self, approach: str) -> CaseStudyRow:
        return self.rows[approach]


def _gain(old: float, new: float) -> float:
    return (new - old) / max(abs(old), 1e-9) * 100.0


def run_case_study(budget: int = 60, seed: int = 0) -> CaseStudyReport:
    """Run Unicorn, SMAC, BugDoc and the forum fix on the TX2 fault."""
    probe = make_case_study(hardware=JETSON_TX2)
    fault_fps = probe.measure(FAULTY_CONFIGURATION).objectives["FPS"]
    report = CaseStudyReport(fault_fps=fault_fps)

    # Unicorn.
    system = make_case_study(hardware=JETSON_TX2)
    debugger = UnicornDebugger(system, UnicornConfig(
        initial_samples=25, budget=budget, seed=seed))
    unicorn_result = debugger.debug(FAULTY_CONFIGURATION, objectives=["FPS"])
    unicorn_fps = unicorn_result.recommended_measurement["FPS"]
    report.rows["unicorn"] = CaseStudyRow(
        approach="unicorn", fps=unicorn_fps,
        gain_over_fault=_gain(fault_fps, unicorn_fps),
        gain_over_tx1=_gain(TX1_FPS, unicorn_fps),
        changed_options=unicorn_result.changed_options,
        root_causes=unicorn_result.root_causes,
        hours=unicorn_result.simulated_hours)

    # SMAC (optimizes FPS from scratch).
    system = make_case_study(hardware=JETSON_TX2)
    smac = SMACOptimizer(system, budget=budget, initial_samples=25, seed=seed)
    smac_result = smac.optimize("FPS")
    smac_fps = smac_result.best_objectives["FPS"]
    report.rows["smac"] = CaseStudyRow(
        approach="smac", fps=smac_fps,
        gain_over_fault=_gain(fault_fps, smac_fps),
        gain_over_tx1=_gain(TX1_FPS, smac_fps),
        changed_options=[
            name for name, value in smac_result.best_configuration.items()
            if value != FAULTY_CONFIGURATION.get(name, value)],
        hours=smac_result.simulated_hours)

    # BugDoc.
    system = make_case_study(hardware=JETSON_TX2)
    bugdoc = BugDocDebugger(system, budget=budget, seed=seed)
    bugdoc_result = bugdoc.debug(FAULTY_CONFIGURATION, objectives=["FPS"])
    bugdoc_fps = bugdoc_result.recommended_measurement["FPS"]
    report.rows["bugdoc"] = CaseStudyRow(
        approach="bugdoc", fps=bugdoc_fps,
        gain_over_fault=_gain(fault_fps, bugdoc_fps),
        gain_over_tx1=_gain(TX1_FPS, bugdoc_fps),
        changed_options=bugdoc_result.changed_options,
        root_causes=bugdoc_result.root_causes,
        hours=bugdoc_result.simulated_hours)

    # The fix recommended on the NVIDIA forum.
    system = make_case_study(hardware=JETSON_TX2)
    forum_config = dict(FAULTY_CONFIGURATION)
    forum_config.update(FORUM_FIX)
    forum_fps = system.measure(forum_config).objectives["FPS"]
    report.rows["forum"] = CaseStudyRow(
        approach="forum", fps=forum_fps,
        gain_over_fault=_gain(fault_fps, forum_fps),
        gain_over_tx1=_gain(TX1_FPS, forum_fps),
        changed_options=sorted(FORUM_FIX),
        root_causes=list(TRUE_ROOT_CAUSES),
        hours=48.0)  # the forum thread took two days of discussion
    return report
