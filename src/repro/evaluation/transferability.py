"""Transferability experiments (Fig. 4/5, Fig. 16, Fig. 17, Fig. 21/22, Table 15).

Three runners:

* :func:`run_hardware_transfer` — debug a fault in a *target* hardware
  environment reusing knowledge from a *source* environment (Reuse / +N /
  Rerun), the Fig. 16 / Table 15 experiment.
* :func:`run_workload_transfer` — optimize latency on larger workloads
  reusing the model learned on the small workload (Fig. 17).
* :func:`run_stability_analysis` — learn a performance-influence model and a
  causal performance model in a source environment and compare their terms,
  coefficients and prediction error against the target environment
  (Fig. 4, Fig. 5, and the sample-size sweeps of Fig. 21/22).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.bugdoc import BugDocDebugger
from repro.baselines.influence_model import PerformanceInfluenceModel
from repro.baselines.smac import SMACOptimizer
from repro.core.transfer import TransferMode, transfer_debug, transfer_optimize
from repro.core.unicorn import UnicornConfig
from repro.discovery.pipeline import CausalModelLearner
from repro.evaluation.relevant import relevant_options_for
from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.metrics.debugging import ace_weighted_accuracy, gain, precision_recall
from repro.metrics.regression import (
    mean_absolute_percentage_error,
    rank_correlation,
    term_stability,
)
from repro.scm.fitting import fit_structural_equations
from repro.systems.faults import discover_faults
from repro.systems.registry import get_system


# ---------------------------------------------------------------------------
# Hardware transfer (Fig. 16, Table 15)
# ---------------------------------------------------------------------------
@dataclass
class HardwareTransferOutcome:
    """Metrics of one transfer mode (and the BugDoc rerun reference)."""

    scenario: str
    accuracy: float
    precision: float
    recall: float
    gain: float
    hours: float


def run_hardware_transfer(system_name: str, source_hardware: str,
                          target_hardware: str, objective: str,
                          budget: int = 50, seed: int = 0,
                          modes: Sequence[TransferMode] = (
                              TransferMode.REUSE, TransferMode.FINE_TUNE,
                              TransferMode.RERUN),
                          include_bugdoc: bool = True
                          ) -> dict[str, HardwareTransferOutcome]:
    """Debug one fault on the target hardware under each transfer mode."""
    relevant = relevant_options_for(system_name)
    target_for_faults = get_system(system_name, hardware=target_hardware)
    catalogue = discover_faults(target_for_faults, n_samples=250,
                                percentile=97.0, objectives=[objective],
                                seed=seed)
    pool = catalogue.single_objective(objective) or catalogue.faults
    fault = pool[0]

    reference = get_system(system_name, hardware=target_hardware)
    weights = reference.true_option_effects(objective)
    true_causes = sorted(weights, key=weights.get, reverse=True)[:5]

    outcomes: dict[str, HardwareTransferOutcome] = {}
    config = UnicornConfig(initial_samples=20, budget=budget, seed=seed,
                           relevant_options=relevant)
    for mode in modes:
        source = get_system(system_name, hardware=source_hardware)
        target = get_system(system_name, hardware=target_hardware)
        transfer = transfer_debug(source, target, fault, mode, config=config,
                                  source_samples=30, fine_tune_samples=25,
                                  objectives=[objective])
        result = transfer.debug_result
        pr = precision_recall(result.root_causes, true_causes)
        outcomes[f"unicorn_{mode.value}"] = HardwareTransferOutcome(
            scenario=f"unicorn ({mode.value})",
            accuracy=100.0 * ace_weighted_accuracy(result.root_causes,
                                                   true_causes, weights),
            precision=100.0 * pr["precision"],
            recall=100.0 * pr["recall"],
            gain=result.gains[objective],
            hours=transfer.extra_target_samples
            * target.measurement_cost_seconds / 3600.0)

    if include_bugdoc:
        target = get_system(system_name, hardware=target_hardware)
        bugdoc = BugDocDebugger(target, budget=budget, seed=seed,
                                relevant_options=relevant)
        result = bugdoc.debug(fault.configuration_dict(),
                              fault.measured_dict(), objectives=[objective])
        pr = precision_recall(result.root_causes, true_causes)
        outcomes["bugdoc_rerun"] = HardwareTransferOutcome(
            scenario="bugdoc (rerun)",
            accuracy=100.0 * ace_weighted_accuracy(result.root_causes,
                                                   true_causes, weights),
            precision=100.0 * pr["precision"],
            recall=100.0 * pr["recall"],
            gain=result.gains[objective],
            hours=result.simulated_hours)
    return outcomes


HARDWARE_TRANSFER_CELL = "hardware_transfer"


@register_cell_kind(HARDWARE_TRANSFER_CELL)
def _hardware_transfer_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: the Fig. 16 transfer-mode comparison."""
    outcomes = run_hardware_transfer(
        spec["system"], spec["source_hardware"], spec["target_hardware"],
        spec["objective"], budget=int(spec.get("budget", 50)), seed=seed,
        include_bugdoc=bool(spec.get("include_bugdoc", True)))
    return {
        "system": spec["system"],
        "source_hardware": spec["source_hardware"],
        "target_hardware": spec["target_hardware"],
        "objective": spec["objective"],
        "outcomes": {name: asdict(outcome)
                     for name, outcome in outcomes.items()},
    }


def transfer_campaign_cells(scenarios: Sequence[tuple[str, str, str, str]],
                            budget: int = 50,
                            include_bugdoc: bool = True
                            ) -> list[CampaignCell]:
    """One cell per ``(system, source_hw, target_hw, objective)`` scenario."""
    return [CampaignCell(kind=HARDWARE_TRANSFER_CELL, spec={
        "system": system, "source_hardware": source,
        "target_hardware": target, "objective": objective,
        "budget": int(budget), "include_bugdoc": bool(include_bugdoc),
    }) for system, source, target, objective in scenarios]


def run_transfer_campaign(scenarios: Sequence[tuple[str, str, str, str]],
                          root_seed: int = 0, parallel: bool = False,
                          max_workers: int | None = None,
                          store: ArtifactStore | None = None,
                          **cell_kwargs) -> list[dict]:
    """Run the Fig. 16 / Table 15 scenario grid through the campaign runner."""
    cells = transfer_campaign_cells(scenarios, **cell_kwargs)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()


# ---------------------------------------------------------------------------
# Workload transfer (Fig. 17)
# ---------------------------------------------------------------------------
def run_workload_transfer(system_name: str, hardware: str, objective: str,
                          base_workload: float, target_workloads: Sequence[float],
                          budget: int = 50, seed: int = 0
                          ) -> dict[float, dict[str, float]]:
    """Optimization gain on larger workloads for Unicorn vs SMAC reuse modes.

    Gain is measured relative to the target system's default configuration,
    matching the Fig. 17 presentation ("in comparison with the default
    configuration").
    """
    relevant = relevant_options_for(system_name)
    results: dict[float, dict[str, float]] = {}
    workload_kwarg = {"xception": "n_test_images", "bert": "n_reviews",
                      "deepspeech": "audio_hours"}.get(system_name,
                                                       "n_test_images")

    for target_size in target_workloads:
        source = get_system(system_name, hardware=hardware,
                            **{workload_kwarg: base_workload})
        row: dict[str, float] = {}

        def default_value(system) -> float:
            return system.measure(
                system.space.default_configuration()).objectives[objective]

        for mode in (TransferMode.REUSE, TransferMode.FINE_TUNE):
            target = get_system(system_name, hardware=hardware,
                                **{workload_kwarg: target_size})
            config = UnicornConfig(initial_samples=15, budget=budget,
                                   seed=seed, relevant_options=relevant)
            transfer = transfer_optimize(source, target, mode, config=config,
                                         source_samples=25,
                                         budget_fraction=0.2,
                                         objectives=[objective])
            best = transfer.optimization_result.best_objectives[objective]
            row[f"unicorn_{mode.value}"] = gain(default_value(target), best,
                                                target.objectives[objective])

        for label, smac_budget in (("smac_reuse", 27),
                                   ("smac_fine_tune", 25 + budget // 4)):
            target = get_system(system_name, hardware=hardware,
                                **{workload_kwarg: target_size})
            smac = SMACOptimizer(target, budget=smac_budget,
                                 initial_samples=15, seed=seed,
                                 relevant_options=relevant)
            result = smac.optimize(objective)
            row[label] = gain(default_value(target),
                              result.best_objectives[objective],
                              target.objectives[objective])
        results[float(target_size)] = row
    return results


# ---------------------------------------------------------------------------
# Influence-model vs causal-model stability (Fig. 4, 5, 21, 22)
# ---------------------------------------------------------------------------
@dataclass
class StabilityReport:
    """Term stability and prediction error across an environment change."""

    system: str
    objective: str
    source: str
    target: str
    influence: dict[str, float] = field(default_factory=dict)
    causal: dict[str, float] = field(default_factory=dict)

    def causal_generalizes_better(self) -> bool:
        """The Fig. 4 claim: smaller error inflation for the causal model."""
        return (self.causal["error_inflation"]
                <= self.influence["error_inflation"] + 1e-9)


def _influence_terms_and_error(system, data_source, data_target, objective,
                               options):
    model = PerformanceInfluenceModel(max_terms=15)
    model.fit(data_source, objective, options)
    return (model.terms(),
            model.mape(data_source, objective),
            model.mape(data_target, objective))


def _causal_terms_and_error(system, data_source, data_target, objective,
                            constraints):
    learner = CausalModelLearner(constraints, max_condition_size=1)
    learned = learner.learn(data_source)
    fitted_source = fit_structural_equations(learned.graph, data_source)
    option_names = set(constraints.options())

    def predict_from_options(row):
        # Predict the objective from the configuration alone, propagating
        # through the causal structure (events are predicted, not observed),
        # so the comparison with the influence model is like-for-like.
        assignment = {k: v for k, v in row.items() if k in option_names}
        return fitted_source.predict(assignment,
                                     targets=[objective])[objective]

    predictions_source = [predict_from_options(row)
                          for row in data_source.rows()]
    predictions_target = [predict_from_options(row)
                          for row in data_target.rows()]
    source_error = mean_absolute_percentage_error(
        data_source.column(objective), predictions_source)
    target_error = mean_absolute_percentage_error(
        data_target.column(objective), predictions_target)
    return fitted_source.all_terms(), source_error, target_error


def run_stability_analysis(system_name: str, source_hardware: str,
                           target_hardware: str, objective: str,
                           n_samples: int = 200, seed: int = 0
                           ) -> StabilityReport:
    """Compare influence-model and causal-model stability across hardware."""
    relevant = relevant_options_for(system_name)

    source_system = get_system(system_name, hardware=source_hardware)
    target_system = get_system(system_name, hardware=target_hardware)
    rng_source = np.random.default_rng(seed)
    rng_target = np.random.default_rng(seed + 1)
    configs = source_system.space.sample_configurations(n_samples, rng_source)

    source_measurements = source_system.measure_many(configs, rng=rng_source)
    target_measurements = target_system.measure_many(configs, rng=rng_target)

    unicorn_view_source = _restricted_dataset(source_system,
                                              source_measurements, relevant)
    unicorn_view_target = _restricted_dataset(target_system,
                                              target_measurements, relevant)

    options = [o for o in (relevant or source_system.space.option_names)
               if o in unicorn_view_source.columns]

    influence_src_terms, influence_src_err, influence_cross_err = (
        _influence_terms_and_error(source_system, unicorn_view_source,
                                   unicorn_view_target, objective, options))
    influence_tgt_terms, influence_tgt_err, _ = _influence_terms_and_error(
        target_system, unicorn_view_target, unicorn_view_source, objective,
        options)

    constraints = _restricted_constraints(source_system, relevant)
    causal_src_terms, causal_src_err, causal_cross_err = (
        _causal_terms_and_error(source_system, unicorn_view_source,
                                unicorn_view_target, objective, constraints))
    causal_tgt_terms, causal_tgt_err, _ = _causal_terms_and_error(
        target_system, unicorn_view_target, unicorn_view_source, objective,
        constraints)

    report = StabilityReport(system=system_name, objective=objective,
                             source=source_hardware, target=target_hardware)
    for label, src_terms, tgt_terms, src_err, tgt_err, cross_err in (
            ("influence", influence_src_terms, influence_tgt_terms,
             influence_src_err, influence_tgt_err, influence_cross_err),
            ("causal", causal_src_terms, causal_tgt_terms,
             causal_src_err, causal_tgt_err, causal_cross_err)):
        stability = term_stability(src_terms, tgt_terms)
        rank = rank_correlation(src_terms, tgt_terms)
        entry = {
            **stability,
            "rank_correlation": rank["rho"],
            "source_error": src_err,
            "target_error": tgt_err,
            "cross_error": cross_err,
            "error_inflation": cross_err - src_err,
        }
        if label == "influence":
            report.influence = entry
        else:
            report.causal = entry
    return report


def run_term_stability_vs_samples(system_name: str, source_hardware: str,
                                  target_hardware: str, objective: str,
                                  sample_sizes: Sequence[int] = (50, 100, 200),
                                  seed: int = 0) -> list[dict[str, float]]:
    """Fig. 21/22: stability of the two model families vs. sample size."""
    rows = []
    for n in sample_sizes:
        report = run_stability_analysis(system_name, source_hardware,
                                        target_hardware, objective,
                                        n_samples=n, seed=seed)
        rows.append({
            "n_samples": float(n),
            "influence_common_terms": report.influence["common_terms"],
            "influence_cross_error": report.influence["cross_error"],
            "causal_common_terms": report.causal["common_terms"],
            "causal_cross_error": report.causal["cross_error"],
        })
    return rows


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _restricted_dataset(system, measurements, relevant):
    data = system.build_dataset(measurements)
    if relevant is None:
        return data
    keep = ([o for o in relevant if o in data.columns]
            + [e for e in system.events if e in data.columns]
            + [o for o in system.objective_names if o in data.columns])
    return data.subset(keep)


def _restricted_constraints(system, relevant):
    from repro.discovery.constraints import StructuralConstraints

    options = relevant or system.space.option_names
    options = [o for o in options if o in system.space.option_names]
    return StructuralConstraints.from_variable_lists(
        options=options, events=system.events,
        objectives=system.objective_names)
