"""Optimization experiments (Fig. 15).

``run_single_objective_comparison`` traces the best-so-far objective of
Unicorn and SMAC over the same measurement budget (Fig. 15a/b);
``run_multi_objective_comparison`` compares Unicorn and the PESMO-style
baseline on the joint latency/energy task, reporting hypervolume error over
iterations and the final Pareto fronts (Fig. 15c/d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.pesmo import PESMOOptimizer
from repro.baselines.smac import SMACOptimizer
from repro.core.optimizer import OptimizationResult, UnicornOptimizer
from repro.core.unicorn import UnicornConfig
from repro.evaluation.relevant import relevant_options_for
from repro.evaluation.runner import CampaignCell, register_cell_kind, run_campaign
from repro.evaluation.store import ArtifactStore
from repro.metrics.optimization import hypervolume_error, pareto_front
from repro.systems.registry import get_system


@dataclass
class SingleObjectiveComparison:
    """Best-so-far traces of Unicorn and SMAC on one objective."""

    system: str
    objective: str
    unicorn: OptimizationResult
    smac: OptimizationResult

    def unicorn_best(self) -> float:
        return self.unicorn.best_objectives[self.objective]

    def smac_best(self) -> float:
        return self.smac.best_objectives[self.objective]


@dataclass
class MultiObjectiveComparison:
    """Hypervolume-error traces and Pareto fronts for the MO task."""

    system: str
    objectives: tuple[str, ...]
    unicorn: OptimizationResult
    pesmo: OptimizationResult
    unicorn_front: list[tuple[float, ...]] = field(default_factory=list)
    pesmo_front: list[tuple[float, ...]] = field(default_factory=list)
    unicorn_hv_error: float = 1.0
    pesmo_hv_error: float = 1.0


def run_single_objective_comparison(system_name: str, hardware: str,
                                    objective: str, budget: int = 60,
                                    initial_samples: int = 20,
                                    seed: int = 0) -> SingleObjectiveComparison:
    """Unicorn vs SMAC on one objective with the same measurement budget."""
    relevant = relevant_options_for(system_name)

    unicorn_system = get_system(system_name, hardware=hardware)
    unicorn = UnicornOptimizer(
        unicorn_system,
        UnicornConfig(initial_samples=initial_samples, budget=budget,
                      seed=seed, relevant_options=relevant))
    unicorn_result = unicorn.optimize(objectives=[objective])

    smac_system = get_system(system_name, hardware=hardware)
    smac = SMACOptimizer(smac_system, budget=budget,
                         initial_samples=initial_samples, seed=seed,
                         relevant_options=relevant)
    smac_result = smac.optimize(objective)

    return SingleObjectiveComparison(system=system_name, objective=objective,
                                     unicorn=unicorn_result,
                                     smac=smac_result)


OPTIMIZATION_CELL = "single_objective_optimization"


@register_cell_kind(OPTIMIZATION_CELL)
def _single_objective_cell(spec: Mapping, seed: int) -> dict:
    """One campaign cell: Unicorn vs SMAC on one (system, objective) pair."""
    comparison = run_single_objective_comparison(
        spec["system"], spec["hardware"], spec["objective"],
        budget=int(spec.get("budget", 60)),
        initial_samples=int(spec.get("initial_samples", 20)), seed=seed)
    return {
        "system": comparison.system,
        "hardware": spec["hardware"],
        "objective": comparison.objective,
        "unicorn_best": comparison.unicorn_best(),
        "smac_best": comparison.smac_best(),
        "unicorn_samples": comparison.unicorn.samples_used,
        "smac_samples": comparison.smac.samples_used,
    }


def optimization_campaign_cells(scenarios: Sequence[tuple[str, str, str]],
                                budget: int = 60,
                                initial_samples: int = 20
                                ) -> list[CampaignCell]:
    """One cell per ``(system, hardware, objective)`` scenario."""
    return [CampaignCell(kind=OPTIMIZATION_CELL, spec={
        "system": system, "hardware": hardware, "objective": objective,
        "budget": int(budget), "initial_samples": int(initial_samples),
    }) for system, hardware, objective in scenarios]


def run_optimization_campaign(scenarios: Sequence[tuple[str, str, str]],
                              root_seed: int = 0, parallel: bool = False,
                              max_workers: int | None = None,
                              store: ArtifactStore | None = None,
                              **cell_kwargs) -> list[dict]:
    """Run the Fig. 15a/b scenario grid through the campaign runner."""
    cells = optimization_campaign_cells(scenarios, **cell_kwargs)
    campaign = run_campaign(cells, root_seed=root_seed, parallel=parallel,
                            max_workers=max_workers, store=store)
    return campaign.results()


def _minimised_points(result: OptimizationResult,
                      objectives: Sequence[str]) -> list[tuple[float, ...]]:
    points = []
    for entry in result.evaluated:
        point = []
        for objective in objectives:
            value = entry[objective]
            if result.objectives[objective] == "maximize":
                value = -value
            point.append(value)
        points.append(tuple(point))
    return points


def run_multi_objective_comparison(system_name: str, hardware: str,
                                   objectives: Sequence[str],
                                   budget: int = 60,
                                   initial_samples: int = 20,
                                   seed: int = 0) -> MultiObjectiveComparison:
    """Unicorn vs the PESMO-style baseline on several objectives."""
    relevant = relevant_options_for(system_name)
    objective_names = list(objectives)

    unicorn_system = get_system(system_name, hardware=hardware)
    unicorn = UnicornOptimizer(
        unicorn_system,
        UnicornConfig(initial_samples=initial_samples, budget=budget,
                      seed=seed, relevant_options=relevant))
    unicorn_result = unicorn.optimize(objectives=objective_names)

    pesmo_system = get_system(system_name, hardware=hardware)
    pesmo = PESMOOptimizer(pesmo_system, budget=budget,
                           initial_samples=initial_samples, seed=seed,
                           relevant_options=relevant)
    pesmo_result = pesmo.optimize(objective_names)

    unicorn_points = _minimised_points(unicorn_result, objective_names)
    pesmo_points = _minimised_points(pesmo_result, objective_names)
    all_points = unicorn_points + pesmo_points
    reference_front = pareto_front(all_points)
    reference_point = tuple(
        float(np.max([p[i] for p in all_points]) * 1.1 + 1e-6)
        for i in range(len(objective_names)))

    comparison = MultiObjectiveComparison(
        system=system_name, objectives=tuple(objective_names),
        unicorn=unicorn_result, pesmo=pesmo_result,
        unicorn_front=pareto_front(unicorn_points),
        pesmo_front=pareto_front(pesmo_points))
    comparison.unicorn_hv_error = hypervolume_error(
        comparison.unicorn_front, reference_front, reference_point)
    comparison.pesmo_hv_error = hypervolume_error(
        comparison.pesmo_front, reference_front, reference_point)
    return comparison
