"""Optimization experiments (Fig. 15).

``run_single_objective_comparison`` traces the best-so-far objective of
Unicorn and SMAC over the same measurement budget (Fig. 15a/b);
``run_multi_objective_comparison`` compares Unicorn and the PESMO-style
baseline on the joint latency/energy task, reporting hypervolume error over
iterations and the final Pareto fronts (Fig. 15c/d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.pesmo import PESMOOptimizer
from repro.baselines.smac import SMACOptimizer
from repro.core.optimizer import OptimizationResult, UnicornOptimizer
from repro.core.unicorn import UnicornConfig
from repro.evaluation.relevant import relevant_options_for
from repro.metrics.optimization import hypervolume_error, pareto_front
from repro.systems.registry import get_system


@dataclass
class SingleObjectiveComparison:
    """Best-so-far traces of Unicorn and SMAC on one objective."""

    system: str
    objective: str
    unicorn: OptimizationResult
    smac: OptimizationResult

    def unicorn_best(self) -> float:
        return self.unicorn.best_objectives[self.objective]

    def smac_best(self) -> float:
        return self.smac.best_objectives[self.objective]


@dataclass
class MultiObjectiveComparison:
    """Hypervolume-error traces and Pareto fronts for the MO task."""

    system: str
    objectives: tuple[str, ...]
    unicorn: OptimizationResult
    pesmo: OptimizationResult
    unicorn_front: list[tuple[float, ...]] = field(default_factory=list)
    pesmo_front: list[tuple[float, ...]] = field(default_factory=list)
    unicorn_hv_error: float = 1.0
    pesmo_hv_error: float = 1.0


def run_single_objective_comparison(system_name: str, hardware: str,
                                    objective: str, budget: int = 60,
                                    initial_samples: int = 20,
                                    seed: int = 0) -> SingleObjectiveComparison:
    """Unicorn vs SMAC on one objective with the same measurement budget."""
    relevant = relevant_options_for(system_name)

    unicorn_system = get_system(system_name, hardware=hardware)
    unicorn = UnicornOptimizer(
        unicorn_system,
        UnicornConfig(initial_samples=initial_samples, budget=budget,
                      seed=seed, relevant_options=relevant))
    unicorn_result = unicorn.optimize(objectives=[objective])

    smac_system = get_system(system_name, hardware=hardware)
    smac = SMACOptimizer(smac_system, budget=budget,
                         initial_samples=initial_samples, seed=seed,
                         relevant_options=relevant)
    smac_result = smac.optimize(objective)

    return SingleObjectiveComparison(system=system_name, objective=objective,
                                     unicorn=unicorn_result,
                                     smac=smac_result)


def _minimised_points(result: OptimizationResult,
                      objectives: Sequence[str]) -> list[tuple[float, ...]]:
    points = []
    for entry in result.evaluated:
        point = []
        for objective in objectives:
            value = entry[objective]
            if result.objectives[objective] == "maximize":
                value = -value
            point.append(value)
        points.append(tuple(point))
    return points


def run_multi_objective_comparison(system_name: str, hardware: str,
                                   objectives: Sequence[str],
                                   budget: int = 60,
                                   initial_samples: int = 20,
                                   seed: int = 0) -> MultiObjectiveComparison:
    """Unicorn vs the PESMO-style baseline on several objectives."""
    relevant = relevant_options_for(system_name)
    objective_names = list(objectives)

    unicorn_system = get_system(system_name, hardware=hardware)
    unicorn = UnicornOptimizer(
        unicorn_system,
        UnicornConfig(initial_samples=initial_samples, budget=budget,
                      seed=seed, relevant_options=relevant))
    unicorn_result = unicorn.optimize(objectives=objective_names)

    pesmo_system = get_system(system_name, hardware=hardware)
    pesmo = PESMOOptimizer(pesmo_system, budget=budget,
                           initial_samples=initial_samples, seed=seed,
                           relevant_options=relevant)
    pesmo_result = pesmo.optimize(objective_names)

    unicorn_points = _minimised_points(unicorn_result, objective_names)
    pesmo_points = _minimised_points(pesmo_result, objective_names)
    all_points = unicorn_points + pesmo_points
    reference_front = pareto_front(all_points)
    reference_point = tuple(
        float(np.max([p[i] for p in all_points]) * 1.1 + 1e-6)
        for i in range(len(objective_names)))

    comparison = MultiObjectiveComparison(
        system=system_name, objectives=tuple(objective_names),
        unicorn=unicorn_result, pesmo=pesmo_result,
        unicorn_front=pareto_front(unicorn_points),
        pesmo_front=pareto_front(pesmo_points))
    comparison.unicorn_hv_error = hypervolume_error(
        comparison.unicorn_front, reference_front, reference_point)
    comparison.pesmo_hv_error = hypervolume_error(
        comparison.pesmo_front, reference_front, reference_point)
    return comparison
