"""Reproduction of Unicorn (EuroSys '22).

Unicorn reasons about the performance of highly configurable systems through
causal inference: it learns a *causal performance model* over configuration
options, low-level system events, and performance objectives, and uses that
model to debug performance faults and optimize performance with very few
measurements.

The package is organised as a layered system:

``repro.graph``
    Mixed causal graphs (PAGs, ADMGs, DAGs), separation criteria and distances.
``repro.stats``
    Conditional-independence tests and entropy estimators used by discovery.
``repro.discovery``
    PC / FCI structure learning plus the entropic edge-orientation pipeline
    that turns a PAG into a fully directed causal performance model.
``repro.scm``
    Structural causal models: mechanisms, sampling, interventions and
    counterfactuals; also fitting structural equations to observed data.
``repro.inference``
    The causal inference engine: average/individual causal effects, causal
    path extraction and ranking, repair sets and the query interface.
``repro.systems``
    The configurable-system simulator substrate: the six subject systems of
    the paper, hardware environments, workloads, measurement and faults.
``repro.core``
    Unicorn itself: the five-stage active-learning loop, the debugger, the
    optimizer and transfer-learning entry points.
``repro.baselines``
    Performance-influence models, CBI, DD, EnCore, BugDoc, SMAC and PESMO.
``repro.metrics``
    Evaluation metrics used across the paper's tables and figures.
``repro.evaluation``
    Experiment runners shared by the benchmark harness and the examples.
``repro.service``
    The concurrent query-serving layer: model registry, request batcher and
    the thread-safe :class:`~repro.service.service.QueryService` facade.
"""

from repro.core.unicorn import Unicorn, UnicornConfig
from repro.core.debugger import DebugResult, UnicornDebugger
from repro.core.optimizer import OptimizationResult, UnicornOptimizer
from repro.inference.engine import CausalInferenceEngine
from repro.inference.queries import PerformanceQuery, QueryKind
from repro.scm.model import StructuralCausalModel
from repro.service.registry import ModelRegistry
from repro.service.service import QueryService
from repro.systems.base import ConfigurableSystem, Environment, Measurement
from repro.systems.registry import get_system, list_systems

__version__ = "1.0.0"

__all__ = [
    "Unicorn",
    "UnicornConfig",
    "UnicornDebugger",
    "UnicornOptimizer",
    "DebugResult",
    "OptimizationResult",
    "CausalInferenceEngine",
    "ModelRegistry",
    "QueryService",
    "PerformanceQuery",
    "QueryKind",
    "StructuralCausalModel",
    "ConfigurableSystem",
    "Environment",
    "Measurement",
    "get_system",
    "list_systems",
    "__version__",
]
