"""Fitting structural equations to data over a learned causal graph.

The paper characterises each functional node of the causal performance model
with a polynomial model (the role played by ``semopy`` in the original
toolchain).  ``fit_structural_equations`` takes the learned graph and the
observational data and fits, for every node with at least one parent, a
least-squares polynomial (linear + squared + pairwise-interaction features) of
its parents.  The resulting :class:`FittedPerformanceModel` supports:

* performance prediction for unmeasured configurations (conditional
  expectation ``E[Y | X = x]`` propagated through the graph),
* interventional expectations ``E[Y | do(X = x)]`` estimated by replaying the
  observed exogenous context with the intervention applied (the empirical
  analogue of truncated factorisation),
* counterfactual replay of an individual observed sample
  (abduction–action–prediction on the fitted additive-noise equations).

The fitted model is what the causal inference engine queries when computing
average and individual causal effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.graph.dag import CausalDAG
from repro.graph.mixed_graph import MixedGraph
from repro.stats.dataset import Dataset


@dataclass
class FittedEquation:
    """A fitted polynomial structural equation for one variable."""

    variable: str
    parents: tuple[str, ...]
    feature_names: tuple[str, ...]
    coefficients: np.ndarray
    intercept: float
    residual_std: float

    def design_row(self, values: Mapping[str, float]) -> np.ndarray:
        parent_values = np.array([float(values[p]) for p in self.parents])
        return _polynomial_features(parent_values[None, :], self.parents)[0][0]

    def predict(self, values: Mapping[str, float]) -> float:
        # Accumulate feature terms sequentially (not via a BLAS dot product)
        # in the exact order predict_batch uses, so the scalar and batched
        # paths are *bitwise* identical — matmul reassociation would
        # otherwise let chained counterfactuals drift apart numerically.
        row = self.design_row(values)
        total = float(self.intercept)
        for j in range(len(self.coefficients)):
            total += float(row[j]) * float(self.coefficients[j])
        return total

    def predict_batch(self, columns: Mapping[str, np.ndarray],
                      n_rows: int) -> np.ndarray:
        """Vectorized :meth:`predict` over ``(n_rows,)`` parent columns.

        Feature terms (linear, squared, pairwise — the
        :func:`_polynomial_features` order) accumulate term-by-term in the
        same order and with the same elementwise operations as the scalar
        :meth:`predict`, so each row of the result is bitwise equal to a
        scalar call on that row.
        """
        if not self.parents:
            return np.full(n_rows, self.intercept, dtype=float)
        parent_columns = [np.asarray(columns[p], dtype=float)
                          for p in self.parents]
        coefficients = self.coefficients
        total = np.full(n_rows, float(self.intercept), dtype=float)
        k = 0
        for column in parent_columns:
            total += column * coefficients[k]
            k += 1
        for column in parent_columns:
            total += column ** 2 * coefficients[k]
            k += 1
        for j in range(len(parent_columns)):
            for l in range(j + 1, len(parent_columns)):
                total += parent_columns[j] * parent_columns[l] \
                    * coefficients[k]
                k += 1
        return total

    def terms(self) -> dict[str, float]:
        """Feature-name → coefficient mapping (for explanation / stability)."""
        return {name: float(c)
                for name, c in zip(self.feature_names, self.coefficients)}

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe snapshot; coefficients are bitwise (base64 codec).

        The intercept and residual noise scale ride as plain JSON floats —
        Python's JSON round-trips floats exactly (shortest-repr), so the
        whole equation reloads byte-identically.
        """
        from repro.stats.codec import array_to_doc

        return {
            "variable": self.variable,
            "parents": list(self.parents),
            "feature_names": list(self.feature_names),
            "coefficients": array_to_doc(np.asarray(self.coefficients,
                                                    dtype=float)),
            "intercept": float(self.intercept),
            "residual_std": float(self.residual_std),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FittedEquation":
        """Rebuild the equation snapshotted by :meth:`to_dict`, bitwise."""
        from repro.stats.codec import array_from_doc

        return cls(variable=payload["variable"],
                   parents=tuple(payload["parents"]),
                   feature_names=tuple(payload["feature_names"]),
                   coefficients=array_from_doc(payload["coefficients"]),
                   intercept=float(payload["intercept"]),
                   residual_std=float(payload["residual_std"]))


def _polynomial_features(matrix: np.ndarray, names: Sequence[str]
                         ) -> tuple[np.ndarray, list[str]]:
    """Linear + squared + pairwise interaction features with their names."""
    n_rows, n_cols = matrix.shape
    columns: list[np.ndarray] = []
    feature_names: list[str] = []
    for j, name in enumerate(names):
        columns.append(matrix[:, j])
        feature_names.append(name)
    for j, name in enumerate(names):
        columns.append(matrix[:, j] ** 2)
        feature_names.append(f"{name}^2")
    for j in range(n_cols):
        for k in range(j + 1, n_cols):
            columns.append(matrix[:, j] * matrix[:, k])
            feature_names.append(f"{names[j]}*{names[k]}")
    if not columns:
        return np.zeros((n_rows, 0)), []
    return np.column_stack(columns), feature_names


def _fit_equation(data: Dataset, variable: str,
                  parents: Sequence[str]) -> FittedEquation:
    parents = tuple(sorted(parents))
    y = data.column(variable)
    if not parents:
        return FittedEquation(variable=variable, parents=(),
                              feature_names=(), coefficients=np.zeros(0),
                              intercept=float(np.mean(y)),
                              residual_std=float(np.std(y)))
    x = np.column_stack([data.column(p) for p in parents])
    features, names = _polynomial_features(x, parents)
    design = np.column_stack([features, np.ones(len(y))])
    # Least squares via SVD (lstsq) keeps the fit stable when features are
    # collinear (e.g. a binary option and its square are identical) or span
    # wildly different magnitudes (kernel options in the 1e5 range next to
    # binary flags).
    beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ beta
    residual_std = float(np.std(y - predictions))
    return FittedEquation(variable=variable, parents=parents,
                          feature_names=tuple(names),
                          coefficients=beta[:-1], intercept=float(beta[-1]),
                          residual_std=residual_std)


class FittedPerformanceModel:
    """Structural equations fitted over a causal graph.

    Parameters
    ----------
    dag:
        The directed part of the learned causal performance model.
    equations:
        One fitted equation per endogenous node (node with parents).
    data:
        The observational data used for fitting; kept so interventional
        expectations can marginalise over the empirical context distribution.
    """

    def __init__(self, dag: CausalDAG,
                 equations: Mapping[str, FittedEquation],
                 data: Dataset) -> None:
        self._dag = dag
        self._equations = dict(equations)
        self._data = data
        self._topo = dag.topological_order()

    @property
    def dag(self) -> CausalDAG:
        return self._dag

    @property
    def data(self) -> Dataset:
        return self._data

    def equation(self, variable: str) -> FittedEquation:
        return self._equations[variable]

    def has_equation(self, variable: str) -> bool:
        return variable in self._equations

    def equations(self) -> dict[str, FittedEquation]:
        return dict(self._equations)

    # ------------------------------------------------------------ prediction
    def predict(self, assignment: Mapping[str, float],
                targets: Sequence[str] | None = None) -> dict[str, float]:
        """Propagate an assignment of root variables through the equations.

        Variables present in ``assignment`` are taken as given; every other
        variable with a fitted equation is computed from its parents in
        topological order; remaining variables fall back to their empirical
        mean.  Returns the values of ``targets`` (default: all variables).
        """
        values: dict[str, float] = {k: float(v) for k, v in assignment.items()}
        for variable in self._topo:
            if variable in values:
                continue
            if variable in self._equations:
                equation = self._equations[variable]
                if all(p in values for p in equation.parents):
                    values[variable] = equation.predict(values)
                    continue
            if variable in self._data.columns:
                values[variable] = float(np.mean(self._data.column(variable)))
            else:  # pragma: no cover - defensive
                values[variable] = 0.0
        if targets is None:
            return values
        return {t: values[t] for t in targets}

    # --------------------------------------------------------- interventions
    def interventional_expectation(self, target: str,
                                   intervention: Mapping[str, float],
                                   max_contexts: int = 200) -> float:
        """Estimate ``E[target | do(intervention)]``.

        The empirical analogue of truncated factorisation: for each observed
        row, clamp the intervened variables to their new values, re-propagate
        every descendant of an intervened variable through the fitted
        equations, and average the resulting target values.
        """
        affected = set(intervention)
        for variable in intervention:
            if self._dag.has_node(variable):
                affected |= self._dag.descendants(variable)
        rows = self._data.rows()
        if len(rows) > max_contexts:
            stride = len(rows) / max_contexts
            rows = [rows[int(i * stride)] for i in range(max_contexts)]
        total = 0.0
        for row in rows:
            values = dict(row)
            values.update({k: float(v) for k, v in intervention.items()})
            for variable in self._topo:
                if variable in intervention or variable not in affected:
                    continue
                if variable in self._equations:
                    equation = self._equations[variable]
                    if all(p in values for p in equation.parents):
                        values[variable] = equation.predict(values)
            total += values.get(target, 0.0)
        return total / max(len(rows), 1)

    # -------------------------------------------------------- counterfactual
    def counterfactual(self, observation: Mapping[str, float],
                       intervention: Mapping[str, float]) -> dict[str, float]:
        """Counterfactual outcome of one observed sample under an intervention.

        Abduction recovers each equation's residual on the factual
        observation; the intervention is applied; prediction re-propagates the
        equations adding back the abducted residuals (additive-noise
        assumption).
        """
        residuals: dict[str, float] = {}
        for variable, equation in self._equations.items():
            if variable in observation and all(p in observation
                                               for p in equation.parents):
                residuals[variable] = (float(observation[variable])
                                       - equation.predict(observation))
        values: dict[str, float] = {k: float(v) for k, v in observation.items()}
        values.update({k: float(v) for k, v in intervention.items()})
        affected = set(intervention)
        for variable in intervention:
            if self._dag.has_node(variable):
                affected |= self._dag.descendants(variable)
        for variable in self._topo:
            if variable in intervention or variable not in affected:
                continue
            if variable in self._equations:
                equation = self._equations[variable]
                if all(p in values for p in equation.parents):
                    values[variable] = (equation.predict(values)
                                        + residuals.get(variable, 0.0))
        return values

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe snapshot of the DAG and every fitted equation.

        The observational data is *not* embedded: the model store persists
        it once per snapshot (it is shared with the learned model) and
        passes it back to :meth:`from_dict`.  The DAG's node list is
        emitted in insertion order — topological ordering breaks ties by
        that order, so preserving it keeps propagation (and therefore
        every prediction) byte-identical after a reload.
        """
        return {
            "nodes": self._dag.nodes,
            "edges": [[cause, effect]
                      for cause, effect in sorted(self._dag.edges())],
            "equations": [self._equations[v].to_dict()
                          for v in sorted(self._equations)],
        }

    @classmethod
    def from_dict(cls, payload: dict,
                  data: Dataset) -> "FittedPerformanceModel":
        """Rebuild the model snapshotted by :meth:`to_dict` over ``data``.

        Parameters
        ----------
        payload:
            The :meth:`to_dict` document.
        data:
            The observational data the equations were fitted on (kept for
            interventional context marginalisation), reloaded separately.
        """
        dag = CausalDAG(payload["nodes"],
                        [(cause, effect)
                         for cause, effect in payload["edges"]])
        equations = {doc["variable"]: FittedEquation.from_dict(doc)
                     for doc in payload["equations"]}
        return cls(dag, equations, data)

    # ------------------------------------------------------------- reporting
    def all_terms(self) -> dict[str, float]:
        """Union of every equation's feature coefficients.

        Used by the transferability analysis (Fig. 4b) to compare which terms
        appear in models learned in different environments.
        """
        terms: dict[str, float] = {}
        for equation in self._equations.values():
            for name, coefficient in equation.terms().items():
                terms[f"{equation.variable}<-{name}"] = coefficient
        return terms


def fit_structural_equations(graph: MixedGraph | CausalDAG,
                             data: Dataset) -> FittedPerformanceModel:
    """Fit polynomial structural equations for every node with parents."""
    if isinstance(graph, MixedGraph):
        dag = CausalDAG.from_mixed_graph(graph)
    else:
        dag = graph
    equations: dict[str, FittedEquation] = {}
    for variable in dag.nodes:
        if variable not in data.columns:
            continue
        parents = [p for p in dag.parents(variable) if p in data.columns]
        if parents:
            equations[variable] = _fit_equation(data, variable, parents)
    return FittedPerformanceModel(dag, equations, data)
