"""Structural causal model: sampling, interventions and counterfactuals.

``StructuralCausalModel`` combines

* a set of exogenous variables (configuration options) with value domains,
* a mechanism per endogenous variable (system events and objectives),
* a noise model per endogenous variable,

and supports the three rungs of the causal hierarchy that Unicorn relies on:

* **observation** — :meth:`sample` draws measurement tuples,
* **intervention** — :meth:`intervene` computes the system's response to a
  configuration (``do(options = ...)``), which is what "deploying and
  measuring a configuration" means in the simulator,
* **counterfactuals** — :meth:`counterfactual` performs
  abduction–action–prediction for an observed sample: the realised noise is
  recovered from the factual observation and replayed under the intervention.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.graph.dag import CausalDAG
from repro.scm.mechanisms import Mechanism
from repro.scm.noise import NoNoise, NoiseModel


class StructuralCausalModel:
    """A ground-truth (or fitted) structural causal model.

    Parameters
    ----------
    exogenous:
        Mapping from exogenous variable name (configuration options in the
        performance setting) to the tuple of values it may take.  Exogenous
        variables have no mechanism; their values come from the configuration
        being measured (or from uniform sampling over the domain).
    mechanisms:
        Mapping from endogenous variable name to its :class:`Mechanism`.
    noise:
        Optional mapping from endogenous variable name to a noise model;
        variables without an entry are deterministic.
    """

    def __init__(self, exogenous: Mapping[str, Iterable[float]],
                 mechanisms: Mapping[str, Mechanism],
                 noise: Mapping[str, NoiseModel] | None = None) -> None:
        self._exogenous = {name: tuple(float(v) for v in values)
                           for name, values in exogenous.items()}
        self._mechanisms = dict(mechanisms)
        self._noise = dict(noise or {})
        overlap = set(self._exogenous) & set(self._mechanisms)
        if overlap:
            raise ValueError(
                f"variables cannot be both exogenous and endogenous: {overlap}")
        self._dag = self._build_dag()
        self._topo = [v for v in self._dag.topological_order()
                      if v in self._mechanisms]

    # ------------------------------------------------------------ structure
    def _build_dag(self) -> CausalDAG:
        dag = CausalDAG(list(self._exogenous) + list(self._mechanisms))
        for variable, mechanism in self._mechanisms.items():
            for parent in mechanism.parents:
                if parent not in self._exogenous and parent not in self._mechanisms:
                    raise ValueError(
                        f"mechanism for {variable!r} references unknown "
                        f"parent {parent!r}")
                dag.add_edge(parent, variable)
        return dag

    @property
    def dag(self) -> CausalDAG:
        return self._dag

    @property
    def exogenous_variables(self) -> list[str]:
        return list(self._exogenous)

    @property
    def endogenous_variables(self) -> list[str]:
        return list(self._mechanisms)

    @property
    def variables(self) -> list[str]:
        return list(self._exogenous) + list(self._mechanisms)

    def domain(self, variable: str) -> tuple[float, ...]:
        return self._exogenous[variable]

    def mechanism(self, variable: str) -> Mechanism:
        return self._mechanisms[variable]

    def noise_model(self, variable: str) -> NoiseModel:
        return self._noise.get(variable, NoNoise())

    # ------------------------------------------------------------- evaluation
    def _propagate(self, exogenous_values: Mapping[str, float],
                   noise_values: Mapping[str, float]) -> dict[str, float]:
        values: dict[str, float] = {k: float(v)
                                    for k, v in exogenous_values.items()}
        for variable in self._topo:
            mechanism = self._mechanisms[variable]
            structural = mechanism.evaluate(values)
            values[variable] = structural + noise_values.get(variable, 0.0)
        return values

    def _draw_noise(self, rng: np.random.Generator) -> dict[str, float]:
        return {variable: self.noise_model(variable).sample(rng)
                for variable in self._mechanisms}

    def intervene(self, configuration: Mapping[str, float],
                  rng: np.random.Generator | None = None,
                  noise: Mapping[str, float] | None = None) -> dict[str, float]:
        """Evaluate the system under ``do(options = configuration)``.

        Missing exogenous variables default to the first value of their
        domain.  When ``noise`` is given it is used verbatim (counterfactual
        replay); otherwise fresh noise is drawn from ``rng`` (or zero noise
        when ``rng`` is ``None``).
        """
        full_config = {name: float(configuration.get(name, domain[0]))
                       for name, domain in self._exogenous.items()}
        if noise is None:
            noise = self._draw_noise(rng) if rng is not None else {}
        return self._propagate(full_config, noise)

    def sample(self, n: int, rng: np.random.Generator,
               configurations: Iterable[Mapping[str, float]] | None = None
               ) -> list[dict[str, float]]:
        """Draw ``n`` observational samples.

        If ``configurations`` is given they are measured in order (cycling if
        fewer than ``n``); otherwise configurations are drawn uniformly at
        random from the exogenous domains — the observational distribution of
        the simulator.
        """
        rows: list[dict[str, float]] = []
        config_list = list(configurations) if configurations is not None else None
        for i in range(n):
            if config_list:
                config = config_list[i % len(config_list)]
            else:
                config = {name: float(rng.choice(domain))
                          for name, domain in self._exogenous.items()}
            rows.append(self.intervene(config, rng=rng))
        return rows

    # --------------------------------------------------------- counterfactual
    def abduct_noise(self, observation: Mapping[str, float]) -> dict[str, float]:
        """Recover the exogenous noise that produced ``observation``.

        For additive-noise mechanisms the realised noise of each endogenous
        variable is the residual between the observed value and the
        mechanism's prediction from the observed parents.
        """
        noise: dict[str, float] = {}
        for variable in self._topo:
            mechanism = self._mechanisms[variable]
            predicted = mechanism.evaluate(observation)
            noise[variable] = float(observation[variable]) - predicted
        return noise

    def counterfactual(self, observation: Mapping[str, float],
                       intervention: Mapping[str, float]) -> dict[str, float]:
        """Answer "what would the observation have been under ``intervention``".

        Standard abduction–action–prediction: recover the noise from the
        factual observation, apply the intervention to the exogenous
        variables, and re-propagate with the recovered noise.
        """
        noise = self.abduct_noise(observation)
        config = {name: float(observation[name]) for name in self._exogenous
                  if name in observation}
        config.update({k: float(v) for k, v in intervention.items()})
        return self.intervene(config, noise=noise)

    # ------------------------------------------------------------- utilities
    def interventional_expectation(self, target: str,
                                   intervention: Mapping[str, float],
                                   rng: np.random.Generator,
                                   n_samples: int = 64) -> float:
        """Monte-Carlo estimate of ``E[target | do(intervention)]``."""
        total = 0.0
        for _ in range(n_samples):
            total += self.intervene(intervention, rng=rng)[target]
        return total / n_samples

    def __repr__(self) -> str:
        return (f"StructuralCausalModel(exogenous={len(self._exogenous)}, "
                f"endogenous={len(self._mechanisms)})")
