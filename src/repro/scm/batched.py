"""Vectorized batch evaluation of structural causal models.

The active loop's inference time is dominated by interventional and
counterfactual queries evaluated one candidate configuration at a time:
``generate_repair_set`` scores hundreds of candidate repairs, ACE estimation
sweeps every permissible value of every option, and satisfaction
probabilities replay one intervention against every observed context.  Each
scalar query walks the graph with python dicts and per-row design matrices.

This module evaluates those queries in batch: N candidate configurations are
propagated through the mechanisms (ground truth) or the fitted structural
equations as ``(N,)``/``(N, R)`` numpy arrays in topological order, with the
expensive per-query setup — noise abduction, residual abduction, affected-set
computation — done once and reused across the whole batch.

* :class:`BatchedSCM` wraps a ground-truth
  :class:`~repro.scm.model.StructuralCausalModel` and vectorizes
  ``intervene`` / ``abduct_noise`` / ``counterfactual`` /
  ``interventional_expectation``.
* :class:`BatchedFittedModel` wraps a fitted
  :class:`~repro.scm.fitting.FittedPerformanceModel` and vectorizes
  ``predict`` / ``interventional_expectation`` / ``counterfactual``, which is
  what :class:`~repro.inference.engine.CausalInferenceEngine` queries on its
  hot paths.

The scalar methods on the wrapped models remain the *reference semantics*:
``tests/test_batched_vs_scalar.py`` holds the batched evaluators to 1e-9
equivalence against them, and the scalar path stays selectable
(``batched_queries=False`` / ``batched=False``) as the differential oracle.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.dag import CausalDAG
from repro.scm.fitting import FittedPerformanceModel
from repro.scm.fused import FusedProgram, compile_fused_program
from repro.scm.model import StructuralCausalModel

#: compiled fused programs kept per plan before the cache is dropped
#: wholesale (distinct intervention key sets are few in practice).
_MAX_FUSED_PROGRAMS = 128


def evaluate_mechanism_batch(mechanism, columns: Mapping[str, np.ndarray],
                             n_rows: int) -> np.ndarray:
    """Evaluate a mechanism over ``(n_rows,)`` parent columns.

    Mechanisms that implement ``evaluate_batch`` (all built-ins) are
    vectorized; anything else falls back to a per-row scalar loop, so custom
    mechanisms stay correct at scalar speed.
    """
    batch = getattr(mechanism, "evaluate_batch", None)
    if batch is not None:
        return np.asarray(batch(columns, n_rows), dtype=float)
    parents = mechanism.parents
    return np.array([mechanism.evaluate({p: float(columns[p][i])
                                         for p in parents})
                     for i in range(n_rows)], dtype=float)


def _value_at(value, j: int) -> float:
    """Row ``j`` of a values entry (a broadcast scalar or an ``(N,)`` column).

    Fused programs leave base values and constant steps as Python-float
    scalars instead of materialising ``np.full`` columns; extraction has to
    accept both representations.
    """
    if isinstance(value, np.ndarray):
        return float(value[j])
    return float(value)


def group_by_keyset(mappings: Sequence[Mapping[str, float]]
                    ) -> list[tuple[tuple[str, ...], list[int]]]:
    """Group mappings by their key set, preserving original indices.

    Batch propagation needs a uniform control flow per group (the same
    variables intervened/assigned for every row); candidate repair grids
    produce only a handful of distinct key sets, so grouping keeps the
    vectorization effective.  Groups are returned with sorted key tuples in
    first-appearance order.
    """
    groups: dict[frozenset, list[int]] = {}
    for i, mapping in enumerate(mappings):
        groups.setdefault(frozenset(mapping), []).append(i)
    return [(tuple(sorted(keys)), idx) for keys, idx in groups.items()]


class StructuralPlan:
    """Memoized structural bookkeeping for batch propagation over one DAG.

    Caches, per set of intervened variables, the *affected set* (the
    intervened variables plus their descendant closure) and the
    *propagation schedule* (the topologically ordered variables that must be
    recomputed under the intervention).  :class:`repro.inference.query_plan.
    QueryPlan` extends this with graph-version-keyed path enumeration and
    candidate-grid memoization.
    """

    def __init__(self, dag: CausalDAG) -> None:
        self._dag = dag
        self._topo: tuple[str, ...] = tuple(dag.topological_order())
        self._affected: dict[frozenset, frozenset] = {}
        self._schedules: dict[frozenset, tuple[str, ...]] = {}
        #: compiled fused programs (see :mod:`repro.scm.fused`), claimed by
        #: exactly one fitted model at a time — programs embed that model's
        #: coefficients, so a different owner must not reuse them.
        self._fused_programs: dict = {}
        self._fused_owner: object = None

    @property
    def dag(self) -> CausalDAG:
        return self._dag

    @property
    def topological_order(self) -> tuple[str, ...]:
        return self._topo

    def affected_variables(self, intervened: Iterable[str]) -> frozenset:
        """Intervened variables plus everything causally downstream."""
        key = frozenset(intervened)
        cached = self._affected.get(key)
        if cached is None:
            affected = set(key)
            for variable in key:
                if self._dag.has_node(variable):
                    affected |= self._dag.descendants(variable)
            cached = self._affected[key] = frozenset(affected)
        return cached

    def propagation_schedule(self, intervened: Iterable[str]
                             ) -> tuple[str, ...]:
        """Topologically ordered variables to recompute under ``do(...)``."""
        key = frozenset(intervened)
        cached = self._schedules.get(key)
        if cached is None:
            affected = self.affected_variables(key)
            cached = self._schedules[key] = tuple(
                v for v in self._topo if v in affected and v not in key)
        return cached

    def fused_programs(self, owner: object) -> dict:
        """The fused-program cache, claimed for ``owner``.

        Compiled programs embed the owning model's equation coefficients;
        handing the cache to a different owner (the engine rebuilds its
        batched evaluator around a freshly fitted model on every refresh)
        clears it so stale coefficients can never be replayed.
        """
        if self._fused_owner is not owner:
            self._fused_programs = {}
            self._fused_owner = owner
        return self._fused_programs

    def _invalidate(self) -> None:
        self._affected.clear()
        self._schedules.clear()
        # Fused programs bake in propagation schedules of the old structure;
        # a structural rebind must drop them with the other memos.
        self._fused_programs = {}
        self._fused_owner = None

    def rebind(self, dag: CausalDAG, structure_changed: bool = True) -> None:
        """Point the plan at a (possibly re-learned) DAG.

        When the structure did not change, the memoized affected sets and
        schedules remain valid and are kept.
        """
        self._dag = dag
        self._topo = tuple(dag.topological_order())
        if structure_changed:
            self._invalidate()


# ---------------------------------------------------------------------------
# Ground-truth SCMs
# ---------------------------------------------------------------------------
class BatchedSCM:
    """Vectorized queries over a ground-truth structural causal model.

    All methods reproduce the scalar semantics of
    :class:`~repro.scm.model.StructuralCausalModel` exactly (to float
    round-off): noise streams are consumed in the same order as a scalar
    loop over the batch, so seeded runs agree with the scalar reference.
    """

    def __init__(self, scm: StructuralCausalModel) -> None:
        self._scm = scm
        self._exogenous = list(scm.exogenous_variables)
        self._defaults = {name: scm.domain(name)[0] for name in self._exogenous}
        endogenous = set(scm.endogenous_variables)
        self._endogenous = list(scm.endogenous_variables)
        self._topo = [v for v in scm.dag.topological_order()
                      if v in endogenous]

    @property
    def scm(self) -> StructuralCausalModel:
        return self._scm

    # ------------------------------------------------------------- internals
    def _config_columns(self, configurations: Sequence[Mapping[str, float]]
                        ) -> tuple[dict[str, np.ndarray], int]:
        n = len(configurations)
        columns = {
            name: np.array([float(c.get(name, self._defaults[name]))
                            for c in configurations], dtype=float)
            for name in self._exogenous
        }
        return columns, n

    def _draw_noise_columns(self, rng: np.random.Generator,
                            n: int) -> dict[str, np.ndarray]:
        # Row-major draws (configuration-major, mechanism-minor) replicate
        # the rng stream of a scalar loop calling ``intervene`` per row.
        draws = {v: np.empty(n, dtype=float) for v in self._endogenous}
        for i in range(n):
            for variable in self._endogenous:
                draws[variable][i] = \
                    self._scm.noise_model(variable).sample(rng)
        return draws

    def _noise_columns(self, noise, rng, n: int) -> dict[str, np.ndarray]:
        if noise is None:
            return self._draw_noise_columns(rng, n) if rng is not None else {}
        columns: dict[str, np.ndarray] = {}
        for variable, value in noise.items():
            array = np.asarray(value, dtype=float)
            columns[variable] = (np.full(n, float(array))
                                 if array.ndim == 0 else array)
        return columns

    def _propagate(self, columns: dict[str, np.ndarray],
                   noise_columns: Mapping[str, np.ndarray],
                   n: int) -> dict[str, np.ndarray]:
        values = dict(columns)
        for variable in self._topo:
            structural = evaluate_mechanism_batch(
                self._scm.mechanism(variable), values, n)
            offset = noise_columns.get(variable)
            values[variable] = (structural if offset is None
                                else structural + offset)
        return values

    # ------------------------------------------------------------------- API
    def intervene_batch(self, configurations: Sequence[Mapping[str, float]],
                        rng: np.random.Generator | None = None,
                        noise: Mapping[str, float | np.ndarray] | None = None
                        ) -> dict[str, np.ndarray]:
        """``do(options = configuration)`` for a whole batch at once.

        Returns one ``(N,)`` column per variable.  Missing exogenous
        variables default to the first domain value, matching the scalar
        :meth:`~repro.scm.model.StructuralCausalModel.intervene`.
        """
        columns, n = self._config_columns(list(configurations))
        noise_columns = self._noise_columns(noise, rng, n)
        return self._propagate(columns, noise_columns, n)

    def abduct_noise_batch(self, observations: Sequence[Mapping[str, float]]
                           ) -> dict[str, np.ndarray]:
        """Realised noise of each observation, one column per variable.

        Observations are grouped by their key set, so heterogeneous batches
        (rows observing different variable subsets) behave exactly like a
        scalar loop over :meth:`StructuralCausalModel.abduct_noise`.
        """
        observations = list(observations)
        n = len(observations)
        noise = {variable: np.empty(n, dtype=float)
                 for variable in self._topo}
        for _, idx in group_by_keyset(observations):
            group = [observations[i] for i in idx]
            columns = {
                name: np.array([float(o[name]) for o in group], dtype=float)
                for name in group[0]
            }
            for variable in self._topo:
                predicted = evaluate_mechanism_batch(
                    self._scm.mechanism(variable), columns, len(group))
                noise[variable][idx] = columns[variable] - predicted
        return noise

    def counterfactual_batch(self, observations: Sequence[Mapping[str, float]],
                             interventions: Sequence[Mapping[str, float]]
                             ) -> dict[str, np.ndarray]:
        """Element-wise counterfactuals: one observation/intervention pair
        per batch row, with the noise abduction vectorized across the batch.
        """
        observations = list(observations)
        interventions = list(interventions)
        if len(observations) != len(interventions):
            raise ValueError("observations and interventions must pair up")
        noise = self.abduct_noise_batch(observations)
        configurations = []
        for observation, intervention in zip(observations, interventions):
            config = {name: float(observation[name])
                      for name in self._exogenous if name in observation}
            config.update({k: float(v) for k, v in intervention.items()})
            configurations.append(config)
        return self.intervene_batch(configurations, noise=noise)

    def interventional_expectation_batch(
            self, target: str, interventions: Sequence[Mapping[str, float]],
            rng: np.random.Generator, n_samples: int = 64) -> np.ndarray:
        """Monte-Carlo ``E[target | do(...)]`` for each intervention.

        Consumes the rng stream exactly as sequential scalar calls to
        :meth:`~repro.scm.model.StructuralCausalModel.
        interventional_expectation` would.
        """
        out = np.empty(len(interventions), dtype=float)
        for j, intervention in enumerate(interventions):
            values = self.intervene_batch([intervention] * n_samples, rng=rng)
            out[j] = float(np.mean(values[target]))
        return out


# ---------------------------------------------------------------------------
# Fitted performance models
# ---------------------------------------------------------------------------
class BatchedFittedModel:
    """Vectorized queries over a fitted performance model.

    One instance is bound to one :class:`FittedPerformanceModel` (engines
    rebuild it on ``refresh``).  A :class:`StructuralPlan` (or the engine's
    :class:`~repro.inference.query_plan.QueryPlan`) supplies memoized
    affected sets and propagation schedules.
    """

    def __init__(self, model: FittedPerformanceModel,
                 plan: StructuralPlan | None = None,
                 fused: bool = True) -> None:
        self._model = model
        self._plan = plan if plan is not None else StructuralPlan(model.dag)
        self._column_index = {name: i
                              for i, name in enumerate(model.data.columns)}
        self._means: dict[str, float] = {}
        self._means_epoch = model.data.data_epoch
        #: full-dataset residual columns (counterfactual_rows_batch), keyed
        #: off the data epoch like the means — intervention-independent.
        self._row_residuals: dict[str, np.ndarray] | None = None
        self._row_residuals_epoch = -1
        #: route propagation through compiled fused programs (one GEMM per
        #: topological level); ``fused=False`` keeps the per-node loops as
        #: the intermediate differential oracle between fused and scalar.
        self._fused = bool(fused)
        #: context-matrix memo: ``(data_epoch, max_contexts, matrix)``.
        self._context_cache: tuple[int, int, np.ndarray] | None = None

    @property
    def model(self) -> FittedPerformanceModel:
        return self._model

    @property
    def plan(self) -> StructuralPlan:
        return self._plan

    @property
    def fused(self) -> bool:
        """Whether propagation runs through compiled fused programs."""
        return self._fused

    def _program(self, key, schedule: Sequence[str], known,
                 missing: str = "skip", column_names: Iterable[str] = (),
                 vector: Iterable[str] = ()) -> FusedProgram:
        """Compile-or-fetch the fused program for one cache ``key``."""
        programs = self._plan.fused_programs(self._model)
        program = programs.get(key)
        if program is None:
            if len(programs) >= _MAX_FUSED_PROGRAMS:
                programs.clear()
            program = compile_fused_program(self._model, schedule, known,
                                            missing=missing,
                                            column_names=column_names,
                                            vector=vector)
            programs[key] = program
        return program

    def _column_mean(self, variable: str) -> float:
        epoch = self._model.data.data_epoch
        if epoch != self._means_epoch:
            self._means.clear()
            self._means_epoch = epoch
        if variable not in self._means:
            self._means[variable] = float(
                np.mean(self._model.data.column(variable)))
        return self._means[variable]

    # ------------------------------------------------------------ prediction
    def predict_batch(self, assignments: Sequence[Mapping[str, float]],
                      targets: Sequence[str] | None = None
                      ) -> list[dict[str, float]]:
        """Vectorized :meth:`FittedPerformanceModel.predict`.

        Assignments are grouped by their key set so each group shares one
        control flow; within a group every variable is computed as one
        ``(N,)`` column.
        """
        assignments = list(assignments)
        model = self._model
        results: list[dict[str, float] | None] = [None] * len(assignments)
        for keys, idx in group_by_keyset(assignments):
            group = [assignments[i] for i in idx]
            n = len(group)
            values: dict = {
                key: np.array([float(a[key]) for a in group], dtype=float)
                for key in keys
            }
            if self._fused:
                schedule = [v for v in self._plan.topological_order
                            if v not in values]
                program = self._program(("predict", keys), schedule, keys,
                                        missing="fallback",
                                        column_names=self._column_index,
                                        vector=keys)
                program.execute(values, n, means=self._column_mean,
                                scalar_token=self._observation_token({}))
            else:
                for variable in self._plan.topological_order:
                    if variable in values:
                        continue
                    if model.has_equation(variable):
                        equation = model.equation(variable)
                        if all(p in values for p in equation.parents):
                            values[variable] = equation.predict_batch(values,
                                                                      n)
                            continue
                    if variable in self._column_index:
                        values[variable] = np.full(
                            n, self._column_mean(variable))
                    else:
                        values[variable] = np.zeros(n)
            wanted = list(values) if targets is None else list(targets)
            for j, i in enumerate(idx):
                results[i] = {t: _value_at(values[t], j) for t in wanted}
        # Every index belongs to exactly one key-set group, so the list is
        # fully populated.
        return results

    # --------------------------------------------------------- interventions
    def _context_matrix(self, max_contexts: int) -> np.ndarray:
        """The observed contexts, subsampled exactly like the scalar path.

        Memoized per ``(data_epoch, max_contexts)`` — repeated ACE sweeps
        and interventional batches between observations reuse one matrix
        instead of re-slicing the dataset on every call.
        """
        epoch = self._model.data.data_epoch
        cached = self._context_cache
        if cached is not None and cached[0] == epoch \
                and cached[1] == max_contexts:
            return cached[2]
        matrix = self._model.data.values
        n_rows = matrix.shape[0]
        if n_rows > max_contexts:
            stride = n_rows / max_contexts
            index = [int(i * stride) for i in range(max_contexts)]
            matrix = matrix[index]
        self._context_cache = (epoch, max_contexts, matrix)
        return matrix

    def interventional_expectation_batch(
            self, target: str, interventions: Sequence[Mapping[str, float]],
            max_contexts: int = 200) -> np.ndarray:
        """Vectorized ``E[target | do(...)]`` over the empirical contexts.

        For each group of interventions sharing a key set, the observed
        contexts are tiled into ``(N, R)`` columns, the intervened columns
        are clamped, and only the variables downstream of an intervened one
        are re-propagated — the batched analogue of the scalar truncated
        factorisation.
        """
        interventions = list(interventions)
        model = self._model
        out = np.zeros(len(interventions), dtype=float)
        context = self._context_matrix(max_contexts)
        n_contexts = context.shape[0]
        if n_contexts == 0:
            return out
        if self._fused:
            return self._interventional_fused(target, interventions, out,
                                              context)
        for keys, idx in group_by_keyset(interventions):
            n = len(idx)
            values: dict[str, np.ndarray] = {
                name: np.broadcast_to(context[:, j], (n, n_contexts))
                for name, j in self._column_index.items()
            }
            for key in keys:
                column = np.array([float(interventions[i][key]) for i in idx],
                                  dtype=float)
                values[key] = np.broadcast_to(column[:, None],
                                              (n, n_contexts))
            for variable in self._plan.propagation_schedule(keys):
                if not model.has_equation(variable):
                    continue
                equation = model.equation(variable)
                if all(p in values for p in equation.parents):
                    flat = {p: values[p].reshape(-1)
                            for p in equation.parents}
                    values[variable] = equation.predict_batch(
                        flat, n * n_contexts).reshape(n, n_contexts)
            if target in values:
                out[idx] = values[target].mean(axis=1)
        return out

    def _interventional_fused(self, target: str,
                              interventions: Sequence[Mapping[str, float]],
                              out: np.ndarray,
                              context: np.ndarray) -> np.ndarray:
        """Fused-program body of :meth:`interventional_expectation_batch`.

        Per intervention key set the contexts are flattened row-major into
        ``(n_group * n_contexts,)`` columns — but only the columns the
        compiled program actually reads are materialised.
        """
        n_contexts = context.shape[0]
        for keys, idx in group_by_keyset(interventions):
            keyset = set(keys)
            schedule = self._plan.propagation_schedule(keys)
            known = keyset | set(self._column_index)
            program = self._program(("do", keys), schedule, known,
                                    vector=known)
            n = len(idx) * n_contexts
            values: dict = {}
            for name in program.reads:
                if name not in keyset:
                    values[name] = np.tile(
                        context[:, self._column_index[name]], len(idx))
            for key in keys:
                column = np.array([float(interventions[i][key])
                                   for i in idx], dtype=float)
                values[key] = np.repeat(column, n_contexts)
            program.execute(values, n)
            if target in program.produces:
                column = values[target]
                if isinstance(column, np.ndarray):
                    out[idx] = column.reshape(len(idx),
                                              n_contexts).mean(axis=1)
                else:
                    out[idx] = float(column)
            elif target in keyset:
                out[idx] = [float(interventions[i][target]) for i in idx]
            elif target in self._column_index:
                out[idx] = context[:, self._column_index[target]].mean()
        return out

    # -------------------------------------------------------- counterfactual
    def _abduct_residuals(self, observation: Mapping[str, float]
                          ) -> dict[str, float]:
        """Equation residuals of the factual observation (abduction).

        Computed once per observation with the scalar equations — this is
        the single abduction reused across the whole candidate batch.
        """
        model = self._model
        residuals: dict[str, float] = {}
        for variable, equation in model.equations().items():
            if variable in observation and all(p in observation
                                               for p in equation.parents):
                residuals[variable] = (float(observation[variable])
                                       - equation.predict(observation))
        return residuals

    def _observation_token(self, scalars: Mapping[str, float]) -> tuple:
        """Equality token over every broadcast scalar a program may read.

        Keys the per-program scalar-fold memo (see
        :meth:`FusedProgram.execute`): the data epoch covers the empirical
        means, the items cover the observation's base values — together
        they determine every scalar input of the compiled programs.
        """
        return (self._model.data.data_epoch,
                tuple(sorted(scalars.items())))

    def _counterfactual_columns(self, observation: Mapping[str, float],
                                interventions: Sequence[Mapping[str, float]]
                                ):
        """Yield ``(indices, values)`` per key-set group of interventions.

        On the fused path the observation enters as broadcast Python-float
        scalars (no ``np.full`` per column — the profiled hot spot of the
        per-node path) and only recomputed variables come back as ``(N,)``
        columns; consumers extract rows through :func:`_value_at`.
        """
        model = self._model
        residuals = self._abduct_residuals(observation)
        base = ({name: float(value) for name, value in observation.items()}
                if self._fused else None)
        token = (self._observation_token(base) if self._fused else None)
        for keys, idx in group_by_keyset(interventions):
            n = len(idx)
            if self._fused:
                values = dict(base)
                for key in keys:
                    values[key] = np.array(
                        [float(interventions[i][key]) for i in idx],
                        dtype=float)
                known = frozenset(observation) | set(keys)
                program = self._program(("cf", keys, frozenset(observation)),
                                        self._plan.propagation_schedule(keys),
                                        known, vector=keys)
                program.execute(values, n, residuals=residuals,
                                scalar_token=token)
                yield idx, values
                continue
            values: dict[str, np.ndarray] = {
                name: np.full(n, float(value))
                for name, value in observation.items()
            }
            for key in keys:
                values[key] = np.array(
                    [float(interventions[i][key]) for i in idx], dtype=float)
            for variable in self._plan.propagation_schedule(keys):
                if not model.has_equation(variable):
                    continue
                equation = model.equation(variable)
                if all(p in values for p in equation.parents):
                    values[variable] = (
                        equation.predict_batch(values, n)
                        + residuals.get(variable, 0.0))
            yield idx, values

    def counterfactual_batch(self, observation: Mapping[str, float],
                             interventions: Sequence[Mapping[str, float]]
                             ) -> list[dict[str, float]]:
        """Counterfactuals of one observation under many interventions.

        Returns one outcome dict per intervention (the shape of the scalar
        :meth:`FittedPerformanceModel.counterfactual`), with the residual
        abduction shared across the batch.
        """
        interventions = list(interventions)
        results: list[dict[str, float]] = [{} for _ in interventions]
        for idx, values in self._counterfactual_columns(observation,
                                                        interventions):
            names = list(values)
            for j, i in enumerate(idx):
                results[i] = {name: _value_at(values[name], j)
                              for name in names}
        return results

    def counterfactual_targets_batch(
            self, observation: Mapping[str, float],
            interventions: Sequence[Mapping[str, float]],
            targets: Sequence[str],
            fallbacks: Mapping[str, float] | None = None) -> np.ndarray:
        """Counterfactual values of ``targets`` only, as an ``(N, T)`` array.

        The fast path for repair scoring: avoids materialising the full
        outcome dict per candidate.  Targets absent from the observation and
        never recomputed fall back to ``fallbacks`` (or 0.0).
        """
        interventions = list(interventions)
        targets = list(targets)
        out = np.empty((len(interventions), len(targets)), dtype=float)
        for t, target in enumerate(targets):
            if target in observation:
                out[:, t] = float(observation[target])
            else:
                out[:, t] = float((fallbacks or {}).get(target, 0.0))
        if not interventions:
            return out
        if self._fused:
            merged = self._merged_counterfactual_targets(
                observation, interventions, targets, out)
            if merged is not None:
                return merged
        for idx, values in self._counterfactual_columns(observation,
                                                        interventions):
            for t, target in enumerate(targets):
                if target in values:
                    out[idx, t] = values[target]
        return out

    def _merged_counterfactual_targets(
            self, observation: Mapping[str, float],
            interventions: Sequence[Mapping[str, float]],
            targets: Sequence[str], out: np.ndarray) -> np.ndarray | None:
        """Score heterogeneous interventions in one fused execution.

        Instead of one program per intervention key set (candidate repair
        grids produce dozens of tiny groups), the whole batch runs through
        one program over the *union* of the intervened keys: a row that does
        not intervene on a key carries the observation's base value in that
        column, and every recomputed variable it is not downstream of
        reconstructs its base value exactly (``prediction + abducted
        residual``), so the result matches the per-group semantics to float
        round-off.  Returns ``None`` when the reconstruction argument does
        not hold — a key downstream of another key, a row intervening on a
        key absent from the observation, or a recomputed equation without an
        abducted residual — in which case the caller falls back to the
        per-group path.
        """
        union: set[str] = set()
        for intervention in interventions:
            union |= intervention.keys()
        if not union:
            return out
        keys = tuple(sorted(union))
        guard_key = ("cfm-guard", keys, frozenset(observation))
        programs = self._plan.fused_programs(self._model)
        eligible = programs.get(guard_key)
        if eligible is None:
            eligible = self._merged_guard(keys, union, observation)
            if len(programs) >= _MAX_FUSED_PROGRAMS:
                programs.clear()
            programs[guard_key] = eligible
        if not eligible:
            return None
        schedule = self._plan.propagation_schedule(keys)
        residuals = self._abduct_residuals(observation)
        values: dict = {name: float(value)
                        for name, value in observation.items()}
        for key in keys:
            base = observation.get(key)
            if base is None:
                try:
                    column = np.array([float(iv[key])
                                       for iv in interventions], dtype=float)
                except KeyError:
                    return None
            else:
                base = float(base)
                column = np.array([float(iv.get(key, base))
                                   for iv in interventions], dtype=float)
            values[key] = column
        program = self._program(("cfm", keys, frozenset(observation)),
                                schedule, frozenset(observation) | union,
                                vector=keys)
        token = self._observation_token(
            {name: float(value) for name, value in observation.items()})
        program.execute(values, len(interventions), residuals=residuals,
                        scalar_token=token)
        for t, target in enumerate(targets):
            if target in values:
                out[:, t] = values[target]
        return out

    def _merged_guard(self, keys: tuple, union: set,
                      observation: Mapping[str, float]) -> bool:
        """Whether the merged-execution reconstruction argument holds.

        Depends only on the key set and the observation's *names* (residual
        availability is a function of which variables were observed, not of
        their values), so the verdict is cached per ``(keys, names)`` in the
        plan's fused-program table.
        """
        for key in keys:
            if self._plan.affected_variables((key,)) & (union - {key}):
                return False
        residuals = self._abduct_residuals(observation)
        model = self._model
        for node in self._plan.propagation_schedule(keys):
            if model.has_equation(node) and node not in residuals:
                return False
        return True

    def counterfactual_rows_batch(self, intervention: Mapping[str, float],
                                  target: str) -> np.ndarray:
        """Counterfactual ``target`` of *every* observed row under one
        intervention — the satisfaction-probability hot path.

        The residual abduction is vectorized over the dataset: one
        ``predict_batch`` per equation on the pristine columns, then one
        re-propagation of the affected variables with the intervention
        clamped.
        """
        model = self._model
        data = model.data
        n = data.n_rows
        columns = {name: data.column(name) for name in data.columns}
        epoch = data.data_epoch
        if self._row_residuals is None or self._row_residuals_epoch != epoch:
            self._row_residuals = {
                variable: columns[variable]
                - equation.predict_batch(columns, n)
                for variable, equation in model.equations().items()
                if variable in columns
                and all(p in columns for p in equation.parents)
            }
            self._row_residuals_epoch = epoch
        residuals = self._row_residuals
        values: dict = dict(columns)
        keys = list(intervention)
        if self._fused:
            for key in keys:
                values[key] = float(intervention[key])
            program = self._program(("rows", frozenset(keys)),
                                    self._plan.propagation_schedule(keys),
                                    set(columns) | set(keys),
                                    vector=columns)
            token = self._observation_token(
                {key: float(intervention[key]) for key in keys})
            program.execute(values, n, residuals=residuals,
                            scalar_token=token)
            if target in values:
                column = values[target]
                return (np.asarray(column, dtype=float)
                        if isinstance(column, np.ndarray)
                        else np.full(n, float(column)))
            return np.zeros(n)
        for key in keys:
            values[key] = np.full(n, float(intervention[key]))
        for variable in self._plan.propagation_schedule(keys):
            if not model.has_equation(variable):
                continue
            equation = model.equation(variable)
            if all(p in values for p in equation.parents):
                values[variable] = (equation.predict_batch(values, n)
                                    + residuals.get(variable, 0.0))
        if target in values:
            return np.asarray(values[target], dtype=float)
        return np.zeros(n)
