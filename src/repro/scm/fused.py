"""Fused structure-of-arrays execution plans for fitted structural equations.

The batched evaluator (:mod:`repro.scm.batched`) removed the per-*candidate*
Python overhead of interventional and counterfactual queries, but it still
dispatches Python per *node*: every topological level walks its variables one
at a time, paying one ``predict_batch`` call (feature building, term-by-term
accumulation) per fitted equation.  A 256-candidate repair scan over a
37-variable model therefore makes thousands of small numpy calls.

This module compiles a propagation schedule into a **fused program**: the
schedule is partitioned into levels (by recomputation depth), and within each
level every polynomial equation's coefficients are packed into one contiguous
``(F, K)`` coefficient matrix over the level's deduplicated feature set, so
propagating ``N`` configurations costs one BLAS ``(N, F) @ (F, K)`` matrix
multiply per level instead of ``K`` Python dispatches.  (The product runs in
zero-padded chunks of the fixed width ``_GEMM_WIDTH`` rather than at the raw
batch width: BLAS selects its accumulation pattern by matrix shape, and the
serving layer's coalescing guarantee — row ``i`` of a batch is bitwise equal
to the same query dispatched alone — requires row results independent of
batch width.)  Equations that are not plain
:class:`~repro.scm.fitting.FittedEquation` polynomials fall back to per-node
evaluation *inside the same level*, so the fused path is always available
regardless of the mechanism mix.

Programs embed the owning model's coefficients, so they are cached on the
:class:`~repro.scm.batched.StructuralPlan` keyed by owner model (see
``StructuralPlan.fused_programs``) and dropped on structural rebinds; the
per-node batched path remains selectable (``fused=False``) as the
intermediate differential oracle between the fused and scalar semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.scm.fitting import FittedEquation

#: feature-op kinds of a polynomial design matrix column.
_LINEAR = "lin"
_SQUARE = "sq"
_PAIR = "pair"

#: ``values`` entries accepted by :meth:`FusedProgram.execute`.
Column = "float | np.ndarray"

#: fixed row width of every fused matrix product.  Batches are chunked and
#: zero-padded to this width so the BLAS kernel (selected by shape) is the
#: same no matter how many rows a call carries, keeping each row's bits
#: independent of the batch composition — the property the serving layer's
#: byte-identical-coalescing contract rests on.
_GEMM_WIDTH = 64


def equation_feature_ops(equation) -> list[tuple] | None:
    """Feature ops of a polynomial equation, aligned with its coefficients.

    Returns one ``(kind, a, b)`` op per coefficient in the exact
    :func:`repro.scm.fitting._polynomial_features` order — linear parents,
    squared parents, pairwise interactions (``j < l`` over sorted parents) —
    or ``None`` when the equation is not a plain :class:`FittedEquation`
    with the expected coefficient count (such equations take the per-node
    fallback inside the fused program).
    """
    if type(equation) is not FittedEquation:
        return None
    parents = equation.parents
    n_parents = len(parents)
    expected = 2 * n_parents + n_parents * (n_parents - 1) // 2
    if len(equation.coefficients) != expected:
        return None
    ops: list[tuple] = [(_LINEAR, p, None) for p in parents]
    ops += [(_SQUARE, p, None) for p in parents]
    for j in range(n_parents):
        for l in range(j + 1, n_parents):
            ops.append((_PAIR, parents[j], parents[l]))
    return ops


@dataclass
class FusedBlock:
    """One level's packed polynomial equations, split by operand kind.

    Features whose operands are all broadcast scalars (base values of the
    observation, constant steps) contribute the same amount to every row;
    they collapse into one ``(F_s,) @ (F_s, K)`` vector product folded into
    the intercepts.  Only features touching a vector operand (an intervened
    column or a recomputed variable) are accumulated per row, so the per-row
    work is ``F_a`` multiply-adds over the few varying features.
    """

    #: recomputed variables, one output column each.
    nodes: tuple[str, ...]
    #: deduplicated feature ops with scalar-only operands.
    scalar_features: tuple[tuple, ...]
    #: ``(F_s, K)`` coefficients of the scalar features.
    scalar_coefficients: np.ndarray
    #: deduplicated feature ops with at least one vector operand.
    array_features: tuple[tuple, ...]
    #: ``(F_a, K)`` coefficients of the array features.
    array_coefficients: np.ndarray
    #: ``(K, F_a)`` contiguous transpose of ``array_coefficients`` — the
    #: operand execution actually multiplies: with the design matrix laid
    #: out ``(F_a, width)``, every feature fill and every node readout is
    #: a contiguous row, not a strided column.
    array_coefficients_t: np.ndarray
    #: ``(K,)`` equation intercepts.
    intercepts: np.ndarray
    #: pool of reusable ``(buffer, coeffs, dirty_rows)`` scratch triples —
    #: the transposed design matrix (with its constant ones row) and the
    #: base-augmented coefficient matrix (``list.pop``/``append`` keep
    #: checkout atomic under the GIL; concurrent executions simply
    #: allocate fresh scratch).
    scratch: list = field(default_factory=list)


@dataclass
class FusedLevel:
    """One recomputation depth of a fused program."""

    #: variables resolved to a constant (empirical mean or zero).
    consts: list[tuple[str, str]] = field(default_factory=list)
    #: the level's GEMM block (``None`` when nothing fused at this depth).
    block: FusedBlock | None = None
    #: ``(node, equation)`` pairs evaluated per-node (non-polynomial).
    fallback: list[tuple[str, object]] = field(default_factory=list)


def _fill_design(buffer: np.ndarray, features: Sequence[tuple],
                 values: Mapping[str, "Column"], window: "slice | None",
                 rows: int) -> None:
    """Fill ``buffer[:rows of each feature]`` with one design window.

    The buffer is the *transposed* design — ``(F + 1, width)`` with a
    constant all-ones last row (the intercept feature, see
    :meth:`FusedProgram.execute`) — so every feature fill is one write to
    a contiguous row.  ``window`` selects the batch rows of this chunk;
    ``None`` means the chunk covers whole columns, skipping the slicing.
    """
    for f, (kind, a, b) in enumerate(features):
        left = values[a]
        if window is not None and isinstance(left, np.ndarray):
            left = left[window]
        if kind == _LINEAR:
            buffer[f, :rows] = left
        elif kind == _SQUARE:
            buffer[f, :rows] = np.multiply(left, left)
        else:
            right = values[b]
            if window is not None and isinstance(right, np.ndarray):
                right = right[window]
            buffer[f, :rows] = np.multiply(left, right)


def _as_column(value, n: int) -> np.ndarray:
    """Materialize a scalar-or-array ``values`` entry as an ``(n,)`` column."""
    if isinstance(value, np.ndarray):
        return value
    return np.full(n, float(value))


def _predict_fallback(equation, values: Mapping[str, "Column"],
                      n: int) -> np.ndarray:
    """Per-node evaluation of one non-fused equation over the batch."""
    columns = {p: _as_column(values[p], n) for p in equation.parents}
    batch = getattr(equation, "predict_batch", None)
    if batch is not None:
        return np.asarray(batch(columns, n), dtype=float)
    return np.array([equation.predict({p: float(columns[p][i])
                                       for p in equation.parents})
                     for i in range(n)], dtype=float)


class FusedProgram:
    """A compiled schedule: one fused block per level plus fallbacks.

    Execution mutates a ``values`` dict whose entries are Python-float
    scalars (broadcast base values) or ``(n,)`` arrays; every recomputed
    variable is written back as an ``(n,)`` column.  Constant steps resolve
    lazily through the ``means`` callable so a program compiled once stays
    correct when the empirical means move with the data epoch.
    """

    def __init__(self, levels: Sequence[FusedLevel], reads: frozenset,
                 produces: tuple[str, ...]) -> None:
        self.levels = list(levels)
        #: base ``values`` entries the program reads (never writes).
        self.reads = reads
        #: variables the program writes, in execution order.
        self.produces = produces
        #: ``(token, per-level base vectors)`` of the last scalar fold —
        #: see the ``scalar_token`` parameter of :meth:`execute`.
        self._scalar_memo: tuple | None = None

    def execute(self, values: dict, n: int,
                residuals: Mapping[str, "Column"] | None = None,
                means: Callable[[str], float] | None = None,
                scalar_token=None) -> dict:
        """Run the program over ``n`` rows, updating ``values`` in place.

        ``residuals`` (abducted per-variable noise, scalar or ``(n,)``) is
        added to every recomputed variable that has an entry, matching the
        additive-noise counterfactual semantics of the per-node path.

        ``scalar_token``, when given, must determine every broadcast-scalar
        input the program reads (plus the means epoch): each block's folded
        scalar contribution (intercepts + scalar features) is then memoized
        on the program and replayed while the token compares equal —
        repeated scans of the same fault skip the scalar fold entirely.
        Residuals never enter the fold (residual-adjusted variables are
        classified as array operands), so any token mismatch simply
        recomputes.
        """
        bases = None
        record: list | None = None
        if scalar_token is not None:
            memo = self._scalar_memo
            if memo is not None and memo[0] == scalar_token:
                bases = memo[1]
            else:
                record = []
        for index, level in enumerate(self.levels):
            for node, kind in level.consts:
                values[node] = float(means(node)) if kind == "mean" else 0.0
            block = level.block
            if block is not None:
                if bases is not None:
                    base = bases[index]
                else:
                    base = block.intercepts
                    if block.scalar_features:
                        scalars = []
                        for kind, a, b in block.scalar_features:
                            left = values[a]
                            if kind == _LINEAR:
                                scalars.append(left)
                            elif kind == _SQUARE:
                                scalars.append(left * left)
                            else:
                                scalars.append(left * values[b])
                        base = base + (np.asarray(scalars, dtype=float)
                                       @ block.scalar_coefficients)
                    if record is not None:
                        record.append(base)
                if block.array_features:
                    # The product always runs at the fixed padded width
                    # ``_GEMM_WIDTH``, never at the batch width: BLAS picks
                    # its accumulation pattern by matrix shape, so one
                    # configuration's result out of an ``N``-wide product
                    # is not bitwise stable across N — which would break
                    # the serving layer's contract that a coalesced answer
                    # equals the same query dispatched alone.  A GEMM never
                    # mixes batch positions arithmetically, so at a fixed
                    # shape every position's result depends only on its own
                    # data, making the chunked product stable for any
                    # batch width.  The design carries a constant all-ones
                    # last row and the coefficient scratch a per-execute
                    # base column, so the folded base (intercepts + scalar
                    # features) rides inside the same GEMM and each node's
                    # answer is simply its product row.
                    n_features = len(block.array_features)
                    try:
                        buffer, coeffs, dirty = block.scratch.pop()
                    except IndexError:
                        buffer = np.zeros((n_features + 1, _GEMM_WIDTH),
                                          dtype=float)
                        buffer[n_features] = 1.0
                        coeffs = np.empty((len(block.nodes),
                                           n_features + 1), dtype=float)
                        coeffs[:, :n_features] = block.array_coefficients_t
                        dirty = 0
                    coeffs[:, n_features] = base
                    if n <= _GEMM_WIDTH:
                        if dirty > n:
                            buffer[:n_features, n:dirty] = 0.0
                        _fill_design(buffer, block.array_features, values,
                                     None, n)
                        dirty = n
                        product = coeffs @ buffer
                    else:
                        product = np.empty((len(block.nodes), n),
                                           dtype=float)
                        for start in range(0, n, _GEMM_WIDTH):
                            rows = min(_GEMM_WIDTH, n - start)
                            if dirty > rows:
                                buffer[:n_features, rows:dirty] = 0.0
                            _fill_design(buffer, block.array_features,
                                         values,
                                         slice(start, start + rows), rows)
                            dirty = rows
                            product[:, start:start + rows] = \
                                (coeffs @ buffer)[:, :rows]
                    block.scratch.append((buffer, coeffs, dirty))
                    if residuals:
                        for k, node in enumerate(block.nodes):
                            offset = residuals.get(node)
                            values[node] = (product[k, :n] if offset is None
                                            else product[k, :n] + offset)
                    else:
                        for k, node in enumerate(block.nodes):
                            values[node] = product[k, :n]
                else:
                    # Every feature is constant across the batch: the level
                    # resolves to one scalar per node, kept as a broadcast
                    # scalar unless an abducted residual varies by row.
                    for k, node in enumerate(block.nodes):
                        value = float(base[k])
                        offset = residuals.get(node) if residuals else None
                        if offset is None:
                            values[node] = value
                        elif isinstance(offset, np.ndarray):
                            values[node] = value + offset
                        else:
                            values[node] = value + float(offset)
            elif record is not None:
                record.append(None)
            for node, equation in level.fallback:
                column = _predict_fallback(equation, values, n)
                offset = residuals.get(node) if residuals else None
                values[node] = column if offset is None else column + offset
        if record is not None:
            self._scalar_memo = (scalar_token, record)
        return values


def compile_fused_program(model, schedule: Sequence[str],
                          known: Iterable[str], missing: str = "skip",
                          column_names: Iterable[str] = (),
                          vector: Iterable[str] = ()) -> FusedProgram:
    """Compile a topologically ordered ``schedule`` into a fused program.

    Parameters
    ----------
    model:
        The :class:`~repro.scm.fitting.FittedPerformanceModel` whose
        equations the program embeds.
    schedule:
        Variables to recompute, in topological order (a
        ``StructuralPlan.propagation_schedule`` or the full topological
        order minus the assigned variables).
    known:
        Variables whose values exist before execution (intervened keys,
        observation columns, assignment keys).
    missing:
        ``"skip"`` (propagation semantics: a variable with no equation or
        unavailable parents keeps its base value and is never recomputed)
        or ``"fallback"`` (prediction semantics: such a variable resolves
        to its empirical mean when it is a data column, else to zero).
    column_names:
        Data columns eligible for the mean fallback under
        ``missing="fallback"``.
    vector:
        The subset of ``known`` whose values arrive as per-row ``(n,)``
        columns at execution time; everything else in ``known`` is a
        broadcast Python-float scalar.  Features touching only scalars are
        folded into the intercepts at execution (see :class:`FusedBlock`).
        The classification must be conservative upward — listing a name
        here that turns out to be a scalar is safe, omitting an array name
        is not.
    """
    columns = frozenset(column_names)
    available = set(known)
    produced: set[str] = set()
    #: names carrying per-row columns: the caller's vector inputs plus every
    #: equation-produced variable (constant steps stay scalars).
    array_names = set(vector)
    depth: dict[str, int] = {}
    steps: list[tuple[str, str, object, list | None, int]] = []
    reads: set[str] = set()
    max_level = -1
    for node in schedule:
        if model.has_equation(node):
            equation = model.equation(node)
            if all(p in available for p in equation.parents):
                level = 0
                for parent in equation.parents:
                    parent_depth = depth.get(parent)
                    if parent_depth is not None and parent_depth >= level:
                        level = parent_depth + 1
                    if parent not in produced:
                        reads.add(parent)
                ops = equation_feature_ops(equation)
                kind = "fused" if ops is not None else "fallback"
                steps.append((node, kind, equation, ops, level))
                depth[node] = level
                available.add(node)
                produced.add(node)
                array_names.add(node)
                max_level = max(max_level, level)
                continue
        if missing == "fallback":
            kind = "mean" if node in columns else "zero"
            steps.append((node, kind, None, None, 0))
            depth[node] = 0
            available.add(node)
            produced.add(node)
            max_level = max(max_level, 0)
        # missing == "skip": the variable keeps its base value (if any) and
        # stays available only when the caller supplied one — exactly the
        # per-node evaluator's ``all(p in values)`` guard.

    levels = [FusedLevel() for _ in range(max_level + 1)]
    fused_entries: dict[int, list[tuple[str, object, list]]] = {}
    order: list[str] = []
    for node, kind, equation, ops, level in steps:
        order.append(node)
        if kind == "fused":
            fused_entries.setdefault(level, []).append((node, equation, ops))
        elif kind == "fallback":
            levels[level].fallback.append((node, equation))
        else:
            levels[0].consts.append((node, kind))
    for level, entries in fused_entries.items():
        feature_index: dict[tuple, int] = {}
        for _, _, ops in entries:
            for op in ops:
                if op not in feature_index:
                    feature_index[op] = len(feature_index)
        coefficients = np.zeros((len(feature_index), len(entries)),
                                dtype=float)
        intercepts = np.empty(len(entries), dtype=float)
        for k, (node, equation, ops) in enumerate(entries):
            intercepts[k] = float(equation.intercept)
            for j, op in enumerate(ops):
                coefficients[feature_index[op], k] = \
                    float(equation.coefficients[j])
        scalar_rows = [f for f, (_, a, b) in enumerate(feature_index)
                       if a not in array_names
                       and (b is None or b not in array_names)]
        array_rows = [f for f in range(len(feature_index))
                      if f not in set(scalar_rows)]
        features = tuple(feature_index)
        levels[level].block = FusedBlock(
            nodes=tuple(node for node, _, _ in entries),
            scalar_features=tuple(features[f] for f in scalar_rows),
            scalar_coefficients=coefficients[scalar_rows],
            array_features=tuple(features[f] for f in array_rows),
            array_coefficients=coefficients[array_rows],
            array_coefficients_t=np.ascontiguousarray(
                coefficients[array_rows].T),
            intercepts=intercepts)
    return FusedProgram(levels, frozenset(reads), tuple(order))
