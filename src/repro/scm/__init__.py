"""Structural causal models (SCMs).

Two roles in the reproduction:

1. **Ground truth** — each subject system in :mod:`repro.systems` is backed by
   a ground-truth SCM over its options, events and objectives.  Sampling the
   SCM produces the measurement data the paper collected on Jetson hardware;
   intervening on it (``do``) produces the effect of actually deploying a
   configuration; environment shifts reweight mechanisms to model hardware
   and workload changes.
2. **Learned structural equations** — once Unicorn has a causal graph, the
   functional nodes are characterised with polynomial models fitted from the
   observational data (the paper uses ``semopy`` for this; we implement the
   fitting directly).  The fitted model supports prediction, interventional
   expectations and counterfactual queries.
"""

from repro.scm.mechanisms import (
    CategoricalTableMechanism,
    InteractionMechanism,
    LinearMechanism,
    Mechanism,
    PolynomialMechanism,
    SaturatingMechanism,
)
from repro.scm.noise import GaussianNoise, NoNoise, NoiseModel, UniformNoise
from repro.scm.model import StructuralCausalModel
from repro.scm.fitting import FittedPerformanceModel, fit_structural_equations
from repro.scm.batched import (
    BatchedFittedModel,
    BatchedSCM,
    StructuralPlan,
    evaluate_mechanism_batch,
)

__all__ = [
    "BatchedFittedModel",
    "BatchedSCM",
    "StructuralPlan",
    "evaluate_mechanism_batch",
    "Mechanism",
    "LinearMechanism",
    "PolynomialMechanism",
    "InteractionMechanism",
    "SaturatingMechanism",
    "CategoricalTableMechanism",
    "NoiseModel",
    "GaussianNoise",
    "UniformNoise",
    "NoNoise",
    "StructuralCausalModel",
    "FittedPerformanceModel",
    "fit_structural_equations",
]
