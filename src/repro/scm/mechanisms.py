"""Structural-equation mechanisms.

A mechanism computes the value of a variable from the values of its causal
parents (plus an additive exogenous noise term handled by the SCM).  The paper
characterises functional nodes with polynomial models "because of their
simplicity and their explainable nature"; the ground-truth system models also
use saturating and categorical-table mechanisms so that the simulated systems
exhibit the non-linear, multi-modal behaviour highlighted in Fig. 3.

Every mechanism implements ``evaluate(parent_values)`` where ``parent_values``
is a ``{parent_name: value}`` mapping, and exposes ``parents`` so the SCM can
build its DAG from the mechanisms alone.  The built-in mechanisms additionally
implement ``evaluate_batch(parent_columns, n_rows)``, the vectorized form used
by :class:`repro.scm.batched.BatchedSCM`: ``parent_columns`` maps parent name
to an ``(n_rows,)`` array and the result is the ``(n_rows,)`` array of
structural values.  Mechanisms without ``evaluate_batch`` fall back to a
per-row scalar loop, so custom mechanisms stay correct, just not fast.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence

import numpy as np


class Mechanism(Protocol):
    """Protocol for structural-equation mechanisms."""

    @property
    def parents(self) -> tuple[str, ...]:
        """Names of the causal parents read by :meth:`evaluate`."""
        ...  # pragma: no cover

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """Value of the variable given its parents (noise excluded)."""
        ...  # pragma: no cover


class LinearMechanism:
    """``value = intercept + sum_i coefficient_i * parent_i``."""

    def __init__(self, coefficients: Mapping[str, float],
                 intercept: float = 0.0) -> None:
        self._coefficients = dict(coefficients)
        self._intercept = float(intercept)

    @property
    def parents(self) -> tuple[str, ...]:
        return tuple(self._coefficients)

    @property
    def coefficients(self) -> dict[str, float]:
        return dict(self._coefficients)

    @property
    def intercept(self) -> float:
        return self._intercept

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """The affine combination of the parent values."""
        total = self._intercept
        for parent, coefficient in self._coefficients.items():
            total += coefficient * float(parent_values[parent])
        return total

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        total = np.full(n_rows, self._intercept, dtype=float)
        for parent, coefficient in self._coefficients.items():
            total += coefficient * np.asarray(parent_columns[parent],
                                              dtype=float)
        return total

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*{p}" for p, c in self._coefficients.items())
        return f"LinearMechanism({self._intercept:g} + {terms})"


class InteractionMechanism:
    """Linear terms plus pairwise (or higher-order) multiplicative terms.

    ``interactions`` maps a tuple of parent names to a coefficient, e.g.
    ``{("Bitrate", "BufferSize"): 4.1}`` contributes
    ``4.1 * Bitrate * BufferSize`` — the kind of term shown in Fig. 6.
    """

    def __init__(self, linear: Mapping[str, float],
                 interactions: Mapping[Sequence[str], float] | None = None,
                 intercept: float = 0.0) -> None:
        self._linear = dict(linear)
        self._interactions = {tuple(k): float(v)
                              for k, v in (interactions or {}).items()}
        self._intercept = float(intercept)

    @property
    def parents(self) -> tuple[str, ...]:
        names: list[str] = list(self._linear)
        for group in self._interactions:
            for name in group:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """Linear terms plus the multiplicative interaction terms."""
        total = self._intercept
        for parent, coefficient in self._linear.items():
            total += coefficient * float(parent_values[parent])
        for group, coefficient in self._interactions.items():
            product = coefficient
            for parent in group:
                product *= float(parent_values[parent])
            total += product
        return total

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        total = np.full(n_rows, self._intercept, dtype=float)
        for parent, coefficient in self._linear.items():
            total += coefficient * np.asarray(parent_columns[parent],
                                              dtype=float)
        for group, coefficient in self._interactions.items():
            product = np.full(n_rows, coefficient, dtype=float)
            for parent in group:
                product *= np.asarray(parent_columns[parent], dtype=float)
            total += product
        return total

    def __repr__(self) -> str:
        return (f"InteractionMechanism(linear={self._linear}, "
                f"interactions={self._interactions})")


class PolynomialMechanism:
    """Sum of per-parent polynomials: ``sum_i sum_d c[i][d] * parent_i**d``.

    ``terms`` maps parent name to a sequence of coefficients indexed by degree
    starting at 1 (the constant term lives in ``intercept``).
    """

    def __init__(self, terms: Mapping[str, Sequence[float]],
                 intercept: float = 0.0) -> None:
        self._terms = {p: tuple(float(c) for c in cs) for p, cs in terms.items()}
        self._intercept = float(intercept)

    @property
    def parents(self) -> tuple[str, ...]:
        return tuple(self._terms)

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """Sum of the per-parent polynomial contributions."""
        total = self._intercept
        for parent, coefficients in self._terms.items():
            value = float(parent_values[parent])
            for degree, coefficient in enumerate(coefficients, start=1):
                total += coefficient * value ** degree
        return total

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        total = np.full(n_rows, self._intercept, dtype=float)
        for parent, coefficients in self._terms.items():
            value = np.asarray(parent_columns[parent], dtype=float)
            for degree, coefficient in enumerate(coefficients, start=1):
                total += coefficient * value ** degree
        return total

    def __repr__(self) -> str:
        return f"PolynomialMechanism(terms={self._terms})"


class SaturatingMechanism:
    """A monotone saturating response ``scale * x / (x + half_point)``.

    Models diminishing returns that are ubiquitous in systems performance
    (e.g. adding CPU frequency beyond the memory-bound point stops helping),
    which produces the non-convex objective landscapes of Fig. 3.
    """

    def __init__(self, driver: str, scale: float, half_point: float,
                 baseline: float = 0.0,
                 modifiers: Mapping[str, float] | None = None) -> None:
        if half_point <= 0:
            raise ValueError("half_point must be positive")
        self._driver = driver
        self._scale = float(scale)
        self._half_point = float(half_point)
        self._baseline = float(baseline)
        self._modifiers = dict(modifiers or {})

    @property
    def parents(self) -> tuple[str, ...]:
        return (self._driver, *self._modifiers)

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """Saturating response in the driver plus linear modifier terms."""
        x = max(float(parent_values[self._driver]), 0.0)
        value = self._baseline + self._scale * x / (x + self._half_point)
        for parent, coefficient in self._modifiers.items():
            value += coefficient * float(parent_values[parent])
        return value

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        x = np.maximum(np.asarray(parent_columns[self._driver], dtype=float),
                       0.0)
        value = self._baseline + self._scale * x / (x + self._half_point)
        for parent, coefficient in self._modifiers.items():
            value = value + coefficient * np.asarray(parent_columns[parent],
                                                     dtype=float)
        return value

    def __repr__(self) -> str:
        return (f"SaturatingMechanism(driver={self._driver!r}, "
                f"scale={self._scale}, half_point={self._half_point})")


class CategoricalTableMechanism:
    """Table lookup for a categorical parent plus optional linear terms.

    ``table`` maps (rounded integer) values of ``selector`` to a contribution;
    unseen selector values fall back to ``default``.  This is how, for
    example, the scheduler policy or cache policy shifts an event's level —
    exactly the confounding structure of the motivating example (Fig. 1).
    """

    def __init__(self, selector: str, table: Mapping[float, float],
                 default: float = 0.0,
                 linear: Mapping[str, float] | None = None,
                 intercept: float = 0.0) -> None:
        self._selector = selector
        self._table = {float(k): float(v) for k, v in table.items()}
        self._default = float(default)
        self._linear = dict(linear or {})
        self._intercept = float(intercept)

    @property
    def parents(self) -> tuple[str, ...]:
        return (self._selector, *self._linear)

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """Table contribution of the selector plus linear terms."""
        key = float(parent_values[self._selector])
        total = self._intercept + self._table.get(key, self._default)
        for parent, coefficient in self._linear.items():
            total += coefficient * float(parent_values[parent])
        return total

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        keys = np.asarray(parent_columns[self._selector], dtype=float)
        looked_up = np.full(n_rows, self._default, dtype=float)
        # Exact float equality, matching the scalar dict lookup.
        for key, contribution in self._table.items():
            looked_up[keys == key] = contribution
        total = self._intercept + looked_up
        for parent, coefficient in self._linear.items():
            total += coefficient * np.asarray(parent_columns[parent],
                                              dtype=float)
        return total

    def __repr__(self) -> str:
        return (f"CategoricalTableMechanism(selector={self._selector!r}, "
                f"levels={len(self._table)})")


class ClippedMechanism:
    """Wrap another mechanism and clip its output to ``[lower, upper]``.

    Performance counters cannot be negative and many objectives have physical
    floors (latency > 0); the ground-truth models use this wrapper to keep the
    simulated measurements physically meaningful.
    """

    def __init__(self, inner: Mechanism, lower: float = -math.inf,
                 upper: float = math.inf) -> None:
        self._inner = inner
        self._lower = float(lower)
        self._upper = float(upper)

    @property
    def parents(self) -> tuple[str, ...]:
        return self._inner.parents

    def evaluate(self, parent_values: Mapping[str, float]) -> float:
        """The inner mechanism's value, clipped to ``[lower, upper]``."""
        return float(min(max(self._inner.evaluate(parent_values),
                             self._lower), self._upper))

    def evaluate_batch(self, parent_columns: Mapping[str, np.ndarray],
                       n_rows: int) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n_rows,)`` parent columns."""
        from repro.scm.batched import evaluate_mechanism_batch

        inner = evaluate_mechanism_batch(self._inner, parent_columns, n_rows)
        return np.minimum(np.maximum(inner, self._lower), self._upper)

    def __repr__(self) -> str:
        return f"ClippedMechanism({self._inner!r}, [{self._lower}, {self._upper}])"
