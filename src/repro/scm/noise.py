"""Exogenous noise models for structural equations.

Each structural equation ``X = f(parents(X), E)`` has an exogenous noise term
``E``.  The ground-truth system models use Gaussian noise for continuous
events/objectives and no noise for deterministic derived quantities; the
counterfactual machinery (abduction) recovers the realised noise value of a
particular observed sample and replays it under an intervention.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class NoiseModel(Protocol):
    """Protocol for exogenous noise generators."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one realisation of the noise term."""
        ...  # pragma: no cover


class GaussianNoise:
    """Zero-mean Gaussian noise with a fixed standard deviation."""

    def __init__(self, scale: float) -> None:
        if scale < 0:
            raise ValueError("noise scale must be non-negative")
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(0.0, self.scale))

    def __repr__(self) -> str:
        return f"GaussianNoise(scale={self.scale})"


class UniformNoise:
    """Uniform noise on ``[-half_width, +half_width]``."""

    def __init__(self, half_width: float) -> None:
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        self.half_width = float(half_width)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(-self.half_width, self.half_width))

    def __repr__(self) -> str:
        return f"UniformNoise(half_width={self.half_width})"


class NoNoise:
    """Deterministic structural equation (no exogenous variation)."""

    def sample(self, rng: np.random.Generator) -> float:  # noqa: ARG002
        return 0.0

    def __repr__(self) -> str:
        return "NoNoise()"
