"""Mixed causal graph with endpoint marks.

``MixedGraph`` is the single container used throughout the discovery and
inference layers.  It can represent an undirected skeleton, a PAG produced by
FCI, or a fully resolved ADMG, depending on which marks its edges carry.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.edges import Edge, Mark


class MixedGraph:
    """A graph over named nodes whose edges carry endpoint marks.

    The graph is simple: at most one edge between any pair of nodes.  Marks
    are stored per ordered pair so that ``mark(x, y)`` is the mark at the
    ``y`` end of the edge between ``x`` and ``y`` — this matches the usual
    reading of FCI orientation rules ("orient the mark at *y* on the edge
    x *-* y").
    """

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: list[str] = []
        self._node_set: set[str] = set()
        # _marks[(x, y)] is the mark at the *y* endpoint of edge {x, y}.
        self._marks: dict[tuple[str, str], Mark] = {}
        self._adj: dict[str, set[str]] = {}
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------ nodes
    @property
    def nodes(self) -> list[str]:
        """Nodes in insertion order."""
        return list(self._nodes)

    def add_node(self, node: str) -> None:
        if node not in self._node_set:
            self._nodes.append(node)
            self._node_set.add(node)
            self._adj[node] = set()

    def has_node(self, node: str) -> bool:
        return node in self._node_set

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._node_set:
            raise KeyError(node)
        for other in list(self._adj[node]):
            self.remove_edge(node, other)
        self._nodes.remove(node)
        self._node_set.remove(node)
        del self._adj[node]

    def __contains__(self, node: str) -> bool:
        return node in self._node_set

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: str, v: str, mark_u: Mark = Mark.CIRCLE,
                 mark_v: Mark = Mark.CIRCLE) -> None:
        """Add (or replace) the edge between ``u`` and ``v``.

        ``mark_u`` is placed at the ``u`` endpoint, ``mark_v`` at ``v``.
        """
        if u == v:
            raise ValueError(f"self loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._marks[(v, u)] = mark_u
        self._marks[(u, v)] = mark_v

    def add_directed_edge(self, cause: str, effect: str) -> None:
        """Add ``cause --> effect``."""
        self.add_edge(cause, effect, Mark.TAIL, Mark.ARROW)

    def add_bidirected_edge(self, u: str, v: str) -> None:
        """Add ``u <-> v`` (latent confounding)."""
        self.add_edge(u, v, Mark.ARROW, Mark.ARROW)

    def remove_edge(self, u: str, v: str) -> None:
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        del self._marks[(u, v)]
        del self._marks[(v, u)]

    def has_edge(self, u: str, v: str) -> bool:
        return v in self._adj.get(u, ())

    def mark(self, u: str, v: str) -> Mark:
        """Mark at the ``v`` endpoint of the edge between ``u`` and ``v``."""
        return self._marks[(u, v)]

    def set_mark(self, u: str, v: str, mark: Mark) -> None:
        """Set the mark at the ``v`` endpoint of edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._marks[(u, v)] = mark

    def edge(self, u: str, v: str) -> Edge:
        return Edge(u, v, self.mark(v, u), self.mark(u, v))

    def edges(self) -> Iterator[Edge]:
        """Iterate over each edge once (in canonical node order)."""
        seen: set[frozenset[str]] = set()
        for u in self._nodes:
            for v in sorted(self._adj[u]):
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield self.edge(u, v)

    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------ adjacency
    def neighbors(self, node: str) -> set[str]:
        """All nodes adjacent to ``node`` regardless of marks."""
        return set(self._adj[node])

    def degree(self, node: str) -> int:
        return len(self._adj[node])

    def average_degree(self) -> float:
        """Mean node degree; the paper reports this in the scalability study."""
        if not self._nodes:
            return 0.0
        return sum(self.degree(n) for n in self._nodes) / len(self._nodes)

    # -------------------------------------------------- directional queries
    def parents(self, node: str) -> set[str]:
        """Nodes ``p`` with a fully directed edge ``p --> node``."""
        out = set()
        for other in self._adj[node]:
            if (self.mark(other, node) is Mark.ARROW
                    and self.mark(node, other) is Mark.TAIL):
                out.add(other)
        return out

    def children(self, node: str) -> set[str]:
        """Nodes ``c`` with a fully directed edge ``node --> c``."""
        out = set()
        for other in self._adj[node]:
            if (self.mark(node, other) is Mark.ARROW
                    and self.mark(other, node) is Mark.TAIL):
                out.add(other)
        return out

    def spouses(self, node: str) -> set[str]:
        """Nodes connected to ``node`` by a bidirected edge."""
        out = set()
        for other in self._adj[node]:
            if (self.mark(node, other) is Mark.ARROW
                    and self.mark(other, node) is Mark.ARROW):
                out.add(other)
        return out

    def ancestors(self, node: str) -> set[str]:
        """All nodes with a directed path into ``node`` (excluding itself)."""
        out: set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for parent in self.parents(current):
                if parent not in out:
                    out.add(parent)
                    frontier.append(parent)
        return out

    def descendants(self, node: str) -> set[str]:
        """All nodes reachable from ``node`` via directed edges."""
        out: set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return out

    # ------------------------------------------------------------ conversion
    def to_dict(self) -> dict:
        """Plain-JSON form: nodes plus ``[u, v, mark_u, mark_v]`` edges.

        Edges are emitted in the canonical order of :meth:`edges` and marks
        as their single-character values, so equal graphs serialize to equal
        documents — the golden-graph regression fixtures rely on this.
        """
        return {
            "nodes": list(self._nodes),
            "edges": [[e.u, e.v, e.mark_u.value, e.mark_v.value]
                      for e in self.edges()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MixedGraph":
        graph = cls(payload["nodes"])
        for u, v, mark_u, mark_v in payload["edges"]:
            graph.add_edge(u, v, Mark(mark_u), Mark(mark_v))
        return graph

    def undetermined_edges(self) -> list[Edge]:
        """Edges with at least one circle mark (still ambiguous)."""
        return [e for e in self.edges() if e.is_undetermined()]

    def is_fully_oriented(self) -> bool:
        return not self.undetermined_edges()

    def directed_edges(self) -> list[tuple[str, str]]:
        """List of ``(cause, effect)`` pairs for fully directed edges."""
        out = []
        for edge in self.edges():
            target = edge.points_to()
            if target is not None:
                source = edge.u if target == edge.v else edge.v
                out.append((source, target))
        return out

    def bidirected_edges(self) -> list[tuple[str, str]]:
        return [(e.u, e.v) for e in self.edges() if e.is_bidirected()]

    def copy(self) -> "MixedGraph":
        clone = MixedGraph(self._nodes)
        clone._marks = dict(self._marks)
        clone._adj = {n: set(adj) for n, adj in self._adj.items()}
        return clone

    def to_networkx(self):
        """Export the directed part of the graph as a ``networkx.DiGraph``."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self.directed_edges())
        return graph

    def __repr__(self) -> str:
        return (f"MixedGraph(nodes={len(self._nodes)}, "
                f"edges={self.num_edges()})")

    def summary(self) -> str:
        """Human-readable listing of every edge, one per line."""
        return "\n".join(str(edge) for edge in self.edges())
