"""Directed acyclic causal graphs.

Ground-truth models (the data-generating SCMs of the simulator) and the final
resolved causal performance models are DAG-shaped (possibly with bidirected
edges for latent confounding, in which case they form an ADMG; the bidirected
part is held by :class:`~repro.graph.mixed_graph.MixedGraph`).  ``CausalDAG``
is a thin convenience wrapper that enforces acyclicity and offers topological
ordering, which the SCM sampler and the structural-equation fitter rely on.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph


class CycleError(ValueError):
    """Raised when an operation would introduce a directed cycle."""


class CausalDAG:
    """A directed acyclic graph over named variables.

    Parameters
    ----------
    nodes:
        Variable names.  Order is preserved and used as a tie-breaker for the
        topological order.
    edges:
        Iterable of ``(cause, effect)`` pairs.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 edges: Iterable[tuple[str, str]] = ()) -> None:
        self._parents: dict[str, set[str]] = {}
        self._children: dict[str, set[str]] = {}
        self._order: list[str] = []
        for node in nodes:
            self.add_node(node)
        for cause, effect in edges:
            self.add_edge(cause, effect)

    # ------------------------------------------------------------------ nodes
    @property
    def nodes(self) -> list[str]:
        return list(self._order)

    def add_node(self, node: str) -> None:
        """Add a variable (idempotent; order of first add is kept)."""
        if node not in self._parents:
            self._parents[node] = set()
            self._children[node] = set()
            self._order.append(node)

    def has_node(self, node: str) -> bool:
        """Whether ``node`` is a variable of this graph."""
        return node in self._parents

    def __contains__(self, node: str) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._order)

    # ------------------------------------------------------------------ edges
    def add_edge(self, cause: str, effect: str) -> None:
        """Add ``cause -> effect``, refusing self loops and cycles."""
        if cause == effect:
            raise CycleError(f"self loop on {cause!r}")
        self.add_node(cause)
        self.add_node(effect)
        if cause in self.descendants(effect):
            raise CycleError(f"edge {cause!r} -> {effect!r} creates a cycle")
        self._parents[effect].add(cause)
        self._children[cause].add(effect)

    def remove_edge(self, cause: str, effect: str) -> None:
        """Remove ``cause -> effect`` if present."""
        self._parents[effect].discard(cause)
        self._children[cause].discard(effect)

    def has_edge(self, cause: str, effect: str) -> bool:
        """Whether the directed edge ``cause -> effect`` exists."""
        return cause in self._parents.get(effect, ())

    def edges(self) -> list[tuple[str, str]]:
        """All ``(cause, effect)`` pairs, child-major, deterministic."""
        return [(p, c) for c in self._order for p in sorted(self._parents[c])]

    def num_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(p) for p in self._parents.values())

    # ------------------------------------------------------------- relations
    def parents(self, node: str) -> set[str]:
        """Direct causes of ``node``."""
        return set(self._parents[node])

    def children(self, node: str) -> set[str]:
        """Direct effects of ``node``."""
        return set(self._children[node])

    def ancestors(self, node: str) -> set[str]:
        """Transitive causes of ``node`` (excluding itself)."""
        out: set[str] = set()
        frontier = [node]
        while frontier:
            for parent in self._parents[frontier.pop()]:
                if parent not in out:
                    out.add(parent)
                    frontier.append(parent)
        return out

    def descendants(self, node: str) -> set[str]:
        """Transitive effects of ``node`` (excluding itself)."""
        out: set[str] = set()
        frontier = [node]
        while frontier:
            for child in self._children[frontier.pop()]:
                if child not in out:
                    out.add(child)
                    frontier.append(child)
        return out

    def roots(self) -> list[str]:
        """Nodes with no parents (configuration options in a ground truth)."""
        return [n for n in self._order if not self._parents[n]]

    def leaves(self) -> list[str]:
        """Nodes with no children (performance objectives)."""
        return [n for n in self._order if not self._children[n]]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm with insertion order as tie-breaker."""
        in_degree = {n: len(self._parents[n]) for n in self._order}
        ready = [n for n in self._order if in_degree[n] == 0]
        out: list[str] = []
        while ready:
            node = ready.pop(0)
            out.append(node)
            for child in sorted(self._children[node],
                                key=self._order.index):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(out) != len(self._order):  # pragma: no cover - defensive
            raise CycleError("graph contains a cycle")
        return out

    # ------------------------------------------------------------ conversion
    def to_mixed_graph(self) -> MixedGraph:
        """Convert to a fully oriented :class:`MixedGraph`."""
        graph = MixedGraph(self._order)
        for cause, effect in self.edges():
            graph.add_edge(cause, effect, Mark.TAIL, Mark.ARROW)
        return graph

    @classmethod
    def from_mixed_graph(cls, graph: MixedGraph) -> "CausalDAG":
        """Extract the directed part of a mixed graph as a DAG.

        Bidirected and undetermined edges are dropped; a cycle in the directed
        part raises :class:`CycleError`.
        """
        dag = cls(graph.nodes)
        for cause, effect in graph.directed_edges():
            dag.add_edge(cause, effect)
        return dag

    @classmethod
    def from_parent_map(cls, parents: Mapping[str, Sequence[str]]) -> "CausalDAG":
        """Build a DAG from a ``{child: [parents]}`` mapping."""
        dag = cls()
        for child in parents:
            dag.add_node(child)
        for child, child_parents in parents.items():
            for parent in child_parents:
                dag.add_edge(parent, child)
        return dag

    def __repr__(self) -> str:
        return f"CausalDAG(nodes={len(self)}, edges={self.num_edges()})"
