"""Edge endpoint marks for mixed causal graphs.

FCI produces partial ancestral graphs whose edges carry one of three marks on
each endpoint:

* ``TAIL`` (``-``): the variable at this end is an ancestor of the other end.
* ``ARROW`` (``>``): the variable at this end is *not* an ancestor of the
  other end.
* ``CIRCLE`` (``o``): undetermined; the data are compatible with either mark.

The usual edge types are spelled with two marks, one per endpoint.  For an
edge between ``x`` and ``y``:

=============  ==================  =========================================
edge           (mark at x, at y)   meaning
=============  ==================  =========================================
``x --> y``    (TAIL, ARROW)       x causes y
``x <-> y``    (ARROW, ARROW)      latent confounder between x and y
``x o-> y``    (CIRCLE, ARROW)     y does not cause x
``x o-o y``    (CIRCLE, CIRCLE)    fully undetermined
``x --- y``    (TAIL, TAIL)        adjacency with both ends ancestral
=============  ==================  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mark(enum.Enum):
    """Endpoint mark of an edge in a mixed causal graph."""

    TAIL = "-"
    ARROW = ">"
    CIRCLE = "o"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mark.{self.name}"


@dataclass(frozen=True)
class Edge:
    """An edge between two named variables with a mark at each endpoint.

    ``mark_u`` is the mark at the ``u`` endpoint and ``mark_v`` the mark at
    the ``v`` endpoint.  Edges are stored in a canonical order inside
    :class:`~repro.graph.mixed_graph.MixedGraph`; this class is a plain value
    object and does not enforce the ordering itself.
    """

    u: str
    v: str
    mark_u: Mark
    mark_v: Mark

    def reversed(self) -> "Edge":
        """Return the same edge viewed from the other endpoint."""
        return Edge(self.v, self.u, self.mark_v, self.mark_u)

    def is_directed(self) -> bool:
        """True for ``u --> v`` or ``v --> u`` edges."""
        return {self.mark_u, self.mark_v} == {Mark.TAIL, Mark.ARROW}

    def is_bidirected(self) -> bool:
        """True for ``u <-> v`` edges (latent confounding)."""
        return self.mark_u is Mark.ARROW and self.mark_v is Mark.ARROW

    def is_undetermined(self) -> bool:
        """True if either endpoint still carries a circle mark."""
        return Mark.CIRCLE in (self.mark_u, self.mark_v)

    def points_to(self) -> str | None:
        """Name of the endpoint the edge points into, if directed."""
        if self.mark_v is Mark.ARROW and self.mark_u is Mark.TAIL:
            return self.v
        if self.mark_u is Mark.ARROW and self.mark_v is Mark.TAIL:
            return self.u
        return None

    def __str__(self) -> str:
        left = {Mark.TAIL: "-", Mark.ARROW: "<", Mark.CIRCLE: "o"}[self.mark_u]
        right = {Mark.TAIL: "-", Mark.ARROW: ">", Mark.CIRCLE: "o"}[self.mark_v]
        return f"{self.u} {left}-{right} {self.v}"
