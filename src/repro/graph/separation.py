"""Graphical separation criteria.

``d_separated`` implements Pearl's d-separation on a DAG via the standard
"reachable via active trails" ball-bouncing algorithm.  It is used to derive
the conditional-independence oracle of ground-truth models (tests and the
simulated-annealing checks in discovery tests use it) and to validate that
learned graphs entail the same independencies as the data-generating model.

``possible_d_sep`` computes the Possible-D-Sep set used by FCI's second
pruning phase (Spirtes et al., *Causation, Prediction, and Search*).
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.dag import CausalDAG
from repro.graph.edges import Mark
from repro.graph.mixed_graph import MixedGraph


def d_separated(dag: CausalDAG, x: str, y: str,
                conditioning: Iterable[str] = ()) -> bool:
    """Return True when ``x`` and ``y`` are d-separated given ``conditioning``.

    Implementation follows the reachability formulation: ``x`` and ``y`` are
    d-connected iff there is an active trail from ``x`` to ``y``.  A trail is
    active when every collider on it is in (or has a descendant in) the
    conditioning set and no non-collider on it is in the conditioning set.
    """
    if x == y:
        return False
    z = set(conditioning)
    if x in z or y in z:
        raise ValueError("endpoints must not be in the conditioning set")

    # Ancestors of the conditioning set (colliders are active when they or a
    # descendant is conditioned on, i.e. when the collider is an ancestor of Z).
    ancestors_of_z = set(z)
    frontier = list(z)
    while frontier:
        node = frontier.pop()
        for parent in dag.parents(node):
            if parent not in ancestors_of_z:
                ancestors_of_z.add(parent)
                frontier.append(parent)

    # States are (node, direction) where direction is "up" (arrived via an
    # edge into the node's parents, i.e. travelling against arrows) or "down"
    # (arrived travelling along arrows).
    visited: set[tuple[str, str]] = set()
    frontier = [(x, "up")]
    while frontier:
        node, direction = frontier.pop()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))
        if node == y:
            return False  # reached y via an active trail -> d-connected
        if direction == "up" and node not in z:
            for parent in dag.parents(node):
                frontier.append((parent, "up"))
            for child in dag.children(node):
                frontier.append((child, "down"))
        elif direction == "down":
            if node not in z:
                for child in dag.children(node):
                    frontier.append((child, "down"))
            if node in ancestors_of_z:
                for parent in dag.parents(node):
                    frontier.append((parent, "up"))
    return True


def possible_d_sep(graph: MixedGraph, x: str, y: str) -> set[str]:
    """Possible-D-Sep(x, y) for the FCI pruning phase.

    A node ``v`` is in Possible-D-Sep(x, y) iff there is a path between ``x``
    and ``v`` on which every non-endpoint vertex is either a collider on the
    path or adjacent to both of its path-neighbours (i.e. part of a triangle).
    """
    pdsep: set[str] = set()
    # frontier entries are (previous, current) node pairs along a path.
    visited: set[tuple[str, str]] = set()
    frontier = [(x, n) for n in graph.neighbors(x)]
    while frontier:
        prev, current = frontier.pop()
        if (prev, current) in visited:
            continue
        visited.add((prev, current))
        if current not in (x, y):
            pdsep.add(current)
        for nxt in graph.neighbors(current):
            if nxt in (prev, current):
                continue
            collider = (graph.mark(prev, current) is Mark.ARROW
                        and graph.mark(nxt, current) is Mark.ARROW)
            triangle = graph.has_edge(prev, nxt)
            if collider or triangle:
                frontier.append((current, nxt))
    pdsep.discard(x)
    pdsep.discard(y)
    return pdsep
