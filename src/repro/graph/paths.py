"""Causal path utilities.

Stage III of Unicorn extracts *causal paths* — directed paths that start at a
configuration option (or a system event) and terminate at a performance
objective — by backtracking from each objective node towards nodes without
parents.  The extracted paths are then ranked by their average causal effect.
This module implements the backtracking extraction and generic directed-path
enumeration used by the inference engine and by the scalability benchmark
(which reports the number of causal paths, Table 3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.mixed_graph import MixedGraph


def backtrack_causal_paths(graph: MixedGraph, objective: str,
                           stop_nodes: Iterable[str] | None = None,
                           max_paths: int = 10_000) -> list[list[str]]:
    """All directed paths terminating at ``objective``, found by backtracking.

    Starting at ``objective`` we walk against edge direction until a node with
    no parents (or a node in ``stop_nodes``) is reached; every branch creates
    a new path, per the paper's description of causal path extraction.  The
    returned paths are ordered source → objective.

    Parameters
    ----------
    graph:
        A (at least partially) directed mixed graph.
    objective:
        The performance objective node to backtrack from.
    stop_nodes:
        Optional set of nodes at which backtracking stops even if they have
        parents (used to stop at configuration options).
    max_paths:
        Safety bound against combinatorial explosion in dense graphs.
    """
    stops = set(stop_nodes or ())
    paths: list[list[str]] = []

    def _backtrack(node: str, suffix: list[str], on_path: set[str]) -> None:
        if len(paths) >= max_paths:
            return
        parents = graph.parents(node)
        terminal = not parents or node in stops
        if terminal and len(suffix) > 1:
            paths.append(list(reversed(suffix)))
            return
        extended = False
        for parent in sorted(parents):
            if parent in on_path:
                continue
            extended = True
            _backtrack(parent, suffix + [parent], on_path | {parent})
        if not extended and len(suffix) > 1:
            paths.append(list(reversed(suffix)))

    _backtrack(objective, [objective], {objective})
    return paths


def directed_paths(graph: MixedGraph, source: str, target: str,
                   max_paths: int = 10_000) -> list[list[str]]:
    """Enumerate all directed paths ``source -> ... -> target``."""
    paths: list[list[str]] = []

    def _walk(node: str, prefix: list[str], on_path: set[str]) -> None:
        if len(paths) >= max_paths:
            return
        if node == target:
            paths.append(list(prefix))
            return
        for child in sorted(graph.children(node)):
            if child in on_path:
                continue
            _walk(child, prefix + [child], on_path | {child})

    _walk(source, [source], {source})
    return paths


def path_edges(path: Sequence[str]) -> list[tuple[str, str]]:
    """Consecutive ``(cause, effect)`` pairs along a path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def nodes_on_paths(paths: Iterable[Sequence[str]]) -> set[str]:
    """Union of all nodes appearing on any of the given paths."""
    out: set[str] = set()
    for path in paths:
        out.update(path)
    return out
