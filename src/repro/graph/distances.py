"""Structural distances between causal graphs.

The paper (Fig. 11a) tracks how the Hamming distance between the learned
causal performance model and the (approximate) ground-truth model shrinks as
more configurations are measured.  We provide the structural Hamming distance
(SHD) over adjacency + orientation, plus skeleton precision/recall/F1, which
the convergence benchmark and the discovery tests both use.
"""

from __future__ import annotations

from repro.graph.mixed_graph import MixedGraph


def _adjacency_set(graph: MixedGraph) -> set[frozenset[str]]:
    return {frozenset((e.u, e.v)) for e in graph.edges()}


def structural_hamming_distance(learned: MixedGraph,
                                truth: MixedGraph) -> int:
    """Structural Hamming distance between two mixed graphs.

    Counts one unit for every adjacency present in exactly one of the graphs,
    and one unit for every shared adjacency whose orientation (the pair of
    endpoint marks) differs.
    """
    learned_adj = _adjacency_set(learned)
    truth_adj = _adjacency_set(truth)
    distance = len(learned_adj ^ truth_adj)
    for pair in learned_adj & truth_adj:
        u, v = sorted(pair)
        same = (learned.mark(u, v) is truth.mark(u, v)
                and learned.mark(v, u) is truth.mark(v, u))
        if not same:
            distance += 1
    return distance


def skeleton_f1(learned: MixedGraph, truth: MixedGraph) -> dict[str, float]:
    """Precision, recall and F1 of the learned skeleton against the truth."""
    learned_adj = _adjacency_set(learned)
    truth_adj = _adjacency_set(truth)
    true_positive = len(learned_adj & truth_adj)
    precision = true_positive / len(learned_adj) if learned_adj else 1.0
    recall = true_positive / len(truth_adj) if truth_adj else 1.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}


def orientation_accuracy(learned: MixedGraph, truth: MixedGraph) -> float:
    """Fraction of shared adjacencies whose orientation matches the truth."""
    shared = _adjacency_set(learned) & _adjacency_set(truth)
    if not shared:
        return 0.0
    correct = 0
    for pair in shared:
        u, v = sorted(pair)
        if (learned.mark(u, v) is truth.mark(u, v)
                and learned.mark(v, u) is truth.mark(v, u)):
            correct += 1
    return correct / len(shared)
