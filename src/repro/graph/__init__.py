"""Causal graph data structures.

The discovery pipeline in Unicorn produces graphs of increasing specificity:

* a *skeleton* (undirected graph with circle marks on every endpoint),
* a *PAG* (partial ancestral graph) after FCI orientation, whose endpoints
  carry circle, arrow or tail marks,
* an *ADMG* (acyclic directed mixed graph) once every circle mark has been
  resolved by the entropic orientation step, containing directed and
  bidirected edges only,
* and, for ground-truth models, a plain *DAG*.

All of these are represented by :class:`~repro.graph.mixed_graph.MixedGraph`,
which tracks an endpoint mark for each side of each edge.  The module also
provides separation criteria (d-separation on DAGs, used by the ground-truth
models and by tests) and structural distances (structural Hamming distance,
used in Fig. 11 to show convergence of the learned model to the ground truth).
"""

from repro.graph.edges import Edge, Mark
from repro.graph.mixed_graph import MixedGraph
from repro.graph.dag import CausalDAG
from repro.graph.separation import d_separated, possible_d_sep
from repro.graph.distances import structural_hamming_distance, skeleton_f1
from repro.graph.paths import backtrack_causal_paths, directed_paths

__all__ = [
    "Edge",
    "Mark",
    "MixedGraph",
    "CausalDAG",
    "d_separated",
    "possible_d_sep",
    "structural_hamming_distance",
    "skeleton_f1",
    "backtrack_causal_paths",
    "directed_paths",
]
