"""Performance queries and their causal translations (Stage I / Stage V).

Users express performance tasks as :class:`PerformanceQuery` objects — "what
is the root cause of my latency fault?", "how do I bring throughput above 40
FPS?", "what is the effect of Swappiness on energy?" — and Unicorn translates
them into :class:`CausalQuery` objects over the learned model: interventional
expectations (``E[Y | do(X = x)]``), probability-of-satisfaction queries
(``P(Y > threshold | do(X = x))``) and counterfactual repair queries.  The
translation is rule-based, mirroring the manual translation described in the
paper (the grammar-based automation is listed as future work).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class QueryKind(enum.Enum):
    """The performance tasks Unicorn supports."""

    ROOT_CAUSE = "root_cause"
    REPAIR = "repair"
    OPTIMIZE = "optimize"
    EFFECT = "effect"
    SATISFACTION = "satisfaction"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryKind.{self.name}"


@dataclass(frozen=True)
class QoSConstraint:
    """A quality-of-service constraint on one objective.

    ``direction`` is ``"minimize"`` or ``"maximize"``; ``threshold`` is the
    value the objective must beat (e.g. throughput > 40 FPS → direction
    ``maximize``, threshold 40).
    """

    objective: str
    direction: str
    threshold: float | None = None

    def satisfied_by(self, value: float) -> bool:
        if self.threshold is None:
            return True
        if self.direction == "minimize":
            return value <= self.threshold
        return value >= self.threshold


@dataclass(frozen=True)
class PerformanceQuery:
    """A human-level performance question.

    Parameters
    ----------
    kind:
        Which performance task the query describes.
    objectives:
        Mapping from objective name to optimization direction
        (``"minimize"`` / ``"maximize"``).
    constraints:
        Optional QoS constraints (used by satisfaction queries and to decide
        when a fault is considered fixed).
    intervention:
        For :attr:`QueryKind.EFFECT` and :attr:`QueryKind.SATISFACTION`
        queries: the hypothetical configuration change being asked about.
    description:
        Free-text description (kept for reporting; not parsed).
    """

    kind: QueryKind
    objectives: Mapping[str, str]
    constraints: tuple[QoSConstraint, ...] = ()
    intervention: Mapping[str, float] = field(default_factory=dict)
    description: str = ""

    def direction(self, objective: str) -> str:
        """Optimization direction recorded for ``objective``.

        Parameters
        ----------
        objective:
            Name of an objective present in :attr:`objectives`.

        Returns
        -------
        str
            ``"minimize"`` or ``"maximize"``.

        Raises
        ------
        KeyError
            If the query does not mention ``objective``.
        """
        return self.objectives[objective]

    def batch_key(self) -> tuple:
        """Canonical hashable descriptor of this query's *semantics*.

        Two queries with equal batch keys are guaranteed to produce the
        same answer against the same model version: the key captures the
        kind, the (sorted) objective directions, the constraints and the
        (sorted) intervention — everything the engine reads — while
        ignoring the free-text :attr:`description`.  The request batcher of
        the serving layer groups and deduplicates concurrently submitted
        queries by this key, so a hot query asked by many clients at once
        is evaluated exactly once per model version.

        Returns
        -------
        tuple
            A nested tuple usable as a dict key.
        """
        return (self.kind.value,
                tuple(sorted((str(k), str(v))
                             for k, v in self.objectives.items())),
                tuple(sorted(((c.objective, c.direction, c.threshold)
                              for c in self.constraints),
                             key=lambda t: (t[0], t[1], t[2] is not None,
                                            t[2] if t[2] is not None
                                            else 0.0))),
                tuple(sorted((str(k), float(v))
                             for k, v in self.intervention.items())))

    @classmethod
    def root_cause(cls, objectives: Mapping[str, str],
                   description: str = "") -> "PerformanceQuery":
        return cls(kind=QueryKind.ROOT_CAUSE, objectives=dict(objectives),
                   description=description)

    @classmethod
    def repair(cls, objectives: Mapping[str, str],
               constraints: tuple[QoSConstraint, ...] = (),
               description: str = "") -> "PerformanceQuery":
        return cls(kind=QueryKind.REPAIR, objectives=dict(objectives),
                   constraints=constraints, description=description)

    @classmethod
    def optimize(cls, objectives: Mapping[str, str],
                 description: str = "") -> "PerformanceQuery":
        return cls(kind=QueryKind.OPTIMIZE, objectives=dict(objectives),
                   description=description)

    @classmethod
    def effect_of(cls, intervention: Mapping[str, float],
                  objectives: Mapping[str, str],
                  description: str = "") -> "PerformanceQuery":
        return cls(kind=QueryKind.EFFECT, objectives=dict(objectives),
                   intervention=dict(intervention), description=description)

    @classmethod
    def satisfaction(cls, intervention: Mapping[str, float],
                     constraint: QoSConstraint,
                     description: str = "") -> "PerformanceQuery":
        return cls(kind=QueryKind.SATISFACTION,
                   objectives={constraint.objective: constraint.direction},
                   constraints=(constraint,),
                   intervention=dict(intervention), description=description)


@dataclass(frozen=True)
class CausalQuery:
    """A formal causal query derived from a performance query.

    ``expression`` is a do-calculus-style rendering kept for reporting, e.g.
    ``P(Throughput > 40 | do(BufferSize = 6000))``.
    """

    kind: QueryKind
    target: str
    intervention: Mapping[str, float]
    expression: str


def translate(query: PerformanceQuery) -> list[CausalQuery]:
    """Translate a performance query into one causal query per objective."""
    causal_queries: list[CausalQuery] = []
    for objective in query.objectives:
        if query.kind is QueryKind.SATISFACTION and query.constraints:
            constraint = query.constraints[0]
            op = "<" if constraint.direction == "minimize" else ">"
            expr = (f"P({objective} {op} {constraint.threshold} | "
                    f"do({_format_intervention(query.intervention)}))")
        elif query.kind is QueryKind.EFFECT:
            expr = (f"E[{objective} | "
                    f"do({_format_intervention(query.intervention)})]")
        else:
            expr = f"argmax_config E[{objective} | do(config)]"
        causal_queries.append(CausalQuery(kind=query.kind, target=objective,
                                          intervention=dict(query.intervention),
                                          expression=expr))
    return causal_queries


def _format_intervention(intervention: Mapping[str, float]) -> str:
    if not intervention:
        return "·"
    return ", ".join(f"{k}={v:g}" for k, v in sorted(intervention.items()))
