"""Causal path extraction and ranking (Stage III).

A causal path is a directed path originating at a configuration option (or a
system event) and terminating at a performance objective.  Paths are extracted
by backtracking from the objective nodes and ranked by their average causal
effect (Path_ACE, Eq. 1 of the paper); only the top-K paths are used for
repair generation, which keeps reasoning tractable even when the graph has
hundreds of nodes (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.discovery.constraints import StructuralConstraints
from repro.graph.mixed_graph import MixedGraph
from repro.graph.paths import backtrack_causal_paths
from repro.inference.effects import path_average_causal_effect
from repro.scm.fitting import FittedPerformanceModel


@dataclass(frozen=True)
class CausalPath:
    """A ranked causal path terminating at a performance objective."""

    nodes: tuple[str, ...]
    objective: str
    ace: float

    @property
    def source(self) -> str:
        return self.nodes[0]

    def options_on_path(self, constraints: StructuralConstraints) -> list[str]:
        """Configuration options appearing on this path."""
        option_set = set(constraints.options())
        return [n for n in self.nodes if n in option_set]

    def __len__(self) -> int:
        return len(self.nodes)


def extract_ranked_paths(graph: MixedGraph, model: FittedPerformanceModel,
                         objectives: Sequence[str],
                         constraints: StructuralConstraints,
                         domains: Mapping[str, Sequence[float]] | None = None,
                         top_k: int = 5,
                         max_contexts: int = 60,
                         plan=None, evaluator=None) -> list[CausalPath]:
    """Extract causal paths for every objective and keep the top-K by ACE.

    Paths that contain no configuration option are discarded (a repair must
    change at least one option); ranking uses the absolute path ACE so that
    both strongly harmful and strongly beneficial paths surface.  A
    :class:`repro.inference.query_plan.QueryPlan` memoizes the raw path
    enumeration across calls, and a batched evaluator vectorizes the
    per-edge ACE sweeps; both default to the scalar reference path.
    """
    option_set = set(constraints.options())
    ranked: list[CausalPath] = []
    for objective in objectives:
        if not graph.has_node(objective):
            continue
        if plan is not None:
            raw_paths = plan.causal_paths(objective)
        else:
            raw_paths = backtrack_causal_paths(graph, objective)
        candidates: list[CausalPath] = []
        for nodes in raw_paths:
            if not any(node in option_set for node in nodes):
                continue
            ace = path_average_causal_effect(model, nodes, domains=domains,
                                             max_contexts=max_contexts,
                                             evaluator=evaluator)
            candidates.append(CausalPath(nodes=tuple(nodes),
                                         objective=objective, ace=ace))
        candidates.sort(key=lambda p: p.ace, reverse=True)
        ranked.extend(candidates[:top_k])
    ranked.sort(key=lambda p: p.ace, reverse=True)
    return ranked


def root_cause_options(paths: Sequence[CausalPath],
                       constraints: StructuralConstraints,
                       limit: int | None = None) -> list[str]:
    """Options on the top-ranked paths, ordered by first appearance.

    These are the root-cause candidates that Unicorn reports for a
    performance fault.
    """
    seen: list[str] = []
    for path in paths:
        for option in path.options_on_path(constraints):
            if option not in seen:
                seen.append(option)
    if limit is not None:
        seen = seen[:limit]
    return seen
