"""Causal inference engine.

Implements Stages III and V of Unicorn on top of a fitted causal performance
model: estimation of average causal effects (ACE) of options on objectives,
extraction and ranking of causal paths, generation of candidate repairs and
their individual-causal-effect (ICE) scoring via counterfactual reasoning, and
the translation of human-level performance queries into causal queries.
"""

from repro.inference.effects import (
    average_causal_effect,
    option_effects_on_objective,
    path_average_causal_effect,
)
from repro.inference.paths import CausalPath, extract_ranked_paths
from repro.inference.query_plan import QueryPlan
from repro.inference.repairs import (
    Repair,
    RepairSet,
    enumerate_repair_candidates,
    generate_repair_set,
    repair_sort_key,
    score_repair_candidates,
    score_repair_candidates_batched,
)
from repro.inference.queries import CausalQuery, PerformanceQuery, QueryKind
from repro.inference.engine import CausalInferenceEngine

__all__ = [
    "average_causal_effect",
    "option_effects_on_objective",
    "path_average_causal_effect",
    "CausalPath",
    "extract_ranked_paths",
    "QueryPlan",
    "Repair",
    "RepairSet",
    "enumerate_repair_candidates",
    "generate_repair_set",
    "repair_sort_key",
    "score_repair_candidates",
    "score_repair_candidates_batched",
    "CausalQuery",
    "PerformanceQuery",
    "QueryKind",
    "CausalInferenceEngine",
]
